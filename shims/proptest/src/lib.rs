//! Minimal offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the subset of the proptest API the workspace's tests use: the
//! [`proptest!`] macro with `a in range` argument strategies, an inner
//! `#![proptest_config(...)]` attribute, [`ProptestConfig::with_cases`]
//! and [`prop_assert!`]. Inputs are drawn deterministically from a fixed
//! seed (no shrinking, no persistence), so failures reproduce exactly
//! across runs. Swap the `[workspace.dependencies]` entry for the registry
//! crate when online.

use std::fmt;
use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated input tuples per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

/// A failed property case, produced by [`prop_assert!`].
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    pub fn new(msg: String) -> Self {
        Self(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic xorshift64* generator driving input sampling.
#[derive(Debug)]
pub struct Gen(u64);

impl Gen {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Anything the `a in strat` syntax of [`proptest!`] can sample from.
pub trait Strategy {
    /// The sampled value type.
    type Value;
    /// Draws one value.
    fn sample(&self, gen: &mut Gen) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, gen: &mut Gen) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u128;
                    self.start + (gen.next_u64() as u128 % span) as $t
                }
            }
        )+
    };
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, gen: &mut Gen) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.sample(gen),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Strategies over collections (`proptest::collection`).
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s of sampled elements.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of `element` samples with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, gen: &mut Gen) -> Self::Value {
            let len = Strategy::sample(&self.len, gen);
            (0..len).map(|_| self.element.sample(gen)).collect()
        }
    }
}

/// Strategies over `bool` (`proptest::bool`).
pub mod bool {
    use super::{Gen, Strategy};

    /// Strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, gen: &mut Gen) -> bool {
            gen.next_u64() & 1 == 1
        }
    }
}

/// Runs each property over deterministically sampled inputs.
///
/// Supports the subset of the real macro used here: an optional leading
/// `#![proptest_config(expr)]`, then `#[test]` functions whose arguments
/// use the `name in strategy` form.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut generator = $crate::Gen::new(0x9E37_79B9_7F4A_7C15);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut generator);)*
                    let case_desc =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", ");
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = outcome {
                        panic!(
                            "property {} failed on case {case} ({case_desc}): {err}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `assert!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant that fails the current property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::new(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn samples_stay_in_range(a in 3u64..9, b in 0usize..4) {
            prop_assert!((3..9).contains(&a), "a = {a}");
            prop_assert!(b < 4);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let mut g1 = crate::Gen::new(7);
        let mut g2 = crate::Gen::new(7);
        for _ in 0..100 {
            assert_eq!(g1.next_u64(), g2.next_u64());
        }
    }
}
