//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this shim provides
//! just the API surface the workspace's microbenchmarks use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`criterion_group!`]
//! and [`criterion_main!`]. Timing is a plain wall-clock mean over a fixed
//! measurement budget — good enough for relative comparisons, not for
//! criterion's statistical rigor. Swap the `[workspace.dependencies]`
//! entry for the registry crate when online.

use std::time::{Duration, Instant};

/// Entry point handed to each benchmark function.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Runs `f` under a [`Bencher`] and prints a mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters
        } else {
            Duration::ZERO
        };
        println!("{id:<40} {:>12.3?}/iter ({} iters)", mean, bencher.iters);
        self
    }
}

/// Timing loop driver passed to the closure of
/// [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    iters: u32,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly until the measurement budget is spent,
    /// timing every call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One untimed warm-up call.
        std::hint::black_box(routine());
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a function that runs every listed benchmark with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
