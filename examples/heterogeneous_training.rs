//! Heterogeneous cluster walkthrough: what random slowdown does to
//! standard decentralized training and how Hop's backup workers and
//! bounded staleness recover the lost time.
//!
//! Reproduces a small-scale version of §7.3.3/§7.3.4 on the simulated
//! 16-worker / 4-machine cluster with the paper's 6×, prob-1/n random
//! slowdown.
//!
//! ```sh
//! cargo run --release --example heterogeneous_training
//! ```

use hop::core::{HopConfig, Hyper, Protocol, SimExperiment};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::metrics::Table;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let dataset = SyntheticWebspam::generate(4096, 1);
    let model = Svm::log_loss(dataset.feature_dim());
    let mut table = Table::new(vec![
        "protocol",
        "wall time",
        "mean iteration",
        "final eval loss",
    ]);
    for (name, cfg) in [
        ("standard + tokens", HopConfig::standard_with_tokens(5)),
        ("backup workers (N_buw=1)", HopConfig::backup(1, 5)),
        ("bounded staleness (s=5)", HopConfig::staleness(5, 5)),
        ("hybrid (backup + staleness)", HopConfig::hybrid(1, 5, 5)),
    ] {
        let experiment = SimExperiment {
            topology: Topology::ring_based(n),
            cluster: ClusterSpec::uniform(n, 4, 0.05, LinkModel::ethernet_1gbps()),
            slowdown: SlowdownModel::paper_random(n),
            protocol: Protocol::Hop(cfg),
            hyper: Hyper::svm(),
            max_iters: 150,
            seed: 3,
            eval_every: 25,
            eval_examples: 256,
        };
        let report = experiment.run(&model, &dataset)?;
        table.add_row(vec![
            name.to_string(),
            format!("{:.2}s", report.wall_time),
            format!("{:.0}ms", report.mean_iteration_duration() * 1e3),
            format!("{:.3}", report.eval_time.last().map_or(f64::NAN, |p| p.1)),
        ]);
    }
    println!("16 workers, ring-based graph, 6x random slowdown (prob 1/16):\n");
    print!("{table}");
    println!("\nbackup workers and staleness trade a little per-step quality for");
    println!("much shorter iterations; the hybrid combines both (paper Figs. 14-17).");
    Ok(())
}
