//! Quickstart: decentralized training on real OS threads.
//!
//! Runs Hop's queue-based protocol (parallel computation graph, token
//! queues with `max_ig = 4`) with 4 worker threads on a ring, training the
//! SVM workload, and prints the per-worker loss trajectory plus the final
//! evaluation of the averaged model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hop::core::threaded::ThreadedExperiment;
use hop::core::{HopConfig, Hyper};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::model::Model;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Arc::new(SyntheticWebspam::generate(2048, 42));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let experiment = ThreadedExperiment {
        config: HopConfig::standard_with_tokens(4),
        topology: Topology::ring(4),
        max_iters: 100,
        seed: 7,
        hyper: Hyper::svm(),
        compute_sleep: Duration::from_micros(200),
        slow_worker: None,
        stall_timeout: Duration::from_secs(30),
        faults: hop_sim::FaultPlan::none(),
    };
    println!("running 4 worker threads on a ring, 100 iterations each...");
    let report = experiment.run(model.clone(), dataset.clone())?;
    for (w, losses) in report.losses.iter().enumerate() {
        println!(
            "worker {w}: loss {:.3} -> {:.3}",
            losses.first().copied().unwrap_or(f32::NAN),
            losses.last().copied().unwrap_or(f32::NAN),
        );
    }
    let avg = report.averaged_params();
    let eval: Vec<usize> = (0..512).collect();
    let batch = dataset.batch(&eval);
    println!(
        "averaged model: loss {:.3}, accuracy {:.1}%  ({} ms wall clock)",
        model.loss(&avg, &batch),
        100.0 * model.accuracy(&avg, &batch),
        report.elapsed.as_millis(),
    );
    Ok(())
}
