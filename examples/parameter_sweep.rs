//! Scenario sweep over the heterogeneity-tolerant variants: Prague's
//! `group_size` × `regen_every` knob grid, a QGM `mu` axis and Hop with
//! backup workers, against a uniform machine placement and a
//! Fig.-21-style hierarchical (uneven) one, with one permanent 6×
//! straggler — plus a chaos column (`+loss2%` cluster variants from
//! `SweepGrid::fault_axis`) showing which protocols tolerate message
//! loss (backup quorums) and which stall (gossip that waits on every
//! neighbor).
//!
//! This is the ROADMAP scenario-diversity sweep, run as one
//! `hop::sweep::SweepGrid` across every core by `SweepRunner` — results
//! are bit-identical to running each `SimExperiment` sequentially, so the
//! parallelism is free determinism-wise and pays only host wall clock.
//!
//! ```sh
//! cargo run --release --example parameter_sweep
//! ```

use hop::core::Hyper;
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use hop::sweep::{SweepGrid, SweepRunner, SweepSummary};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let dataset = SyntheticWebspam::generate(2048, 7);
    let model = Svm::log_loss(dataset.feature_dim());
    let link = LinkModel::ethernet_1gbps();

    // Axes: Prague knobs × QGM momentum × Hop-with-backup × two machine
    // placements (each doubled by the 2% loss chaos variant), one
    // permanent 6× straggler (worker 1), one seed. 8 protocol entries ×
    // 4 clusters = 32 grid points.
    let grid = SweepGrid::new(Hyper::svm(), 60)
        .prague_axis(&[2, 4], &[1, 4])
        .qgm_axis(&[0.5, 0.9, 0.99], 0.1)
        .protocol(
            "hop_backup",
            hop::core::config::Protocol::Hop(hop::core::config::HopConfig::backup(1, 4)),
        )
        .cluster(
            "uniform_8x4",
            Topology::ring(n),
            ClusterSpec::uniform(n, 4, 0.05, link),
        )
        .cluster(
            "hier_5+1+1+1",
            Topology::ring(n),
            // Fig. 21's uneven placement: most workers packed on one
            // machine, the rest alone — inter-machine links become the
            // straggler's amplifier.
            ClusterSpec::with_machine_sizes(&[5, 1, 1, 1], 0.05, link),
        )
        .fault_axis(&[0.02], &[false])
        .slowdown("straggler6x", SlowdownModel::paper_straggler(n, 1, 6.0))
        .seed(7)
        .eval(30, 256);

    let runner = SweepRunner::all_cores();
    let threads = runner.effective_threads(grid.len());
    let start = Instant::now();
    let results = runner.run(&grid, &model, &dataset)?;
    let host = start.elapsed().as_secs_f64();
    let summary = SweepSummary::from_results(&results);

    println!(
        "{} grid points on {threads} thread(s): {host:.2}s host time, \
         {:.2}s total virtual time\n",
        summary.len(),
        summary.total_wall_time(),
    );
    print!("{}", summary.table().render());

    // The headline readings: the fastest variant per placement.
    for cluster in ["uniform_8x4", "hier_5+1+1+1"] {
        let best = summary
            .rows()
            .iter()
            .filter(|r| r.cluster == cluster)
            .min_by(|a, b| a.wall_time.total_cmp(&b.wall_time))
            .expect("cluster has rows");
        println!(
            "\nfastest on {cluster}: {} ({:.2}s wall, eval loss {:.3})",
            best.protocol, best.wall_time, best.final_eval_loss
        );
    }
    let stalled = summary
        .rows()
        .iter()
        .filter(|r| r.deadlocked)
        .map(|r| format!("{}/{}", r.protocol, r.cluster))
        .collect::<Vec<_>>();
    println!(
        "\nsmall Prague groups shrink the straggler's blast radius; frequent\n\
         regeneration and higher QGM momentum trade mixing for per-round cost.\n\
         under 2% loss, protocols that wait on every neighbor stall while\n\
         backup quorums keep going: {} point(s) deadlocked.\n\
         (SweepSummary::to_csv / to_json emit the same rows machine-readably.)",
        stalled.len()
    );
    Ok(())
}
