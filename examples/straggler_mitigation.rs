//! Deterministic-straggler walkthrough: skipping iterations (§5).
//!
//! One of 16 workers runs 4× slower — permanently. Backup workers alone
//! cannot help (the token limit eventually gates everyone on the
//! straggler); letting the straggler *skip* iterations restores nearly
//! full-speed training. Reproduces the core of Figs. 18–19.
//!
//! ```sh
//! cargo run --release --example straggler_mitigation
//! ```

use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig};
use hop::data::images::SyntheticImages;
use hop::graph::Topology;
use hop::metrics::Table;
use hop::model::cnn::TinyCnn;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let dataset = SyntheticImages::generate(2048, 5);
    let model = TinyCnn::for_synthetic_images(4);
    let mut table = Table::new(vec![
        "protocol",
        "wall time",
        "fast-worker mean iter",
        "straggler iterations",
    ]);
    for (name, cfg) in [
        ("backup only", HopConfig::backup(1, 5)),
        (
            "backup + skip(max_jump=2)",
            HopConfig::backup(1, 5).with_skip(SkipConfig {
                max_jump: 2,
                trigger_behind: 2,
            }),
        ),
        (
            "backup + skip(max_jump=10)",
            HopConfig::backup(1, 5).with_skip(SkipConfig {
                max_jump: 10,
                trigger_behind: 2,
            }),
        ),
    ] {
        let experiment = SimExperiment {
            topology: Topology::ring_based(n),
            cluster: ClusterSpec::uniform(n, 4, 0.05, LinkModel::ethernet_1gbps()),
            slowdown: SlowdownModel::paper_straggler(n, 0, 4.0),
            protocol: Protocol::Hop(cfg),
            hyper: Hyper::cnn(),
            max_iters: 100,
            seed: 11,
            eval_every: 0,
            eval_examples: 128,
        };
        let report = experiment.run(&model, &dataset)?;
        let mut fast = Vec::new();
        for w in 1..n {
            fast.extend(report.trace.durations(w));
        }
        let mean_fast = fast.iter().sum::<f64>() / fast.len() as f64;
        table.add_row(vec![
            name.to_string(),
            format!("{:.2}s", report.wall_time),
            format!("{:.0}ms", mean_fast * 1e3),
            format!("{}", report.trace.durations(0).len()),
        ]);
    }
    println!("16 workers, worker 0 deterministically 4x slower:\n");
    print!("{table}");
    println!("\nskipping lets worker 0 jump forward (it runs fewer iterations),");
    println!("so the other 15 train at nearly their homogeneous speed (paper §5).");
    Ok(())
}
