//! Topology design toolbox: the Fig. 11/21 graphs, their spectral gaps,
//! and the Table 1 iteration-gap bounds.
//!
//! ```sh
//! cargo run --release --example topology_design
//! ```

use hop::graph::bounds::{self, BaseSetting};
use hop::graph::{spectral, ShortestPaths, Topology, WeightMatrix};
use hop::metrics::Table;

fn main() {
    // Fig. 11: the evaluation graphs, with spectral gaps.
    let mut graphs = Table::new(vec![
        "graph",
        "nodes",
        "in-degree",
        "diameter",
        "spectral gap",
    ]);
    let fig11: [(&str, Topology); 6] = [
        ("ring(16)", Topology::ring(16)),
        ("ring-based(16)", Topology::ring_based(16)),
        ("double-ring(16)", Topology::double_ring(16)),
        ("torus(4x4)", Topology::torus(4, 4)),
        ("hypercube(4)", Topology::hypercube(4)),
        ("all-reduce(16)", Topology::complete(16)),
    ];
    for (name, topo) in &fig11 {
        let sp = ShortestPaths::new(topo);
        let w = WeightMatrix::uniform(topo);
        graphs.add_row(vec![
            name.to_string(),
            topo.len().to_string(),
            topo.in_degree(0).to_string(),
            sp.diameter().map_or("inf".into(), |d| d.to_string()),
            format!("{:.4}", spectral::spectral_gap(&w)),
        ]);
    }
    println!("Fig. 11 evaluation graphs:\n\n{graphs}");

    // Fig. 21: placement-aware graphs for 8 workers on 3 machines.
    let mut placement = Table::new(vec!["setting", "spectral gap", "doubly stochastic W"]);
    let settings: [(&str, Topology); 3] = [
        ("1: ring-based(8)", Topology::ring_based(8)),
        (
            "2: hierarchical, 1 bridge",
            Topology::hierarchical(&[3, 3, 2], 1),
        ),
        (
            "3: hierarchical, full bridge",
            Topology::hierarchical(&[3, 3, 2], usize::MAX),
        ),
    ];
    for (name, topo) in &settings {
        let uniform = WeightMatrix::uniform(topo);
        let (w, kind) = if uniform.is_doubly_stochastic(1e-9) {
            (uniform, "uniform Eq.(1)")
        } else {
            (WeightMatrix::metropolis(topo), "Metropolis")
        };
        placement.add_row(vec![
            name.to_string(),
            format!("{:.4}", spectral::spectral_gap(&w)),
            kind.to_string(),
        ]);
    }
    println!("Fig. 21 placement-aware graphs (8 workers on 3/3/2 machines):\n\n{placement}");

    // Table 1: gap bounds on the 16-ring for the farthest pair.
    let topo = Topology::ring(16);
    let sp = ShortestPaths::new(&topo);
    let (i, j) = (0, 8); // farthest pair on the ring
    let mut t1 = Table::new(vec!["setting", "bound on Iter(i)-Iter(j), farthest pair"]);
    t1.add_row(vec![
        "standard".into(),
        bounds::standard(sp.dist(j, i)).to_string(),
    ]);
    t1.add_row(vec![
        "staleness s=5".into(),
        bounds::staleness(5, sp.dist(j, i)).to_string(),
    ]);
    t1.add_row(vec!["backup workers".into(), bounds::backup().to_string()]);
    t1.add_row(vec![
        "NOTIFY-ACK".into(),
        bounds::notify_ack(sp.dist(j, i), sp.dist(i, j)).to_string(),
    ]);
    t1.add_row(vec![
        "backup + tokens max_ig=5".into(),
        BaseSetting::BackupWorkers
            .pair_bound_with_tokens(5, sp.dist(j, i), sp.dist(i, j))
            .to_string(),
    ]);
    println!("Table 1 bounds on ring(16), pair (0, 8):\n\n{t1}");
}
