//! Static conformance checker for the protocol choreographies.
//!
//! Three legs, any failure exits nonzero (CI runs this next to clippy):
//!
//! 1. **Spec validation** — every [`hop::core::ChoreographySpec`] a
//!    runtime declares is checked against the canonical grammar
//!    (`hop::core::choreography::GRAMMAR`) and its obligations: no
//!    transition outside the grammar, no consume without a send plane,
//!    no jump without tokens and a renewal path, and so on.
//! 2. **Dynamic reference** — a trace produced *only* through the
//!    typestate handles (`choreography::reference_trace`) must satisfy
//!    the runtime [`hop::core::Oracle`], pinning the two layers to each
//!    other.
//! 3. **Source discipline** — no file in `crates/core/src` outside
//!    `choreography.rs`/`conformance.rs` may construct a
//!    `ProtocolEvent` or call a conformance sink's `record` directly:
//!    the handles must be the only emission path.

use hop::core::choreography::{self, validate_spec};
use hop::core::config::HopConfig;
use hop::core::Oracle;
use hop::graph::Topology;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Files allowed to name `ProtocolEvent` constructors or sink `record`
/// calls: the grammar module itself and the event/oracle definitions.
const EMISSION_MODULES: &[&str] = &["choreography.rs", "conformance.rs"];

fn check_specs(failures: &mut Vec<String>) {
    for spec in choreography::all_specs() {
        match validate_spec(spec) {
            Ok(()) => println!("spec `{}`: ok", spec.protocol),
            Err(errors) => {
                let mut msg = format!("spec `{}` is malformed:", spec.protocol);
                for e in errors {
                    let _ = write!(msg, "\n    {e}");
                }
                failures.push(msg);
            }
        }
    }
}

fn check_reference_trace(failures: &mut Vec<String>) {
    for n in [2usize, 4, 6] {
        let iters = 5;
        let trace = choreography::reference_trace(n, iters);
        let (cfg, topo) = (HopConfig::standard(), Topology::ring(n));
        let oracle = Oracle::new(&cfg, &topo, iters);
        match oracle.check(&trace) {
            Ok(summary) => println!(
                "reference trace (ring {n}, {iters} iters): ok ({} events)",
                summary.events
            ),
            Err(v) => failures.push(format!(
                "handle-driven reference trace (ring {n}) violates the oracle: {v}"
            )),
        }
    }
}

/// Recursively lists the `.rs` files under `dir`.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries =
        std::fs::read_dir(dir).unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("readable directory entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

/// Lines that emit protocol events directly: constructing an event
/// variant or calling a conformance sink's `record`. Whitespace is
/// stripped first so formatting cannot hide a call.
fn emission_lines(source: &str) -> Vec<(usize, String)> {
    source
        .lines()
        .enumerate()
        .filter(|(_, line)| {
            let squeezed: String = line.split_whitespace().collect();
            // Doc/comment mentions are fine; code constructing events or
            // recording on a sink is not.
            let code = squeezed.split("//").next().unwrap_or("");
            code.contains("ProtocolEvent::") || code.contains("conformance.record(")
        })
        .map(|(i, line)| (i + 1, line.trim().to_string()))
        .collect()
}

fn check_source_discipline(failures: &mut Vec<String>) {
    let core_src = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src");
    let mut files = Vec::new();
    rust_sources(&core_src, &mut files);
    files.sort();
    let mut scanned = 0usize;
    for path in &files {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if EMISSION_MODULES.contains(&name) {
            continue;
        }
        scanned += 1;
        let source = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        for (lineno, line) in emission_lines(&source) {
            failures.push(format!(
                "{}:{lineno}: direct event emission outside the choreography module: `{line}`",
                path.strip_prefix(env!("CARGO_MANIFEST_DIR"))
                    .unwrap_or(path)
                    .display()
            ));
        }
    }
    println!("source discipline: scanned {scanned} files under crates/core/src");
}

fn main() {
    let mut failures = Vec::new();
    check_specs(&mut failures);
    check_reference_trace(&mut failures);
    check_source_discipline(&mut failures);
    if failures.is_empty() {
        println!("choreo_check: all choreographies conform");
    } else {
        for f in &failures {
            eprintln!("choreo_check: {f}");
        }
        eprintln!("choreo_check: {} failure(s)", failures.len());
        std::process::exit(1);
    }
}
