//! The process-runtime worker binary.
//!
//! The coordinator ([`hop::core::process::ProcessExperiment`]) re-execs
//! this binary once per worker:
//!
//! ```text
//! hop_worker --worker <coordinator-addr> <worker-id>
//! ```
//!
//! Each worker connects back, receives its spec and peer table over the
//! [`hop::wire`] frame protocol, wires one TCP connection per directed
//! external edge, and runs the Hop iteration loop. `--smoke` runs a
//! small self-contained experiment (this same binary re-exec'd as its
//! own fleet) and oracle-checks the merged trace — the loopback test CI
//! runs on every push.

use hop::core::config::HopConfig;
use hop::core::process::{worker_main, ProcessExperiment};
use hop::core::Oracle;
use hop::graph::Topology;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!("usage: hop_worker --worker <coordinator-addr> <worker-id>");
    eprintln!("       hop_worker --smoke");
    ExitCode::from(2)
}

fn smoke() -> ExitCode {
    let bin = match std::env::current_exe() {
        Ok(bin) => bin,
        Err(e) => {
            eprintln!("smoke: cannot locate this binary: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = HopConfig::standard_with_tokens(3);
    let topo = Topology::ring(3);
    let iters = 5;
    let mut exp = ProcessExperiment::new(cfg.clone(), topo.clone(), iters, bin);
    exp.examples = 64;
    exp.stall_timeout = Duration::from_secs(10);
    let (report, trace) = match exp.run_traced() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("smoke: process run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let oracle = Oracle::new(&cfg, &topo, iters);
    match oracle.check(&trace) {
        Ok(summary) => {
            println!(
                "smoke ok: ring 3, {iters} iters, {} events oracle-clean, \
                 {} update bytes on the wire, {:?} elapsed",
                summary.events,
                report.total_update_wire_bytes(),
                report.elapsed,
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("smoke: merged trace violates the oracle: {v}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("--worker") => {
            let (Some(addr), Some(id)) = (args.get(2), args.get(3)) else {
                return usage();
            };
            let Ok(worker) = id.parse::<usize>() else {
                return usage();
            };
            let code = worker_main(addr, worker);
            ExitCode::from(u8::try_from(code).unwrap_or(1))
        }
        Some("--smoke") => smoke(),
        _ => usage(),
    }
}
