//! # Hop: Heterogeneity-Aware Decentralized Training (Rust reproduction)
//!
//! Facade crate re-exporting the whole workspace. See the repository
//! `README.md` for an overview, the crate layout, and build/run
//! instructions, and `crates/bench` for the per-figure experiment
//! harnesses.
//!
//! # Examples
//!
//! ```
//! use hop::graph::{Topology, WeightMatrix};
//!
//! let topo = Topology::ring_based(16);
//! let w = WeightMatrix::uniform(&topo);
//! assert!(w.is_doubly_stochastic(1e-9));
//! ```

pub use hop_core as core;
// Parallel experiment sweeps, surfaced at the facade root: build a
// `hop::sweep::SweepGrid`, run it with `hop::sweep::SweepRunner`.
pub use hop_core::sweep;
pub use hop_data as data;
pub use hop_graph as graph;
pub use hop_metrics as metrics;
pub use hop_model as model;
pub use hop_queue as queue;
pub use hop_sim as sim;
pub use hop_tensor as tensor;
pub use hop_util as util;
pub use hop_wire as wire;
