//! The three-runtime differential conformance suite.
//!
//! The same `(HopConfig, Topology, seed)` grid — standard / token /
//! backup / staleness / skip × ring / clique / torus — runs through the
//! deterministic simulator, the threaded runtime, and the multi-process
//! runtime (real OS processes over localhost TCP); every run emits a
//! structured [`ProtocolTrace`] and every trace is replayed by the
//! invariant [`Oracle`] (gap bounds, backup quota, staleness window,
//! jump legality). On a violation the offending trace is serialized to
//! `target/conformance-failures/<label>.trace` so CI can upload it as an
//! artifact and the failure can be replayed offline.
//!
//! The process leg additionally pins wire accounting: the update bytes a
//! worker actually frames onto its sockets must equal the simulator's
//! modeled `bytes_sent` for the same grid point, identity and int8
//! codecs alike.

use hop::core::conformance::{ConformanceSummary, Oracle, ProtocolTrace};
use hop::core::process::ProcessExperiment;
use hop::core::threaded::ThreadedExperiment;
use hop::core::{CompressionConfig, HopConfig, Hyper, Protocol, SimExperiment, SkipConfig};
use hop::data::webspam::SyntheticWebspam;
use hop::data::{Dataset, InMemoryDataset};
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::model::Model;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const SIM_ITERS: u64 = 20;
const THREADED_ITERS: u64 = 12;
const PROCESS_ITERS: u64 = 8;
const SEED: u64 = 17;

fn modes() -> Vec<(&'static str, HopConfig)> {
    vec![
        ("standard", HopConfig::standard()),
        ("token", HopConfig::standard_with_tokens(3)),
        ("backup", HopConfig::backup(1, 4)),
        ("staleness", HopConfig::staleness(2, 4)),
        (
            "skip",
            HopConfig::backup(1, 4).with_skip(SkipConfig {
                max_jump: 6,
                trigger_behind: 2,
            }),
        ),
    ]
}

fn topologies() -> Vec<(&'static str, Topology)> {
    vec![
        ("ring6", Topology::ring(6)),
        ("clique5", Topology::complete(5)),
        ("torus3x3", Topology::torus(3, 3)),
    ]
}

fn workload(n_examples: usize) -> (Svm, InMemoryDataset) {
    let dataset = SyntheticWebspam::generate(n_examples, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    (model, dataset)
}

/// Replays `trace` through the oracle; on a violation, serializes the
/// trace for offline replay / CI artifact upload and panics with the
/// violation.
fn oracle_check(
    label: &str,
    cfg: &HopConfig,
    topo: &Topology,
    max_iters: u64,
    trace: &ProtocolTrace,
) -> ConformanceSummary {
    let oracle = Oracle::new(cfg, topo, max_iters);
    match oracle.check(trace) {
        Ok(summary) => summary,
        Err(violation) => {
            let dir = std::path::Path::new("target/conformance-failures");
            std::fs::create_dir_all(dir).expect("create failure dir");
            let path = dir.join(format!("{label}.trace"));
            std::fs::write(&path, trace.to_text()).expect("serialize offending trace");
            panic!(
                "{label}: {violation}\noffending trace ({} events) serialized to {}",
                trace.len(),
                path.display()
            );
        }
    }
}

fn sim_trace(cfg: &HopConfig, topo: &Topology, straggle: bool) -> ProtocolTrace {
    let n = topo.len();
    let (model, dataset) = workload(128);
    let report = SimExperiment {
        topology: topo.clone(),
        cluster: ClusterSpec::uniform(n, 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown: if straggle {
            SlowdownModel::paper_straggler(n, 0, 6.0)
        } else {
            SlowdownModel::paper_random(n)
        },
        protocol: Protocol::Hop(cfg.clone()),
        hyper: Hyper::svm(),
        max_iters: SIM_ITERS,
        seed: SEED,
        eval_every: 0,
        eval_examples: 32,
    }
    .run_conformance(&model, &dataset)
    .expect("valid grid point");
    assert!(!report.deadlocked, "sim run deadlocked");
    report.conformance.expect("conformance recording was on")
}

#[test]
fn sim_traces_satisfy_the_oracle_on_the_full_grid() {
    for (mode, cfg) in modes() {
        for (topo_name, topo) in topologies() {
            let label = format!("sim-{mode}-{topo_name}");
            let straggle = mode == "skip";
            let trace = sim_trace(&cfg, &topo, straggle);
            let summary = oracle_check(&label, &cfg, &topo, SIM_ITERS, &trace);
            let n = topo.len() as u64;
            // Every worker reached max_iters; without jumps that is one
            // advance per (worker, iteration) plus the terminal entries.
            assert!(
                summary.advances > n,
                "{label}: vacuously small trace ({} advances)",
                summary.advances
            );
            assert!(summary.reduces > 0, "{label}: no reduces recorded");
            assert!(summary.consumed > 0, "{label}: no consumes recorded");
            match mode {
                "token" | "backup" | "skip" => assert!(
                    summary.tokens_passed > 0,
                    "{label}: token mode passed no tokens"
                ),
                "staleness" => assert!(
                    summary.stale_admitted > 0,
                    "{label}: staleness mode admitted nothing"
                ),
                _ => {}
            }
            if mode == "skip" {
                assert!(
                    summary.jumps > 0,
                    "{label}: the 6x straggler never jumped — skip mode is inert"
                );
                assert!(
                    summary.renew_reduces >= summary.jumps,
                    "{label}: jumps without renew reduces"
                );
            }
        }
    }
}

fn threaded_experiment(cfg: &HopConfig, topo: &Topology, straggle: bool) -> ThreadedExperiment {
    ThreadedExperiment {
        config: cfg.clone(),
        topology: topo.clone(),
        max_iters: THREADED_ITERS,
        seed: SEED,
        hyper: Hyper::svm(),
        compute_sleep: if straggle {
            Duration::from_micros(300)
        } else {
            Duration::ZERO
        },
        slow_worker: straggle.then_some((0, 15)),
        stall_timeout: Duration::from_secs(30),
        faults: hop_sim::FaultPlan::none(),
    }
}

#[test]
fn threaded_traces_satisfy_the_oracle_on_the_full_grid() {
    for (mode, cfg) in modes() {
        for (topo_name, topo) in topologies() {
            let label = format!("threaded-{mode}-{topo_name}");
            let (model, dataset) = workload(128);
            let (report, trace) = threaded_experiment(&cfg, &topo, mode == "skip")
                .run_traced(Arc::new(model), Arc::new(dataset))
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.final_params.len(), topo.len(), "{label}");
            let summary = oracle_check(&label, &cfg, &topo, THREADED_ITERS, &trace);
            // Every worker records every entered iteration plus the
            // terminal entry; jumps can only reduce the count.
            let n = topo.len() as u64;
            assert!(
                summary.advances <= n * (THREADED_ITERS + 1),
                "{label}: more advances than iterations"
            );
            assert!(
                summary.advances > n,
                "{label}: vacuously small trace ({} advances)",
                summary.advances
            );
            assert!(summary.reduces > 0, "{label}: no reduces recorded");
        }
    }
}

fn process_experiment(cfg: &HopConfig, topo: &Topology, straggle: bool) -> ProcessExperiment {
    let mut exp = ProcessExperiment::new(
        cfg.clone(),
        topo.clone(),
        PROCESS_ITERS,
        PathBuf::from(env!("CARGO_BIN_EXE_hop_worker")),
    );
    exp.seed = SEED;
    exp.examples = 128;
    exp.data_seed = 5;
    if straggle {
        exp.compute_sleep = Duration::from_micros(300);
        exp.slow_worker = Some((0, 15));
    }
    exp.stall_timeout = Duration::from_secs(30);
    exp
}

#[test]
fn process_traces_satisfy_the_oracle_on_the_grid() {
    // The third leg of the differential grid: one OS process per worker,
    // updates and tokens over localhost TCP, traces Lamport-merged by
    // the coordinator.
    for (mode, cfg) in modes() {
        for (topo_name, topo) in [
            ("ring6", Topology::ring(6)),
            ("clique5", Topology::complete(5)),
        ] {
            let label = format!("process-{mode}-{topo_name}");
            let mut exp = process_experiment(&cfg, &topo, mode == "skip");
            exp.failure_label = Some(label.clone());
            let (report, trace) = exp.run_traced().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(report.final_params.len(), topo.len(), "{label}");
            let summary = oracle_check(&label, &cfg, &topo, PROCESS_ITERS, &trace);
            let n = topo.len() as u64;
            assert!(
                summary.advances <= n * (PROCESS_ITERS + 1),
                "{label}: more advances than iterations"
            );
            assert!(
                summary.advances > n,
                "{label}: vacuously small trace ({} advances)",
                summary.advances
            );
            assert!(summary.reduces > 0, "{label}: no reduces recorded");
            assert!(summary.consumed > 0, "{label}: no consumes recorded");
            match mode {
                "token" | "backup" | "skip" => assert!(
                    summary.tokens_passed > 0,
                    "{label}: token mode passed no tokens"
                ),
                "staleness" => assert!(
                    summary.stale_admitted > 0,
                    "{label}: staleness mode admitted nothing"
                ),
                _ => {}
            }
        }
    }
}

#[test]
fn process_wire_bytes_equal_simulated_bytes() {
    // The wire-accounting pin: the simulator's modeled `bytes_sent` and
    // the process runtime's measured socket bytes must be the same
    // number for the same grid point — by construction, because an
    // update frame embeds its block in exactly `encoded_bytes()` payload
    // bytes and both sides count every *attempted* external send.
    // Backup mode is excluded (the §6.2(b) inquiry suppresses
    // timing-dependent sends), as is skip (jump timing changes the send
    // count on real sockets).
    let byte_modes = [
        ("standard", HopConfig::standard()),
        ("token", HopConfig::standard_with_tokens(3)),
        ("staleness", HopConfig::staleness(2, 4)),
    ];
    let codecs = [
        ("identity", CompressionConfig::Identity),
        ("int8", CompressionConfig::Int8Uniform),
    ];
    for (mode, base) in byte_modes {
        for (topo_name, topo) in [
            ("ring6", Topology::ring(6)),
            ("clique5", Topology::complete(5)),
        ] {
            for (codec_name, codec) in codecs {
                let label = format!("bytes-{mode}-{topo_name}-{codec_name}");
                let cfg = base.clone().with_compression(codec);
                let n = topo.len();
                let (model, dataset) = workload(128);
                let sim = SimExperiment {
                    topology: topo.clone(),
                    cluster: ClusterSpec::uniform(n, 2, 0.01, LinkModel::ethernet_1gbps()),
                    slowdown: SlowdownModel::paper_random(n),
                    protocol: Protocol::Hop(cfg.clone()),
                    hyper: Hyper::svm(),
                    max_iters: PROCESS_ITERS,
                    seed: SEED,
                    eval_every: 0,
                    eval_examples: 32,
                }
                .run(&model, &dataset)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
                let process = process_experiment(&cfg, &topo, false)
                    .run()
                    .unwrap_or_else(|e| panic!("{label}: {e}"));
                assert_eq!(
                    process.total_update_wire_bytes(),
                    sim.bytes_sent,
                    "{label}: socket bytes diverged from the simulated accounting"
                );
            }
        }
    }
}

#[test]
fn threaded_skip_jumps_and_conforms() {
    // Jumping on real threads needs real timing skew; retry a few times
    // on a loaded machine before declaring skip-mode conformance
    // untestable.
    let cfg = HopConfig::backup(1, 4).with_skip(SkipConfig {
        max_jump: 6,
        trigger_behind: 2,
    });
    let topo = Topology::ring(6);
    let mut exp = threaded_experiment(&cfg, &topo, true);
    exp.compute_sleep = Duration::from_micros(500);
    exp.slow_worker = Some((0, 20));
    exp.max_iters = 30;
    let mut jumps = 0;
    for attempt in 0..3 {
        let (model, dataset) = workload(128);
        let (_, trace) = exp
            .run_traced(Arc::new(model), Arc::new(dataset))
            .expect("skip-mode threaded run succeeds");
        let label = format!("threaded-skip-jump-attempt{attempt}");
        let summary = oracle_check(&label, &cfg, &topo, 30, &trace);
        jumps = summary.jumps;
        if jumps > 0 {
            break;
        }
    }
    assert!(jumps > 0, "the 20x straggler never jumped on real threads");
}

#[test]
fn both_runtimes_learn_on_every_mode() {
    // The loss-parity leg of the differential suite: the same mode on the
    // same workload must learn in both runtimes (skip mode included, now
    // that the threaded runtime supports it).
    let topo = Topology::ring(6);
    let eval: Vec<usize> = (0..128).collect();
    for (mode, cfg) in modes() {
        let (model, dataset) = workload(512);
        let threaded = {
            let mut exp = threaded_experiment(&cfg, &topo, mode == "skip");
            exp.max_iters = 40;
            exp.run(Arc::new(model), Arc::new(dataset))
                .unwrap_or_else(|e| panic!("{mode}: {e}"))
        };
        let (model, dataset) = workload(512);
        let sim = SimExperiment {
            topology: topo.clone(),
            cluster: ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
            slowdown: if mode == "skip" {
                SlowdownModel::paper_straggler(6, 0, 6.0)
            } else {
                SlowdownModel::None
            },
            protocol: Protocol::Hop(cfg.clone()),
            hyper: Hyper::svm(),
            max_iters: 40,
            seed: SEED,
            eval_every: 0,
            eval_examples: 128,
        }
        .run(&model, &dataset)
        .expect("sim runs");
        let threaded_loss = model.loss(&threaded.averaged_params(), &dataset.batch(&eval));
        let sim_loss = model.loss(&sim.averaged_params(), &dataset.batch(&eval));
        assert!(
            threaded_loss < 0.55,
            "{mode}: threaded runtime failed to learn (loss {threaded_loss})"
        );
        assert!(
            sim_loss < 0.55,
            "{mode}: simulator failed to learn (loss {sim_loss})"
        );
    }
}

#[test]
fn conformance_recording_does_not_change_the_run() {
    // The acceptance guard for the existing digest tables: recording a
    // trace must be invisible to everything the report digests.
    for (mode, cfg) in modes() {
        let (model, dataset) = workload(128);
        let exp = SimExperiment {
            topology: Topology::ring(6),
            cluster: ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
            slowdown: SlowdownModel::paper_random(6),
            protocol: Protocol::Hop(cfg),
            hyper: Hyper::svm(),
            max_iters: SIM_ITERS,
            seed: SEED,
            eval_every: 5,
            eval_examples: 32,
        };
        let plain = exp.run(&model, &dataset).expect("runs");
        let traced = exp.run_conformance(&model, &dataset).expect("runs traced");
        assert!(plain.conformance.is_none());
        assert!(traced.conformance.is_some());
        assert_eq!(plain.digest(), traced.digest(), "{mode}: digest diverged");
    }
}

#[test]
fn real_traces_round_trip_through_serialization() {
    let cfg = HopConfig::backup(1, 4).with_skip(SkipConfig {
        max_jump: 6,
        trigger_behind: 2,
    });
    let topo = Topology::ring(6);
    let trace = sim_trace(&cfg, &topo, true);
    let text = trace.to_text();
    let back = ProtocolTrace::from_text(&text).expect("round trip parses");
    assert_eq!(trace, back);
    // The replayed trace satisfies the oracle exactly like the original.
    let a = oracle_check("roundtrip-original", &cfg, &topo, SIM_ITERS, &trace);
    let b = oracle_check("roundtrip-parsed", &cfg, &topo, SIM_ITERS, &back);
    assert_eq!(a, b);
}

#[test]
fn oracle_rejects_a_corrupted_real_trace() {
    // The oracle must not be vacuous on real traces: corrupt one consumed
    // tag in a legal backup-mode trace and the replay has to fail.
    let cfg = HopConfig::backup(1, 4);
    let topo = Topology::ring(6);
    let trace = sim_trace(&cfg, &topo, false);
    let mut corrupted = ProtocolTrace::new();
    let mut bumped = false;
    for ev in trace.events() {
        let mut ev = ev.clone();
        if !bumped {
            if let hop::core::conformance::ProtocolEvent::Consume { iter, .. } = &mut ev {
                *iter += 1;
                bumped = true;
            }
        }
        corrupted.push(ev);
    }
    assert!(bumped, "legal trace contained no consume events");
    let oracle = Oracle::new(&cfg, &topo, SIM_ITERS);
    oracle.check(&trace).expect("original trace is legal");
    let violation = oracle
        .check(&corrupted)
        .expect_err("corrupted trace must be rejected");
    let msg = format!("{violation}");
    assert!(
        msg.contains("never sent") || msg.contains("cross-iteration"),
        "unexpected violation: {msg}"
    );
}
