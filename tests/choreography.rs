//! Property-based tests of the choreography handles: any *legal* handle
//! schedule — whatever the topology, interleaving or token discipline —
//! must emit a trace the runtime [`Oracle`] accepts. The handles make
//! illegal schedules unrepresentable at compile time (see the
//! `compile_fail` doctests on `hop::core::choreography`); these
//! properties pin the complementary direction: what the handles *do*
//! permit is always oracle-clean.

use hop::core::choreography::{self, Computing, Step};
use hop::core::config::HopConfig;
use hop::core::{Oracle, ProtocolTrace};
use hop::graph::Topology;
use hop::util::Xoshiro256;
use proptest::prelude::*;

/// The sampled topology families (all strongly connected, every size;
/// ring-based requires even `n >= 4` and falls back to the plain ring).
fn make_topology(family: usize, n: usize) -> Topology {
    match family % 3 {
        0 => Topology::ring(n),
        1 => Topology::complete(n),
        _ if n >= 4 && n.is_multiple_of(2) => Topology::ring_based(n),
        _ => Topology::ring(n),
    }
}

/// Drives `iters` lockstep iterations through the typed handles with a
/// randomized (but legal) schedule: worker order is shuffled per
/// half-round, consume order per worker is shuffled, and — when
/// `token_ig` is set — token grants/takes follow the runtime's queue
/// discipline (initial allotment implicit, one grant per entry, one take
/// per advance).
fn random_legal_trace(
    topo: &Topology,
    iters: u64,
    token_ig: Option<u64>,
    rng: &mut Xoshiro256,
) -> ProtocolTrace {
    let n = topo.len();
    let mut trace = ProtocolTrace::new();
    let mut order: Vec<usize> = (0..n).collect();
    for k in 0..iters {
        // Entry half-round: advances, grants and sends, in random worker
        // order. Every send of iteration `k` lands before any consume.
        rng.shuffle(&mut order);
        let mut computing: Vec<Option<Step<Computing>>> = (0..n).map(|_| None).collect();
        for &w in &order {
            let step = choreography::begin_step(&mut trace, w, k);
            if token_ig.is_some() && k > 0 {
                for &j in topo.external_in_neighbors(w) {
                    choreography::token_grant(&mut trace, w, j, 1);
                }
            }
            let mut outs: Vec<usize> = topo.out_neighbors(w).to_vec();
            rng.shuffle(&mut outs);
            for o in outs {
                step.send(&mut trace, o);
            }
            computing[w] = Some(step.begin_compute(&mut trace));
        }
        // Exchange half-round: consumes, reduces and token takes, again
        // in random worker order.
        rng.shuffle(&mut order);
        for &w in &order {
            let step = computing[w].take().expect("entered above");
            let mut step = step.end_compute(&mut trace);
            let mut ins: Vec<usize> = topo.in_neighbors(w).to_vec();
            rng.shuffle(&mut ins);
            for j in ins {
                step.consume(&mut trace, j, k);
            }
            let step = step.reduce(&mut trace);
            if token_ig.is_some() {
                for &o in topo.external_out_neighbors(w) {
                    step.take_token(&mut trace, o);
                }
            }
            step.complete();
        }
    }
    rng.shuffle(&mut order);
    for &w in &order {
        choreography::begin_step(&mut trace, w, iters).retire();
        if token_ig.is_some() {
            // The finished-worker courtesy flood.
            for &j in topo.external_in_neighbors(w) {
                choreography::token_grant(&mut trace, w, j, iters.max(1));
            }
        }
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Standard mode: every randomized legal handle schedule passes the
    /// Oracle, with exactly the expected advance/reduce/consume counts.
    #[test]
    fn random_legal_schedules_satisfy_the_oracle(
        seed in 0u64..10_000,
        family in 0usize..3,
        n in 2usize..7,
        iters in 1u64..6,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let topo = make_topology(family, n);
        let trace = random_legal_trace(&topo, iters, None, &mut rng);
        let cfg = HopConfig::standard();
        let oracle = Oracle::new(&cfg, &topo, iters);
        let summary = match oracle.check(&trace) {
            Ok(s) => s,
            Err(v) => return Err(TestCaseError::new(format!(
                "legal handle schedule violated the oracle: {v}"
            ))),
        };
        prop_assert_eq!(summary.advances, (n as u64) * (iters + 1));
        prop_assert_eq!(summary.reduces, (n as u64) * iters);
        let in_edges: u64 = (0..n).map(|w| topo.in_degree(w) as u64).sum();
        prop_assert_eq!(summary.consumed, in_edges * iters);
    }

    /// Token mode: the same schedules with the runtime's grant/take
    /// discipline stay oracle-clean for every allowed gap bound.
    #[test]
    fn random_token_schedules_satisfy_the_oracle(
        seed in 0u64..10_000,
        family in 0usize..3,
        n in 2usize..7,
        iters in 1u64..6,
        ig in 1u64..5,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let topo = make_topology(family, n);
        let trace = random_legal_trace(&topo, iters, Some(ig), &mut rng);
        let cfg = HopConfig::standard_with_tokens(ig);
        let oracle = Oracle::new(&cfg, &topo, iters);
        if let Err(v) = oracle.check(&trace) {
            return Err(TestCaseError::new(format!(
                "legal token schedule violated the oracle: {v}"
            )));
        }
    }

    /// Serialization round-trip: a handle-produced trace re-parses to
    /// the identical event sequence (the artifact path CI relies on).
    #[test]
    fn handle_traces_round_trip_through_text(
        seed in 0u64..10_000,
        n in 2usize..6,
        iters in 1u64..4,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let topo = Topology::ring(n);
        let trace = random_legal_trace(&topo, iters, None, &mut rng);
        let reparsed = match ProtocolTrace::from_text(&trace.to_text()) {
            Ok(t) => t,
            Err(e) => return Err(TestCaseError::new(format!("round-trip failed: {e}"))),
        };
        prop_assert_eq!(reparsed.events(), trace.events());
    }
}
