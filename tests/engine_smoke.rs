//! Smoke tests for the unified `SimEngine`: every protocol variant
//! completes a short `SimExperiment` and is bit-for-bit deterministic
//! (same seed ⇒ same report) through the shared engine.

use hop::core::config::{AdPsgdConfig, PragueConfig, PsConfig, PsMode, QgmConfig};
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig, TrainingReport};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};

/// Every protocol variant the engine drives: Hop standard / token /
/// NOTIFY-ACK / backup / staleness / skip, PS BSP / SSP / Async,
/// AD-PSGD, ring all-reduce, Prague partial all-reduce and QGM gossip.
fn all_variants() -> Vec<(&'static str, Protocol)> {
    vec![
        ("hop_standard", Protocol::Hop(HopConfig::standard())),
        (
            "hop_tokens",
            Protocol::Hop(HopConfig::standard_with_tokens(4)),
        ),
        ("hop_notify_ack", Protocol::Hop(HopConfig::notify_ack())),
        ("hop_backup", Protocol::Hop(HopConfig::backup(1, 5))),
        ("hop_staleness", Protocol::Hop(HopConfig::staleness(3, 5))),
        (
            "hop_skip",
            Protocol::Hop(HopConfig::backup(1, 5).with_skip(SkipConfig::with_max_jump(6))),
        ),
        ("ps_bsp", Protocol::Ps(PsConfig::new(PsMode::Bsp))),
        ("ps_ssp", Protocol::Ps(PsConfig::new(PsMode::Ssp(3)))),
        ("ps_async", Protocol::Ps(PsConfig::new(PsMode::Async))),
        ("adpsgd", Protocol::AdPsgd(AdPsgdConfig::default())),
        ("ring_allreduce", Protocol::RingAllReduce),
        ("prague", Protocol::Prague(PragueConfig::default())),
        ("qgm", Protocol::Qgm(QgmConfig::default())),
    ]
}

fn run_variant(protocol: Protocol, seed: u64) -> TrainingReport {
    let dataset = SyntheticWebspam::generate(192, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    SimExperiment {
        topology: Topology::ring(6),
        cluster: ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown: SlowdownModel::paper_random(6),
        protocol,
        hyper: Hyper::svm(),
        max_iters: 20,
        seed,
        eval_every: 10,
        eval_examples: 48,
    }
    .run(&model, &dataset)
    .expect("valid configuration")
}

#[test]
fn every_variant_completes_through_the_engine() {
    for (name, protocol) in all_variants() {
        let report = run_variant(protocol, 13);
        assert!(!report.deadlocked, "{name} deadlocked");
        assert!(!report.budget_exhausted, "{name} blew the event budget");
        assert!(report.wall_time > 0.0, "{name} reported zero wall time");
        assert!(
            !report.final_params.is_empty(),
            "{name} published no parameters"
        );
        for params in &report.final_params {
            assert!(
                params.iter().all(|v| v.is_finite()),
                "{name} produced non-finite parameters"
            );
        }
    }
}

#[test]
fn every_variant_follows_the_report_convention() {
    // The cross-protocol report convention: one final parameter vector
    // per worker (global-replica protocols replicate theirs), all of the
    // model's dimension, and every worker's trace reaches exactly
    // `max_iters` — a finished worker's counter rests at `max_iters`,
    // never `max_iters - 1`.
    for (name, protocol) in all_variants() {
        let report = run_variant(protocol, 13);
        assert_eq!(
            report.final_params.len(),
            6,
            "{name} must publish one parameter vector per worker"
        );
        let dim = report.final_params[0].len();
        assert!(dim > 0, "{name} published empty parameters");
        for params in &report.final_params {
            assert_eq!(params.len(), dim, "{name} published ragged parameters");
        }
        for w in 0..6 {
            let last = report
                .trace
                .records()
                .iter()
                .filter(|r| r.worker == w)
                .map(|r| r.iter)
                .max()
                .unwrap_or(0);
            assert_eq!(
                last, 20,
                "{name}: worker {w} trace ends at iteration {last}, not max_iters"
            );
        }
    }
}

#[test]
fn every_variant_is_deterministic_given_the_seed() {
    for (name, protocol) in all_variants() {
        let a = run_variant(protocol.clone(), 29);
        let b = run_variant(protocol, 29);
        assert_eq!(a.wall_time, b.wall_time, "{name} wall time diverged");
        assert_eq!(
            a.final_params, b.final_params,
            "{name} final parameters diverged"
        );
        assert_eq!(
            a.trace.records(),
            b.trace.records(),
            "{name} traces diverged"
        );
        assert_eq!(a.bytes_sent, b.bytes_sent, "{name} byte counts diverged");
        assert_eq!(
            a.eval_time.points(),
            b.eval_time.points(),
            "{name} eval curves diverged"
        );
    }
}

#[test]
fn parameter_replicas_share_until_first_write() {
    // The zero-copy plane: every worker's replica starts as an alias of
    // the one init allocation — snapshots are refcount bumps, not copies.
    use hop::core::sim_runtime::engine::SimEngine;
    use hop::core::sim_runtime::recorder::EvalConfig;
    use hop::core::Hyper;

    let dataset = SyntheticWebspam::generate(64, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    let slowdown = SlowdownModel::None;
    let engine: SimEngine<'_, ()> = SimEngine::new(
        ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
        4,
        &slowdown,
        &model,
        &dataset,
        &Hyper::svm(),
        5,
        0,
        EvalConfig {
            every: 0,
            examples: 16,
        },
    );
    let init = engine.init_block();
    // 4 worker replicas + the engine's own block + this snapshot.
    assert_eq!(init.strong_count(), 6);
    for wc in &engine.workers {
        assert!(wc.params.ptr_eq(&init), "replica copied instead of shared");
    }
    // A snapshot taken for a simulated send is another alias...
    let sent = engine.workers[0].params.snapshot();
    assert_eq!(sent.strong_count(), 7);
    // ...and copy-on-write only detaches the writer.
    let mut replica = engine.workers[1].params.snapshot();
    replica.make_mut()[0] += 1.0;
    assert!(!replica.ptr_eq(&init));
    assert!(sent.ptr_eq(&init));
}

#[test]
fn digest_table_is_stable_and_distinguishes_variants() {
    // The determinism digest table: every variant, same seed, run twice —
    // the digests must agree bit-for-bit, and no two variants may share a
    // digest (each protocol genuinely trains differently). One coincidence
    // class is *expected* and pinned here: pure back-pressure mechanisms
    // (token queues, SSP staleness bounds) leave the trajectory
    // bit-identical to their unbounded counterparts as long as the bound
    // never binds — which it doesn't at this scale.
    // The digest itself lives on `TrainingReport` (shared with the sweep
    // determinism table in `tests/sweep_determinism.rs`).
    let coincident = [("hop_tokens", "hop_standard"), ("ps_async", "ps_ssp")];
    let mut seen: Vec<(&str, u64)> = Vec::new();
    for (name, protocol) in all_variants() {
        let a = run_variant(protocol.clone(), 29).digest();
        let b = run_variant(protocol, 29).digest();
        assert_eq!(a, b, "{name} digest diverged across same-seed reruns");
        for (other, digest) in &seen {
            if coincident.contains(&(name, other)) {
                assert_eq!(
                    a, *digest,
                    "{name} should coincide with {other} while tokens never bind"
                );
                continue;
            }
            assert_ne!(a, *digest, "{name} and {other} produced identical reports");
        }
        seen.push((name, a));
    }
    assert_eq!(seen.len(), 13, "digest table must cover all variants");
}

#[test]
fn partial_allreduce_and_qgm_beat_ring_under_straggler() {
    // The heterogeneity claim the new baselines exist for: with one
    // permanent 6x straggler, ring all-reduce pays the straggler *plus*
    // the full 2(n-1)-step pipeline behind a global barrier every round.
    // Prague's groups pay only a small intra-group pipeline on the
    // straggler's critical path, and QGM gossip lets the straggler
    // advance as soon as its own neighborhood is ready — so at equal
    // iteration count both finish in less virtual wall time.
    let straggler = SlowdownModel::paper_straggler(6, 1, 6.0);
    let time_of = |protocol: Protocol| {
        let dataset = SyntheticWebspam::generate(192, 5);
        let model = Svm::log_loss(dataset.feature_dim());
        let report = SimExperiment {
            topology: Topology::ring(6),
            cluster: ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
            slowdown: straggler.clone(),
            protocol,
            hyper: Hyper::svm(),
            max_iters: 20,
            seed: 17,
            eval_every: 0,
            eval_examples: 32,
        }
        .run(&model, &dataset)
        .expect("valid configuration");
        assert!(!report.deadlocked);
        report.wall_time
    };
    let ring = time_of(Protocol::RingAllReduce);
    let prague = time_of(Protocol::Prague(PragueConfig::default()));
    let qgm = time_of(Protocol::Qgm(QgmConfig::default()));
    assert!(
        prague < ring,
        "Prague ({prague}) must beat ring all-reduce ({ring}) under a straggler"
    );
    assert!(
        qgm < ring,
        "QGM ({qgm}) must beat ring all-reduce ({ring}) under a straggler"
    );
}

#[test]
fn one_thousand_workers_complete_and_digest_stably() {
    // The scale floor of the event-pump work: a 1k-worker token-mode run
    // completes inside the engine's own event budget (no budget bump, no
    // stall) and is bit-for-bit reproducible — the digest, which eats the
    // full trace and every worker's final parameters, agrees across two
    // independent runs. Token mode keeps setup linear in workers (the
    // tokenless rotation window computes an all-pairs graph diameter).
    // Dimensions are small so the test measures the pump, not the SVM.
    use hop::data::webspam::{SyntheticWebspam, WebspamConfig};
    let run_once = || {
        let dataset = SyntheticWebspam::generate_with(
            256,
            5,
            WebspamConfig {
                dim: 32,
                nnz_per_example: 8,
                label_noise: 0.05,
            },
        );
        let model = Svm::log_loss(32);
        SimExperiment {
            topology: Topology::ring(1000),
            cluster: ClusterSpec::uniform(1000, 4, 0.05, LinkModel::ethernet_1gbps()),
            slowdown: SlowdownModel::None,
            protocol: Protocol::Hop(HopConfig::standard_with_tokens(4)),
            hyper: Hyper::svm(),
            max_iters: 3,
            seed: 29,
            eval_every: 0,
            eval_examples: 16,
        }
        .run(&model, &dataset)
        .expect("valid configuration")
    };
    let a = run_once();
    assert!(!a.deadlocked, "1k-worker run stalled");
    assert!(!a.budget_exhausted, "1k-worker run blew the event budget");
    assert_eq!(
        a.final_params.len(),
        1000,
        "one parameter vector per worker"
    );
    assert!(a.events_processed > 0, "pump processed no events");
    let b = run_once();
    assert_eq!(
        a.digest(),
        b.digest(),
        "1k-worker digest diverged across same-seed reruns"
    );
    assert_eq!(a.events_processed, b.events_processed);
}

#[test]
fn seeds_actually_matter() {
    // Guard against a frozen RNG: two different seeds must produce
    // different trajectories for at least the decentralized runtime.
    let a = run_variant(Protocol::Hop(HopConfig::standard()), 1);
    let b = run_variant(Protocol::Hop(HopConfig::standard()), 2);
    assert_ne!(a.final_params, b.final_params);
}
