//! Smoke tests for the unified `SimEngine`: every protocol variant
//! completes a short `SimExperiment` and is bit-for-bit deterministic
//! (same seed ⇒ same report) through the shared engine.

use hop::core::config::{AdPsgdConfig, PsConfig, PsMode};
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig, TrainingReport};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};

/// Every protocol variant the engine drives: Hop standard / token /
/// NOTIFY-ACK / backup / staleness / skip, PS BSP / SSP / Async,
/// AD-PSGD and ring all-reduce.
fn all_variants() -> Vec<(&'static str, Protocol)> {
    vec![
        ("hop_standard", Protocol::Hop(HopConfig::standard())),
        (
            "hop_tokens",
            Protocol::Hop(HopConfig::standard_with_tokens(4)),
        ),
        ("hop_notify_ack", Protocol::Hop(HopConfig::notify_ack())),
        ("hop_backup", Protocol::Hop(HopConfig::backup(1, 5))),
        ("hop_staleness", Protocol::Hop(HopConfig::staleness(3, 5))),
        (
            "hop_skip",
            Protocol::Hop(HopConfig::backup(1, 5).with_skip(SkipConfig::with_max_jump(6))),
        ),
        ("ps_bsp", Protocol::Ps(PsConfig { mode: PsMode::Bsp })),
        (
            "ps_ssp",
            Protocol::Ps(PsConfig {
                mode: PsMode::Ssp(3),
            }),
        ),
        (
            "ps_async",
            Protocol::Ps(PsConfig {
                mode: PsMode::Async,
            }),
        ),
        ("adpsgd", Protocol::AdPsgd(AdPsgdConfig::default())),
        ("ring_allreduce", Protocol::RingAllReduce),
    ]
}

fn run_variant(protocol: Protocol, seed: u64) -> TrainingReport {
    let dataset = SyntheticWebspam::generate(192, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    SimExperiment {
        topology: Topology::ring(6),
        cluster: ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown: SlowdownModel::paper_random(6),
        protocol,
        hyper: Hyper::svm(),
        max_iters: 20,
        seed,
        eval_every: 10,
        eval_examples: 48,
    }
    .run(&model, &dataset)
    .expect("valid configuration")
}

#[test]
fn every_variant_completes_through_the_engine() {
    for (name, protocol) in all_variants() {
        let report = run_variant(protocol, 13);
        assert!(!report.deadlocked, "{name} deadlocked");
        assert!(report.wall_time > 0.0, "{name} reported zero wall time");
        assert!(
            !report.final_params.is_empty(),
            "{name} published no parameters"
        );
        for params in &report.final_params {
            assert!(
                params.iter().all(|v| v.is_finite()),
                "{name} produced non-finite parameters"
            );
        }
    }
}

#[test]
fn every_variant_is_deterministic_given_the_seed() {
    for (name, protocol) in all_variants() {
        let a = run_variant(protocol.clone(), 29);
        let b = run_variant(protocol, 29);
        assert_eq!(a.wall_time, b.wall_time, "{name} wall time diverged");
        assert_eq!(
            a.final_params, b.final_params,
            "{name} final parameters diverged"
        );
        assert_eq!(
            a.trace.records(),
            b.trace.records(),
            "{name} traces diverged"
        );
        assert_eq!(a.bytes_sent, b.bytes_sent, "{name} byte counts diverged");
        assert_eq!(
            a.eval_time.points(),
            b.eval_time.points(),
            "{name} eval curves diverged"
        );
    }
}

#[test]
fn parameter_replicas_share_until_first_write() {
    // The zero-copy plane: every worker's replica starts as an alias of
    // the one init allocation — snapshots are refcount bumps, not copies.
    use hop::core::sim_runtime::engine::SimEngine;
    use hop::core::sim_runtime::recorder::EvalConfig;
    use hop::core::Hyper;

    let dataset = SyntheticWebspam::generate(64, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    let slowdown = SlowdownModel::None;
    let engine: SimEngine<'_, ()> = SimEngine::new(
        ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
        4,
        &slowdown,
        &model,
        &dataset,
        &Hyper::svm(),
        5,
        0,
        EvalConfig {
            every: 0,
            examples: 16,
        },
    );
    let init = engine.init_block();
    // 4 worker replicas + the engine's own block + this snapshot.
    assert_eq!(init.strong_count(), 6);
    for wc in &engine.workers {
        assert!(wc.params.ptr_eq(&init), "replica copied instead of shared");
    }
    // A snapshot taken for a simulated send is another alias...
    let sent = engine.workers[0].params.snapshot();
    assert_eq!(sent.strong_count(), 7);
    // ...and copy-on-write only detaches the writer.
    let mut replica = engine.workers[1].params.snapshot();
    replica.make_mut()[0] += 1.0;
    assert!(!replica.ptr_eq(&init));
    assert!(sent.ptr_eq(&init));
}

#[test]
fn seeds_actually_matter() {
    // Guard against a frozen RNG: two different seeds must produce
    // different trajectories for at least the decentralized runtime.
    let a = run_variant(Protocol::Hop(HopConfig::standard()), 1);
    let b = run_variant(Protocol::Hop(HopConfig::standard()), 2);
    assert_ne!(a.final_params, b.final_params);
}
