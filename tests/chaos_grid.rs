//! The chaos grid: standard / backup / skip modes under the fault plane.
//!
//! Sweeps message loss × worker churn × a byzantine neighbor over the
//! per-message Hop protocols and checks three things on every cell:
//!
//! 1. **Fault-aware conformance** — every trace replays clean through
//!    [`Oracle::check_with_faults`] against the run's [`FaultLog`]: gap
//!    bounds hold among live workers, token conservation holds modulo
//!    tokens held by crashed workers, and every `Crash`/`Rejoin`/`Lost`
//!    event in the trace is licensed by a logged fault.
//! 2. **Graceful degradation** — backup and skip modes complete the run
//!    where standard mode (which waits on *every* in-neighbor each
//!    iteration) deadlocks after the first lost update or crash.
//! 3. **Determinism** — a chaos run is a pure function of
//!    `(plan, seed)`: same seed, bit-identical report.
//!
//! On an oracle violation the offending trace **and the fault log** are
//! serialized to `target/conformance-failures/` so CI can upload them and
//! the failure can be replayed offline.

use hop::core::conformance::{ConformanceSummary, Oracle, ProtocolTrace};
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig};
use hop::data::webspam::SyntheticWebspam;
use hop::data::{Dataset, InMemoryDataset};
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{
    ByzSpec, ByzVariant, ClusterSpec, CrashSpec, FaultLog, FaultPlan, LinkModel, SlowdownModel,
};

const ITERS: u64 = 40;
// Chosen so every grid cell exhibits the designed behavior: backup and
// skip complete even at 5% loss (a 1-of-2 backup quorum stalls forever
// if both externals' updates for one iteration are lost — at 5% that
// double-loss hits a fair share of seeds, legitimately and
// oracle-clean), while standard deadlocks in every chaotic cell.
const SEED: u64 = 29;
const N: usize = 6;

fn modes() -> Vec<(&'static str, HopConfig)> {
    vec![
        ("standard", HopConfig::standard()),
        ("backup", HopConfig::backup(1, 4)),
        (
            "skip",
            HopConfig::backup(1, 4).with_skip(SkipConfig {
                max_jump: 6,
                trigger_behind: 2,
            }),
        ),
    ]
}

/// The full chaos plan of one cell: probabilistic loss at `loss`, one
/// crash/rejoin cycle (worker 2 dies entering iteration 8, eligible to
/// rejoin once the live cluster is 4 iterations past that — within
/// `max_ig`, so token-mode clusters can actually reach the rejoin
/// threshold), and one sign-flipping byzantine worker from iteration 10.
fn chaos_plan(loss: f64, churn: bool, byzantine: bool) -> FaultPlan {
    let mut plan = FaultPlan::none().with_loss(loss);
    if churn {
        plan = plan.with_crash(CrashSpec {
            worker: 2,
            at_iter: 8,
            down_iters: 4,
        });
    }
    if byzantine {
        plan = plan.with_byzantine(ByzSpec {
            worker: 4,
            from_iter: 10,
            variant: ByzVariant::SignFlip,
        });
    }
    plan
}

fn experiment(cfg: &HopConfig, plan: FaultPlan, seed: u64) -> SimExperiment {
    SimExperiment {
        topology: Topology::ring(N),
        cluster: ClusterSpec::uniform(N, 2, 0.01, LinkModel::ethernet_1gbps()).with_faults(plan),
        slowdown: SlowdownModel::paper_random(N),
        protocol: Protocol::Hop(cfg.clone()),
        hyper: Hyper::svm(),
        max_iters: ITERS,
        seed,
        eval_every: 0,
        eval_examples: 32,
    }
}

fn workload() -> (Svm, InMemoryDataset) {
    let dataset = SyntheticWebspam::generate(256, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    (model, dataset)
}

/// Replays `trace` through the fault-aware oracle; on a violation both
/// the trace and the fault log are serialized for offline replay.
fn oracle_check(
    label: &str,
    cfg: &HopConfig,
    trace: &ProtocolTrace,
    faults: &FaultLog,
) -> ConformanceSummary {
    let topo = Topology::ring(N);
    let oracle = Oracle::new(cfg, &topo, ITERS);
    match oracle.check_with_faults(trace, faults) {
        Ok(summary) => summary,
        Err(violation) => {
            let dir = std::path::Path::new("target/conformance-failures");
            std::fs::create_dir_all(dir).expect("create failure dir");
            let trace_path = dir.join(format!("{label}.trace"));
            std::fs::write(&trace_path, trace.to_text()).expect("serialize offending trace");
            let log_path = dir.join(format!("{label}.faults"));
            std::fs::write(&log_path, faults.to_text()).expect("serialize fault log");
            panic!(
                "{label}: {violation}\noffending trace ({} events) and fault log \
                 ({} faults) serialized to {} / {}",
                trace.len(),
                faults.len(),
                trace_path.display(),
                log_path.display()
            );
        }
    }
}

#[test]
fn chaos_grid_is_oracle_clean_and_degrades_gracefully() {
    let (model, dataset) = workload();
    for (mode, cfg) in modes() {
        for loss in [0.0, 0.01, 0.05] {
            let label = format!("chaos-{mode}-loss{loss}");
            let plan = chaos_plan(loss, true, true);
            let report = experiment(&cfg, plan, SEED)
                .run_conformance(&model, &dataset)
                .expect("valid chaos cell");
            let trace = report.conformance.as_ref().expect("tracing was on");
            let summary = oracle_check(&label, &cfg, trace, &report.fault_log);
            // The crash/rejoin cycle must actually have happened, and the
            // licensing accounting must match the engine's counters.
            assert_eq!(summary.crashes, report.crashes, "{label}");
            assert_eq!(summary.rejoins, report.rejoins, "{label}");
            if loss > 0.0 {
                assert!(
                    report.messages_dropped > 0,
                    "{label}: {loss} loss dropped nothing over {ITERS} iterations"
                );
            }
            match mode {
                // Standard mode waits on every in-neighbor every
                // iteration: the first crash (or lost update, which can
                // land before the crash is even due) starves its
                // neighbors and the stall propagates around the ring.
                "standard" => assert!(
                    report.deadlocked,
                    "{label}: standard mode survived chaos it cannot tolerate"
                ),
                // Backup quorums (2-of-3, self always present) tolerate a
                // dead or silent neighbor; skip additionally jumps over
                // the induced lag. Both must finish, and the full
                // crash/rejoin cycle must have played out.
                _ => {
                    assert!(!report.deadlocked, "{label}: {mode} mode deadlocked");
                    assert!(
                        report.crashes >= 1,
                        "{label}: the scheduled crash never fired"
                    );
                    assert!(
                        report.rejoins >= 1,
                        "{label}: crashed worker never rejoined"
                    );
                }
            }
        }
    }
}

#[test]
fn empty_plan_changes_nothing() {
    // The empty plan is the digest-identity baseline: a run with the
    // fault plane attached but injecting nothing is bit-identical to one
    // without it, and its report carries zeroed fault counters.
    let (model, dataset) = workload();
    let cfg = HopConfig::backup(1, 4);
    let with_plane = experiment(&cfg, FaultPlan::none(), SEED)
        .run(&model, &dataset)
        .expect("valid");
    let mut pristine = experiment(&cfg, FaultPlan::none(), SEED);
    pristine.cluster = ClusterSpec::uniform(N, 2, 0.01, LinkModel::ethernet_1gbps());
    let pristine = pristine.run(&model, &dataset).expect("valid");
    assert_eq!(with_plane.digest(), pristine.digest());
    assert_eq!(with_plane.messages_dropped, 0);
    assert_eq!(with_plane.crashes, 0);
    assert_eq!(with_plane.rejoins, 0);
    assert!(with_plane.fault_log.is_empty());
}

#[test]
fn chaos_runs_are_bit_identical_across_repeats() {
    // Chaos is deterministic: the loss draws, crash schedule and
    // byzantine corruption are pure functions of `(plan, seed)`, so the
    // same cell run twice produces the same digest, the same fault log
    // and the same trace.
    let (model, dataset) = workload();
    let cfg = HopConfig::backup(1, 4);
    let run = || {
        experiment(&cfg, chaos_plan(0.05, true, true), SEED)
            .run_conformance(&model, &dataset)
            .expect("valid")
    };
    let a = run();
    let b = run();
    assert_eq!(a.digest(), b.digest());
    assert_eq!(a.fault_log, b.fault_log);
    assert_eq!(a.conformance, b.conformance);
    assert_eq!(a.final_params, b.final_params);
    // And a different seed draws different faults (the plan is seeded).
    let c = experiment(&cfg, chaos_plan(0.05, true, true), SEED + 1)
        .run_conformance(&model, &dataset)
        .expect("valid");
    assert_ne!(a.digest(), c.digest());
}

#[test]
fn byzantine_corruption_perturbs_parameters_but_not_conformance() {
    // A sign-flipping byzantine worker corrupts values, not protocol
    // structure: the trace stays oracle-clean (no licensing needed), but
    // the learned parameters diverge from the honest run.
    let (model, dataset) = workload();
    let cfg = HopConfig::backup(1, 4);
    let byz = experiment(&cfg, chaos_plan(0.0, false, true), SEED)
        .run_conformance(&model, &dataset)
        .expect("valid");
    let honest = experiment(&cfg, FaultPlan::none(), SEED)
        .run_conformance(&model, &dataset)
        .expect("valid");
    oracle_check(
        "chaos-byzantine-only",
        &cfg,
        byz.conformance.as_ref().expect("traced"),
        &byz.fault_log,
    );
    assert!(
        !byz.deadlocked,
        "byzantine corruption must not stall the protocol"
    );
    assert_ne!(
        byz.final_params, honest.final_params,
        "sign-flipped updates must perturb the learned parameters"
    );
    assert!(
        byz.fault_log
            .events()
            .iter()
            .any(|e| matches!(e, hop::sim::FaultEvent::Byzantine { worker: 4, .. })),
        "corruption events must be logged"
    );
}
