//! Failure injection: message reordering via network jitter.
//!
//! §6.1 explicitly does not assume the network preserves message order
//! ("This may happen because we do not assume network preserves the
//! message order"). These tests inject heavy per-message jitter — enough
//! to reorder updates across iterations — and check that every protocol
//! mode still terminates, still converges, and still respects the
//! iteration-gap bounds.

use hop::core::config::ConfigError;
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::bounds;
use hop::graph::{ShortestPaths, Topology};
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, FaultPlan, LinkModel, SlowdownModel};

fn jittery_experiment(cfg: HopConfig, jitter: f64) -> SimExperiment {
    let n = 6;
    SimExperiment {
        topology: Topology::ring(n),
        cluster: ClusterSpec::uniform(n, 2, 0.01, LinkModel::ethernet_1gbps().with_jitter(jitter)),
        slowdown: SlowdownModel::paper_random(n),
        protocol: Protocol::Hop(cfg),
        hyper: Hyper::svm(),
        max_iters: 60,
        seed: 99,
        eval_every: 15,
        eval_examples: 128,
    }
}

#[test]
fn all_modes_survive_heavy_reordering() {
    // Jitter of 3x the compute time guarantees frequent cross-iteration
    // reordering of update arrivals.
    let dataset = SyntheticWebspam::generate(512, 4);
    let model = Svm::log_loss(dataset.feature_dim());
    for cfg in [
        HopConfig::standard(),
        HopConfig::standard_with_tokens(4),
        HopConfig::notify_ack(),
        HopConfig::backup(1, 4),
        HopConfig::staleness(3, 4),
    ] {
        let report = jittery_experiment(cfg.clone(), 0.03)
            .run(&model, &dataset)
            .expect("valid");
        assert!(!report.deadlocked, "{cfg:?} deadlocked under jitter");
        let first = report.eval_time.points()[0].1;
        let last = report.eval_time.last().expect("eval").1;
        assert!(
            last < first,
            "{cfg:?} failed to learn under jitter: {first} -> {last}"
        );
    }
}

#[test]
fn theorem_1_holds_under_reordering() {
    let dataset = SyntheticWebspam::generate(512, 4);
    let model = Svm::log_loss(dataset.feature_dim());
    let report = jittery_experiment(HopConfig::standard(), 0.05)
        .run(&model, &dataset)
        .expect("valid");
    let topo = Topology::ring(6);
    let sp = ShortestPaths::new(&topo);
    let gaps = report.trace.max_pairwise_gap();
    for i in 0..6 {
        for j in 0..6 {
            if i != j {
                assert!(
                    bounds::standard(sp.dist(j, i)).admits(gaps[i][j]),
                    "gap({i},{j}) = {} violates Theorem 1 under reordering",
                    gaps[i][j]
                );
            }
        }
    }
}

#[test]
fn jittered_runs_remain_deterministic() {
    let dataset = SyntheticWebspam::generate(512, 4);
    let model = Svm::log_loss(dataset.feature_dim());
    let exp = jittery_experiment(HopConfig::backup(1, 4), 0.04);
    let a = exp.run(&model, &dataset).expect("valid");
    let b = exp.run(&model, &dataset).expect("valid");
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.wall_time, b.wall_time);
}

#[test]
fn malformed_link_knobs_are_rejected_up_front() {
    // `with_jitter` asserts on negative/NaN bounds, but a struct literal
    // can smuggle one past the builder; experiment-level validation must
    // catch it as a configuration error before any simulation runs.
    for bad in [f64::NAN, -0.01, f64::INFINITY] {
        let mut exp = jittery_experiment(HopConfig::standard(), 0.0);
        let link = LinkModel {
            jitter: bad,
            ..LinkModel::ethernet_1gbps()
        };
        exp.cluster = ClusterSpec::uniform(6, 2, 0.01, link);
        assert!(
            matches!(exp.validate(), Err(ConfigError::InvalidLink(_))),
            "jitter {bad} must be rejected"
        );
    }
    let ok = jittery_experiment(HopConfig::standard(), 0.02);
    assert!(ok.validate().is_ok());
}

#[test]
fn malformed_fault_plans_are_rejected_up_front() {
    // Loss is a probability: 1.0 (every message lost) and above make
    // every protocol trivially deadlock, so the plan refuses them the
    // same way it refuses NaN.
    for bad in [1.5, 1.0, -0.2, f64::NAN] {
        let mut exp = jittery_experiment(HopConfig::standard(), 0.0);
        exp.cluster = ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps())
            .with_faults(FaultPlan::none().with_loss(bad));
        assert!(
            matches!(exp.validate(), Err(ConfigError::InvalidFaultPlan(_))),
            "loss rate {bad} must be rejected"
        );
    }
}

#[test]
fn rotating_queues_discard_reordered_stale_updates() {
    // Under backup workers + jitter some updates arrive after their
    // iteration was already satisfied; they must be counted as discarded
    // stale updates rather than corrupt later reduces.
    let dataset = SyntheticWebspam::generate(512, 4);
    let model = Svm::log_loss(dataset.feature_dim());
    let report = jittery_experiment(HopConfig::backup(1, 4), 0.05)
        .run(&model, &dataset)
        .expect("valid");
    assert!(!report.deadlocked);
    assert!(
        report.stale_discarded > 0,
        "expected stale discards under reordering + backup"
    );
}
