//! Property tests for the fault plane: randomized crash schedules over
//! the trickiest protocol states.
//!
//! Two crash timings interact with subtle machinery and get their own
//! properties, each swept over ring / torus / expander graphs with
//! randomized fault plans:
//!
//! - **Crash during a jump** — skip mode can advance a worker several
//!   iterations at once; a crash scheduled inside the jumped-over window
//!   must still fire (at the first iteration entry past it), and the
//!   rejoin must land on a tag the remaining neighbors will still feed.
//! - **Crash while holding tokens** — in token mode the crashed worker
//!   holds unspent send-permits; conservation must hold modulo the
//!   crashed worker, and the rejoin must not be admitted on token
//!   credit.
//!
//! Every trace replays through [`Oracle::check_with_faults`]; a run may
//! legitimately deadlock (a 1-of-2 quorum stalls when both externals'
//! updates for one iteration are lost), but it may never violate.

use hop::core::conformance::Oracle;
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig};
use hop::data::webspam::SyntheticWebspam;
use hop::data::{Dataset, InMemoryDataset};
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{ByzSpec, ByzVariant, ClusterSpec, CrashSpec, FaultPlan, LinkModel, SlowdownModel};
use proptest::prelude::*;

const ITERS: u64 = 30;

fn topology(index: usize) -> Topology {
    match index {
        0 => Topology::ring(6),
        1 => Topology::torus(3, 3),
        _ => Topology::expander(6, 4, 7),
    }
}

fn plan(loss: f64, crash: CrashSpec, byz: bool) -> FaultPlan {
    let mut plan = FaultPlan::none().with_loss(loss).with_crash(crash);
    if byz {
        plan = plan.with_byzantine(ByzSpec {
            worker: 1,
            from_iter: 5,
            variant: ByzVariant::SignFlip,
        });
    }
    plan
}

fn workload() -> (Svm, InMemoryDataset) {
    let dataset = SyntheticWebspam::generate(128, 4);
    let model = Svm::log_loss(dataset.feature_dim());
    (model, dataset)
}

/// Runs one chaotic cell and replays it through the fault-aware oracle;
/// returns whether the run completed (vs. a legitimate stall).
fn check_cell(cfg: &HopConfig, topo: Topology, plan: FaultPlan, seed: u64) -> bool {
    let (model, dataset) = workload();
    let n = topo.len();
    let exp = SimExperiment {
        topology: topo.clone(),
        cluster: ClusterSpec::uniform(n, 2, 0.01, LinkModel::ethernet_1gbps()).with_faults(plan),
        slowdown: SlowdownModel::paper_random(n),
        protocol: Protocol::Hop(cfg.clone()),
        hyper: Hyper::svm(),
        max_iters: ITERS,
        seed,
        eval_every: 0,
        eval_examples: 32,
    };
    let report = exp.run_conformance(&model, &dataset).expect("valid cell");
    let trace = report.conformance.as_ref().expect("tracing was on");
    let oracle = Oracle::new(cfg, &topo, ITERS);
    let summary = oracle
        .check_with_faults(trace, &report.fault_log)
        .unwrap_or_else(|v| panic!("oracle violation: {v}"));
    assert_eq!(summary.crashes, report.crashes);
    assert_eq!(summary.rejoins, report.rejoins);
    if !report.deadlocked {
        // A completed run necessarily walked worker `crash.worker`
        // through the crash point, so the cycle must have played out.
        assert_eq!(report.crashes, 1, "completed run never fired its crash");
        let mut done = vec![0u64; n];
        for r in report.trace.records() {
            done[r.worker] = done[r.worker].max(r.iter);
        }
        assert!(
            done.iter().all(|&d| d >= ITERS),
            "completed run left a worker behind: {done:?}"
        );
    }
    !report.deadlocked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Skip mode jumps over iterations; a crash scheduled inside the
    /// jumped window still fires and the rejoin stays conformant.
    #[test]
    fn crash_during_jump_stays_conformant(
        seed in 0u64..200,
        topo_index in 0usize..3,
        loss_pct in 0u64..3,
        crash_worker in 0usize..6,
        at_iter in 2u64..15,
        down_iters in 1u64..6,
        byz in 0u64..2,
    ) {
        let cfg = HopConfig::backup(1, 4).with_skip(SkipConfig {
            max_jump: 6,
            trigger_behind: 2,
        });
        let crash = CrashSpec { worker: crash_worker, at_iter, down_iters };
        let plan = plan(loss_pct as f64 * 0.01, crash, byz == 1);
        check_cell(&cfg, topology(topo_index), plan, seed);
    }

    /// Token mode: the crashed worker holds unspent send-permits; token
    /// conservation must hold modulo the crash and the rejoin must not
    /// enter on token credit.
    #[test]
    fn crash_while_holding_token_stays_conformant(
        seed in 0u64..200,
        topo_index in 0usize..3,
        loss_pct in 0u64..3,
        crash_worker in 0usize..6,
        at_iter in 2u64..15,
        down_iters in 1u64..6,
        byz in 0u64..2,
    ) {
        let cfg = HopConfig::backup(1, 4);
        let crash = CrashSpec { worker: crash_worker, at_iter, down_iters };
        let plan = plan(loss_pct as f64 * 0.01, crash, byz == 1);
        check_cell(&cfg, topology(topo_index), plan, seed);
    }
}
