//! End-to-end tests for the multi-process runtime: real worker
//! processes (the `hop_worker` binary, re-exec'd by the coordinator)
//! exchanging updates and tokens over localhost TCP.
//!
//! The conformance grid lives in `tests/conformance.rs`; this file
//! covers the lifecycle edges — does a fleet of OS processes actually
//! learn, and does a killed worker surface as a clean peer-loss error
//! (with the partial trace serialized for offline replay) instead of a
//! hang or a bare stall.

use hop::core::process::{ProcessError, ProcessExperiment};
use hop::core::HopConfig;
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::model::Model;
use std::path::PathBuf;
use std::time::Duration;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hop_worker"))
}

#[test]
fn a_process_fleet_learns_the_synthetic_workload() {
    let mut exp =
        ProcessExperiment::new(HopConfig::standard(), Topology::ring(4), 20, worker_bin());
    exp.examples = 256;
    let report = exp.run().expect("process run succeeds");
    assert_eq!(report.final_params.len(), 4);
    assert_eq!(report.update_wire_bytes.len(), 4);
    for (w, losses) in report.losses.iter().enumerate() {
        assert_eq!(losses.len(), 20, "worker {w} recorded a loss per iteration");
    }
    assert!(
        report.total_update_wire_bytes() > 0,
        "external updates crossed the sockets"
    );
    // Evaluate the averaged model against the identically reconstructed
    // workload: the fleet must have actually learned, not just finished.
    let dataset = SyntheticWebspam::generate(exp.examples, exp.data_seed);
    let model = Svm::log_loss(dataset.feature_dim());
    let eval: Vec<usize> = (0..dataset.len()).collect();
    let loss = model.loss(&report.averaged_params(), &dataset.batch(&eval));
    assert!(loss < 0.6, "process fleet failed to learn (loss {loss})");
}

#[test]
fn a_killed_worker_surfaces_as_peer_loss_with_a_partial_trace() {
    let label = "process-killed-worker";
    let trace_path = PathBuf::from(format!("target/conformance-failures/{label}.trace"));
    let _ = std::fs::remove_file(&trace_path);
    let mut exp = ProcessExperiment::new(
        HopConfig::standard_with_tokens(2),
        Topology::ring(3),
        6,
        worker_bin(),
    );
    exp.examples = 64;
    // Worker 1 exits(101) at iteration 2 — no Finished frame, no
    // summary: exactly what a crashed process looks like to its peers.
    exp.die_at = Some((1, 2));
    exp.stall_timeout = Duration::from_millis(500);
    exp.failure_label = Some(label.to_string());
    let err = exp
        .run_traced()
        .expect_err("a killed worker must fail the run");
    match &err {
        ProcessError::PeerLost { failures } => {
            assert!(
                failures.iter().any(|(w, _)| *w == 1),
                "worker 1 was the one killed, got {failures:?}"
            );
        }
        other => panic!("expected PeerLost, got {other}"),
    }
    // Survivors report rather than hang, and the coordinator serialized
    // whatever trace fragments it collected for offline replay.
    let text = std::fs::read_to_string(&trace_path)
        .expect("partial trace was serialized for the failed run");
    assert!(
        !text.trim().is_empty(),
        "partial trace should contain the events recorded before the crash"
    );
    assert!(
        text.lines().any(|l| l.starts_with("advance")),
        "partial trace should hold real protocol events, got:\n{text}"
    );
}

#[test]
fn unsupported_configs_are_rejected_up_front() {
    let mut exp = ProcessExperiment::new(HopConfig::standard(), Topology::ring(3), 4, worker_bin());
    exp.config.order = hop::core::ComputeOrder::Serial;
    match exp.run() {
        Err(ProcessError::Unsupported(_)) => {}
        other => panic!("serial order must be rejected, got {other:?}"),
    }
}
