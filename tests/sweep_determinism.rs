//! The sweep determinism table: the parallel `SweepRunner` at 1, 2 and 4
//! threads must produce reports bit-identical (by `TrainingReport::digest`)
//! to direct sequential `SimExperiment::run` calls — for at least one
//! point per protocol family. This is the engine's core invariant
//! (one spec ⇒ one report, bit-for-bit) surviving parallel execution.

use hop::core::config::{AdPsgdConfig, PragueConfig, PsConfig, PsMode, QgmConfig};
use hop::core::{HopConfig, Hyper, Protocol};
use hop::data::webspam::SyntheticWebspam;
use hop::data::{Dataset, InMemoryDataset};
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use hop::sweep::{SweepGrid, SweepRunner, SweepSummary};

/// One grid point per protocol family (Hop decentralized, parameter
/// server, ring all-reduce, AD-PSGD, Prague, QGM) plus a second Hop
/// mitigation variant, × two seeds. Ring(6) is bipartite, so AD-PSGD's
/// default config accepts it.
fn family_grid() -> SweepGrid {
    SweepGrid::new(Hyper::svm(), 12)
        .protocol("hop_standard", Protocol::Hop(HopConfig::standard()))
        .protocol("hop_backup", Protocol::Hop(HopConfig::backup(1, 5)))
        .protocol("ps_bsp", Protocol::Ps(PsConfig::new(PsMode::Bsp)))
        .protocol("ring_allreduce", Protocol::RingAllReduce)
        .protocol("adpsgd", Protocol::AdPsgd(AdPsgdConfig::default()))
        .protocol("prague", Protocol::Prague(PragueConfig::default()))
        .protocol("qgm", Protocol::Qgm(QgmConfig::default()))
        .cluster(
            "uniform",
            Topology::ring(6),
            ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps()),
        )
        .slowdown("paper_random", SlowdownModel::paper_random(6))
        .seeds([5, 9])
        .eval(6, 32)
}

fn workload() -> (Svm, InMemoryDataset) {
    let dataset = SyntheticWebspam::generate(192, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    (model, dataset)
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential_runs_at_any_thread_count() {
    let (model, dataset) = workload();
    let grid = family_grid();
    // The reference digest table: every point run directly through the
    // sequential SimExperiment API, in grid order.
    let sequential: Vec<(String, u64)> = grid
        .points()
        .iter()
        .map(|p| {
            let report = p
                .experiment
                .run(&model, &dataset)
                .expect("grid point must be valid");
            assert!(!report.deadlocked, "{} deadlocked", p.label());
            (p.label(), report.digest())
        })
        .collect();
    assert_eq!(sequential.len(), 14, "one point per family × 2 seeds");

    for threads in [1, 2, 4] {
        let results = SweepRunner::new(threads)
            .run(&grid, &model, &dataset)
            .expect("grid must be valid");
        let table: Vec<(String, u64)> = results
            .iter()
            .map(|r| (r.point.label(), r.digest()))
            .collect();
        assert_eq!(
            table, sequential,
            "digest table diverged at {threads} threads"
        );
    }
}

#[test]
fn summary_artifacts_are_thread_count_independent() {
    // Everything downstream of the reports — the rendered table, CSV and
    // JSON — must also be byte-identical at any thread count.
    let (model, dataset) = workload();
    let grid = family_grid();
    let reference = SweepSummary::from_results(
        &SweepRunner::new(1)
            .run(&grid, &model, &dataset)
            .expect("grid must be valid"),
    );
    for threads in [2, 4] {
        let summary = SweepSummary::from_results(
            &SweepRunner::new(threads)
                .run(&grid, &model, &dataset)
                .expect("grid must be valid"),
        );
        assert_eq!(summary.table().render(), reference.table().render());
        assert_eq!(summary.to_csv(), reference.to_csv());
        assert_eq!(summary.to_json(), reference.to_json());
    }
}

#[test]
fn sweep_digests_distinguish_the_families() {
    // A digest table that can't tell protocols apart would vacuously pass
    // the determinism assertions; make sure every family actually trains
    // differently on this grid.
    let (model, dataset) = workload();
    let results = SweepRunner::new(2)
        .run(&family_grid(), &model, &dataset)
        .expect("grid must be valid");
    for a in &results {
        for b in &results {
            if a.point.index != b.point.index {
                assert_ne!(
                    a.digest(),
                    b.digest(),
                    "{} and {} produced identical reports",
                    a.point.label(),
                    b.point.label()
                );
            }
        }
    }
}
