//! Integration tests of the threaded runtime: the protocol on real OS
//! threads with blocking queues, cross-checked against the simulator's
//! semantics.

use hop::core::threaded::ThreadedExperiment;
use hop::core::{HopConfig, Hyper};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::svm::Svm;
use hop::model::Model;
use std::sync::Arc;
use std::time::Duration;

fn experiment(config: HopConfig, topology: Topology) -> ThreadedExperiment {
    ThreadedExperiment {
        config,
        topology,
        max_iters: 60,
        seed: 21,
        hyper: Hyper::svm(),
        compute_sleep: Duration::ZERO,
        slow_worker: None,
        stall_timeout: Duration::from_secs(30),
        faults: hop_sim::FaultPlan::none(),
    }
}

#[test]
fn threaded_standard_reaches_low_loss() {
    let dataset = Arc::new(SyntheticWebspam::generate(1024, 5));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let report = experiment(HopConfig::standard_with_tokens(4), Topology::ring(6))
        .run(model.clone(), dataset.clone())
        .expect("runs");
    let avg = report.averaged_params();
    let eval: Vec<usize> = (0..256).collect();
    let loss = model.loss(&avg, &dataset.batch(&eval));
    assert!(loss < 0.5, "threaded averaged loss {loss}");
}

#[test]
fn threaded_modes_match_simulator_quality() {
    // Both runtimes implement the same semantics; their final losses land
    // in the same ballpark for each mode on the same workload.
    let dataset = Arc::new(SyntheticWebspam::generate(1024, 5));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let eval: Vec<usize> = (0..256).collect();
    for cfg in [
        HopConfig::standard_with_tokens(4),
        HopConfig::backup(1, 4),
        HopConfig::staleness(3, 4),
    ] {
        let threaded = experiment(cfg.clone(), Topology::ring(6))
            .run(model.clone(), dataset.clone())
            .expect("threaded runs");
        let sim = hop::core::SimExperiment {
            topology: Topology::ring(6),
            cluster: hop::sim::ClusterSpec::uniform(
                6,
                2,
                0.01,
                hop::sim::LinkModel::ethernet_1gbps(),
            ),
            slowdown: hop::sim::SlowdownModel::None,
            protocol: hop::core::Protocol::Hop(cfg.clone()),
            hyper: Hyper::svm(),
            max_iters: 60,
            seed: 21,
            eval_every: 0,
            eval_examples: 128,
        }
        .run(model.as_ref(), dataset.as_ref())
        .expect("sim runs");
        let threaded_loss = model.loss(&threaded.averaged_params(), &dataset.batch(&eval));
        let sim_loss = model.loss(&sim.averaged_params(), &dataset.batch(&eval));
        assert!(
            (threaded_loss - sim_loss).abs() < 0.15,
            "{cfg:?}: threaded {threaded_loss} vs sim {sim_loss}"
        );
    }
}

#[test]
fn threaded_handles_larger_rings() {
    let dataset = Arc::new(SyntheticWebspam::generate(512, 5));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let mut exp = experiment(HopConfig::standard_with_tokens(3), Topology::ring_based(12));
    exp.max_iters = 30;
    let report = exp.run(model, dataset).expect("12 threads run");
    assert_eq!(report.final_params.len(), 12);
    for losses in &report.losses {
        assert_eq!(losses.len(), 30);
    }
}

#[test]
fn threaded_fault_shim_is_oracle_licensed_end_to_end() {
    // The thread-local fault shim drops sends (probabilistic loss plus a
    // crash window modeled as send omission) and logs every omission;
    // the merged trace must replay clean through the fault-aware oracle
    // with every Lost event licensed by the log, and a 1-backup quorum
    // must ride out the silence and still learn.
    let dataset = Arc::new(SyntheticWebspam::generate(1024, 5));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let cfg = HopConfig::backup(1, 4);
    let mut exp = experiment(cfg.clone(), Topology::ring(6));
    // Moderate chaos: a 1-of-2 quorum legitimately stalls forever when
    // both externals' updates for one iteration go silent, and during
    // the omission window each of worker 2's neighbors leans on a single
    // external — these knobs (and the deterministic keyed loss draws)
    // keep the run completable.
    exp.faults = hop_sim::FaultPlan::none()
        .with_loss(0.01)
        .with_crash(hop_sim::CrashSpec {
            worker: 2,
            at_iter: 10,
            down_iters: 4,
        });
    let (report, trace) = exp
        .run_traced(model.clone(), dataset.clone())
        .expect("faulty run completes");
    assert!(
        !report.fault_log.is_empty(),
        "the shim injected nothing over 60 iterations"
    );
    let topo = Topology::ring(6);
    let oracle = hop::core::Oracle::new(&cfg, &topo, 60);
    oracle
        .check_with_faults(&trace, &report.fault_log)
        .expect("licensed trace replays clean");
    let eval: Vec<usize> = (0..256).collect();
    let loss = model.loss(&report.averaged_params(), &dataset.batch(&eval));
    assert!(loss < 0.5, "faulty threaded run failed to learn: {loss}");
}

#[test]
fn threaded_with_simulated_compute_jitter() {
    // Distinct per-thread sleeps exercise genuinely skewed interleavings.
    let dataset = Arc::new(SyntheticWebspam::generate(256, 5));
    let model = Arc::new(Svm::log_loss(dataset.feature_dim()));
    let mut exp = experiment(HopConfig::backup(1, 3), Topology::ring(4));
    exp.compute_sleep = Duration::from_micros(300);
    exp.max_iters = 40;
    let report = exp.run(model, dataset).expect("runs with jitter");
    assert_eq!(report.final_params.len(), 4);
}
