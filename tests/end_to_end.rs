//! Cross-crate end-to-end tests: every protocol trains real models on the
//! simulated cluster and the paper's headline orderings hold.

use hop::core::config::{PsConfig, PsMode};
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment, SkipConfig};
use hop::data::images::SyntheticImages;
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::Topology;
use hop::model::cnn::TinyCnn;
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};

fn svm_experiment(protocol: Protocol, slowdown: SlowdownModel, iters: u64) -> SimExperiment {
    let n = 8;
    SimExperiment {
        topology: Topology::ring_based(n),
        cluster: ClusterSpec::uniform(n, 4, 0.02, LinkModel::ethernet_1gbps()),
        slowdown,
        protocol,
        hyper: Hyper::svm(),
        max_iters: iters,
        seed: 1234,
        eval_every: 20,
        eval_examples: 128,
    }
}

#[test]
fn every_hop_mode_converges_on_svm() {
    let dataset = SyntheticWebspam::generate(1024, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    for cfg in [
        HopConfig::standard(),
        HopConfig::standard_with_tokens(4),
        HopConfig::notify_ack(),
        HopConfig::backup(1, 4),
        HopConfig::staleness(3, 4),
        HopConfig::hybrid(1, 3, 4),
        HopConfig::backup(1, 4).with_skip(SkipConfig::with_max_jump(6)),
    ] {
        let exp = svm_experiment(
            Protocol::Hop(cfg.clone()),
            SlowdownModel::paper_random(8),
            80,
        );
        let report = exp.run(&model, &dataset).expect("valid config");
        assert!(!report.deadlocked, "{cfg:?} deadlocked");
        let first = report.eval_time.points()[0].1;
        let last = report.eval_time.last().expect("eval points").1;
        assert!(
            last < first * 0.8,
            "{cfg:?}: eval loss did not improve ({first} -> {last})"
        );
    }
}

#[test]
fn cnn_trains_decentralized() {
    let dataset = SyntheticImages::generate(512, 2);
    let model = TinyCnn::for_synthetic_images(2);
    let mut exp = svm_experiment(
        Protocol::Hop(HopConfig::standard_with_tokens(4)),
        SlowdownModel::None,
        60,
    );
    exp.hyper = Hyper::cnn();
    let report = exp.run(&model, &dataset).expect("valid");
    let first = report.eval_time.points()[0].1;
    let last = report.eval_time.last().expect("eval").1;
    assert!(last < first, "CNN loss did not improve: {first} -> {last}");
}

#[test]
fn decentralized_beats_ps_on_wall_time() {
    // Fig. 13's shape: same per-worker iteration count, same compute; the
    // PS pays for NIC concentration.
    let dataset = SyntheticWebspam::generate(1024, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    let dec = svm_experiment(
        Protocol::Hop(HopConfig::standard()),
        SlowdownModel::None,
        60,
    )
    .run(&model, &dataset)
    .expect("valid");
    let ps = svm_experiment(
        Protocol::Ps(PsConfig::new(PsMode::Bsp)),
        SlowdownModel::None,
        60,
    )
    .run(&model, &dataset)
    .expect("valid");
    assert!(
        dec.wall_time < ps.wall_time,
        "decentralized {} vs PS {}",
        dec.wall_time,
        ps.wall_time
    );
}

#[test]
fn backup_and_staleness_beat_standard_under_random_slowdown() {
    let dataset = SyntheticWebspam::generate(1024, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    let slow = SlowdownModel::paper_random(8);
    let standard = svm_experiment(
        Protocol::Hop(HopConfig::standard_with_tokens(5)),
        slow.clone(),
        100,
    )
    .run(&model, &dataset)
    .expect("valid");
    let backup = svm_experiment(Protocol::Hop(HopConfig::backup(1, 5)), slow.clone(), 100)
        .run(&model, &dataset)
        .expect("valid");
    let stale = svm_experiment(Protocol::Hop(HopConfig::staleness(5, 5)), slow, 100)
        .run(&model, &dataset)
        .expect("valid");
    assert!(backup.wall_time < standard.wall_time);
    assert!(stale.wall_time <= standard.wall_time);
}

#[test]
fn skipping_beats_plain_backup_under_deterministic_straggler() {
    // Fig. 19's shape.
    let dataset = SyntheticWebspam::generate(1024, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    let slow = SlowdownModel::paper_straggler(8, 0, 4.0);
    let backup = svm_experiment(Protocol::Hop(HopConfig::backup(1, 5)), slow.clone(), 80)
        .run(&model, &dataset)
        .expect("valid");
    let skip = svm_experiment(
        Protocol::Hop(HopConfig::backup(1, 5).with_skip(SkipConfig::with_max_jump(10))),
        slow,
        80,
    )
    .run(&model, &dataset)
    .expect("valid");
    assert!(!skip.deadlocked);
    assert!(
        skip.wall_time < backup.wall_time * 0.8,
        "skip {} vs backup {}",
        skip.wall_time,
        backup.wall_time
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let dataset = SyntheticWebspam::generate(512, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    let exp = svm_experiment(
        Protocol::Hop(HopConfig::hybrid(1, 3, 4)),
        SlowdownModel::paper_random(8),
        50,
    );
    let a = exp.run(&model, &dataset).expect("valid");
    let b = exp.run(&model, &dataset).expect("valid");
    assert_eq!(a.final_params, b.final_params);
    assert_eq!(a.wall_time, b.wall_time);
    assert_eq!(a.trace.records(), b.trace.records());
}

#[test]
fn sparser_graphs_suffer_less_from_random_slowdown() {
    // Fig. 12's crossover: stretch(ring) < stretch(double-ring).
    let dataset = SyntheticWebspam::generate(1024, 9);
    let model = Svm::log_loss(dataset.feature_dim());
    let stretch = |topo: Topology| {
        let n = topo.len();
        let mk = |slow: SlowdownModel| SimExperiment {
            topology: topo.clone(),
            cluster: ClusterSpec::uniform(n, 4, 0.02, LinkModel::ethernet_1gbps()),
            slowdown: slow,
            protocol: Protocol::Hop(HopConfig::standard()),
            hyper: Hyper::svm(),
            max_iters: 80,
            seed: 1234,
            eval_every: 0,
            eval_examples: 64,
        };
        let homo = mk(SlowdownModel::None)
            .run(&model, &dataset)
            .expect("valid");
        let hetero = mk(SlowdownModel::paper_random(n))
            .run(&model, &dataset)
            .expect("valid");
        hetero.wall_time / homo.wall_time
    };
    let ring = stretch(Topology::ring(16));
    let double_ring = stretch(Topology::double_ring(16));
    assert!(ring > 1.05, "slowdown must hurt the ring too ({ring})");
    assert!(
        ring < double_ring,
        "sparser ring should suffer less: ring {ring} vs double-ring {double_ring}"
    );
}
