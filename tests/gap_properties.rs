//! Property-based tests of the iteration-gap theory (Theorems 1 and 2,
//! Table 1) on randomized topologies, slowdowns and protocol settings.

use hop::core::{HopConfig, Hyper, Protocol, SimExperiment};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::bounds::{self, BaseSetting};
use hop::graph::{ShortestPaths, Topology};
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use hop::util::Xoshiro256;
use proptest::prelude::*;

fn run_experiment(
    topo: &Topology,
    cfg: HopConfig,
    slowdown: SlowdownModel,
    seed: u64,
) -> hop::core::TrainingReport {
    let dataset = SyntheticWebspam::generate(256, 3);
    let model = Svm::log_loss(dataset.feature_dim());
    SimExperiment {
        topology: topo.clone(),
        cluster: ClusterSpec::uniform(topo.len(), 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown,
        protocol: Protocol::Hop(cfg),
        hyper: Hyper::svm(),
        max_iters: 40,
        seed,
        eval_every: 0,
        eval_examples: 32,
    }
    .run(&model, &dataset)
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 1: standard decentralized training never exceeds
    /// `Iter(i) - Iter(j) <= length(Path_{j->i})`, whatever the topology
    /// and slowdown pattern.
    #[test]
    fn theorem_1_holds_on_random_topologies(seed in 0u64..200, n in 3usize..8, extra in 0usize..5) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let topo = Topology::random_connected(n, extra, &mut rng);
        let report = run_experiment(
            &topo,
            HopConfig::standard(),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        bounds::standard(sp.dist(j, i)).admits(gaps[i][j]),
                        "gap({i},{j}) = {} exceeds Theorem 1 on {topo}",
                        gaps[i][j]
                    );
                }
            }
        }
    }

    /// Theorem 2: token queues bound the gap by
    /// `min(b0 * path(j->i), max_ig * path(i->j))` even with backup
    /// workers (whose raw bound is infinite).
    #[test]
    fn theorem_2_holds_with_tokens_and_backup(seed in 0u64..200, max_ig in 1u64..5) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::backup(1, max_ig),
            SlowdownModel::Compose(
                Box::new(SlowdownModel::paper_random(n)),
                Box::new(SlowdownModel::paper_straggler(n, (seed % n as u64) as usize, 4.0)),
            ),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let bound = BaseSetting::BackupWorkers.pair_bound_with_tokens(
                        max_ig,
                        sp.dist(j, i),
                        sp.dist(i, j),
                    );
                    prop_assert!(
                        bound.admits(gaps[i][j]),
                        "gap({i},{j}) = {} exceeds {bound} (max_ig={max_ig})",
                        gaps[i][j]
                    );
                }
            }
        }
    }

    /// Staleness: adjacent workers never drift beyond `s + 1`.
    #[test]
    fn staleness_bounds_adjacent_gap(seed in 0u64..200, s in 1u64..5) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::staleness(s, s + 2),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in topo.external_in_neighbors(i) {
                prop_assert!(
                    gaps[i][j] <= (s + 1) as i64,
                    "adjacent staleness gap {} > s+1 = {}",
                    gaps[i][j],
                    s + 1
                );
            }
        }
    }

    /// NOTIFY-ACK: the §3.3 bound `min(path(j->i), 2 * path(i->j))`.
    #[test]
    fn notify_ack_bound_holds(seed in 0u64..100) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::notify_ack(),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        bounds::notify_ack(sp.dist(j, i), sp.dist(i, j)).admits(gaps[i][j])
                    );
                }
            }
        }
    }
}

#[test]
fn token_gap_is_tight_for_an_extreme_straggler() {
    // With one worker effectively frozen, the fast workers should get
    // *close* to the token bound (not just under it). Standard mode won't
    // do (Theorem 1 already caps adjacent gaps at 1); backup workers make
    // the token bound the only active constraint.
    let n = 4;
    let topo = Topology::ring(n);
    let report = run_experiment(
        &topo,
        HopConfig::backup(1, 3),
        SlowdownModel::paper_straggler(n, 0, 50.0),
        7,
    );
    let gaps = report.trace.max_pairwise_gap();
    let neighbor_gap = gaps[1][0];
    assert!(
        (2..=3).contains(&neighbor_gap),
        "expected near-bound gap, got {neighbor_gap}"
    );
}
