//! Property-based tests of the iteration-gap theory (Theorems 1 and 2,
//! Table 1) on randomized topologies, slowdowns and protocol settings —
//! for the Hop family and for the Prague / QGM runtime families, so every
//! protocol sits under the same property net.

use hop::core::config::{PragueConfig, QgmConfig};
use hop::core::{HopConfig, Hyper, Protocol, SimExperiment};
use hop::data::webspam::SyntheticWebspam;
use hop::data::Dataset;
use hop::graph::bounds::{self, BaseSetting};
use hop::graph::{ShortestPaths, Topology};
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use hop::util::Xoshiro256;
use proptest::prelude::*;

fn run_protocol(
    topo: &Topology,
    protocol: Protocol,
    slowdown: SlowdownModel,
    seed: u64,
) -> hop::core::TrainingReport {
    let dataset = SyntheticWebspam::generate(256, 3);
    let model = Svm::log_loss(dataset.feature_dim());
    SimExperiment {
        topology: topo.clone(),
        cluster: ClusterSpec::uniform(topo.len(), 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown,
        protocol,
        hyper: Hyper::svm(),
        max_iters: 40,
        seed,
        eval_every: 0,
        eval_examples: 32,
    }
    .run(&model, &dataset)
    .expect("valid config")
}

fn run_experiment(
    topo: &Topology,
    cfg: HopConfig,
    slowdown: SlowdownModel,
    seed: u64,
) -> hop::core::TrainingReport {
    run_protocol(topo, Protocol::Hop(cfg), slowdown, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorem 1: standard decentralized training never exceeds
    /// `Iter(i) - Iter(j) <= length(Path_{j->i})`, whatever the topology
    /// and slowdown pattern.
    #[test]
    fn theorem_1_holds_on_random_topologies(seed in 0u64..200, n in 3usize..8, extra in 0usize..5) {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let topo = Topology::random_connected(n, extra, &mut rng);
        let report = run_experiment(
            &topo,
            HopConfig::standard(),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        bounds::standard(sp.dist(j, i)).admits(gaps[i][j]),
                        "gap({i},{j}) = {} exceeds Theorem 1 on {topo}",
                        gaps[i][j]
                    );
                }
            }
        }
    }

    /// Theorem 2: token queues bound the gap by
    /// `min(b0 * path(j->i), max_ig * path(i->j))` even with backup
    /// workers (whose raw bound is infinite).
    #[test]
    fn theorem_2_holds_with_tokens_and_backup(seed in 0u64..200, max_ig in 1u64..5) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::backup(1, max_ig),
            SlowdownModel::Compose(
                Box::new(SlowdownModel::paper_random(n)),
                Box::new(SlowdownModel::paper_straggler(n, (seed % n as u64) as usize, 4.0)),
            ),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    let bound = BaseSetting::BackupWorkers.pair_bound_with_tokens(
                        max_ig,
                        sp.dist(j, i),
                        sp.dist(i, j),
                    );
                    prop_assert!(
                        bound.admits(gaps[i][j]),
                        "gap({i},{j}) = {} exceeds {bound} (max_ig={max_ig})",
                        gaps[i][j]
                    );
                }
            }
        }
    }

    /// Staleness: adjacent workers never drift beyond `s + 1`.
    #[test]
    fn staleness_bounds_adjacent_gap(seed in 0u64..200, s in 1u64..5) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::staleness(s, s + 2),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for &j in topo.external_in_neighbors(i) {
                prop_assert!(
                    gaps[i][j] <= (s + 1) as i64,
                    "adjacent staleness gap {} > s+1 = {}",
                    gaps[i][j],
                    s + 1
                );
            }
        }
    }

    /// QGM is synchronous gossip over the topology: a worker only enters
    /// iteration `k + 1` after every in-neighbor's iteration-`k`
    /// half-step, so the Theorem 1 bound applies verbatim — whatever the
    /// (strongly connected) topology and slowdown pattern.
    #[test]
    fn qgm_gap_respects_theorem_1(seed in 0u64..200, n in 3usize..8, extra in 0usize..5) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xA5A5);
        let topo = Topology::random_connected(n, extra, &mut rng);
        let report = run_protocol(
            &topo,
            Protocol::Qgm(QgmConfig::default()),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        bounds::standard(sp.dist(j, i)).admits(gaps[i][j]),
                        "QGM gap({i},{j}) = {} exceeds Theorem 1 on {topo}",
                        gaps[i][j]
                    );
                }
            }
        }
    }

    /// Prague's group-barrier invariant: a worker enters round `r + 1`
    /// only after every member of its round-`r` group (the deterministic
    /// `(seed, epoch)` partition) has entered round `r`. Checked by
    /// replaying the timing trace against the recomputed partitions.
    #[test]
    fn prague_group_barrier_holds(
        seed in 0u64..200,
        group_size in 1usize..5,
        regen_every in 1u64..3,
    ) {
        let n = 6;
        let topo = Topology::ring(n);
        let cfg = PragueConfig { group_size, regen_every, ..PragueConfig::default() };
        let report = run_protocol(
            &topo,
            Protocol::Prague(cfg),
            SlowdownModel::Compose(
                Box::new(SlowdownModel::paper_random(n)),
                Box::new(SlowdownModel::paper_straggler(n, (seed % n as u64) as usize, 4.0)),
            ),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let mut iters = vec![0u64; n];
        for rec in report.trace.records() {
            if rec.iter > 0 {
                let round = rec.iter - 1;
                let epoch = round / regen_every;
                let groups = hop::graph::groups::partition(n, group_size, seed, epoch);
                let membership = hop::graph::groups::membership(&groups);
                for &member in &groups[membership[rec.worker]] {
                    prop_assert!(
                        iters[member] >= round,
                        "worker {} entered round {} before group member {} reached round {} \
                         (member at {})",
                        rec.worker, rec.iter, member, round, iters[member]
                    );
                }
            }
            iters[rec.worker] = iters[rec.worker].max(rec.iter);
        }
        // Everyone finished all 40 rounds.
        for (w, &it) in iters.iter().enumerate() {
            prop_assert!(it == 40, "worker {w} stopped at round {it}");
        }
    }

    /// NOTIFY-ACK: the §3.3 bound `min(path(j->i), 2 * path(i->j))`.
    #[test]
    fn notify_ack_bound_holds(seed in 0u64..100) {
        let n = 6;
        let topo = Topology::ring(n);
        let report = run_experiment(
            &topo,
            HopConfig::notify_ack(),
            SlowdownModel::paper_random(n),
            seed,
        );
        prop_assert!(!report.deadlocked);
        let sp = ShortestPaths::new(&topo);
        let gaps = report.trace.max_pairwise_gap();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    prop_assert!(
                        bounds::notify_ack(sp.dist(j, i), sp.dist(i, j)).admits(gaps[i][j])
                    );
                }
            }
        }
    }
}

#[test]
fn token_gap_is_tight_for_an_extreme_straggler() {
    // With one worker effectively frozen, the fast workers should get
    // *close* to the token bound (not just under it). Standard mode won't
    // do (Theorem 1 already caps adjacent gaps at 1); backup workers make
    // the token bound the only active constraint.
    let n = 4;
    let topo = Topology::ring(n);
    let report = run_experiment(
        &topo,
        HopConfig::backup(1, 3),
        SlowdownModel::paper_straggler(n, 0, 50.0),
        7,
    );
    let gaps = report.trace.max_pairwise_gap();
    let neighbor_gap = gaps[1][0];
    assert!(
        (2..=3).contains(&neighbor_gap),
        "expected near-bound gap, got {neighbor_gap}"
    );
}
