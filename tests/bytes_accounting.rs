//! Cross-protocol regression tests for `TrainingReport::bytes_sent`.
//!
//! Every simulated protocol accounts wire traffic its own way (virtual
//! network transfers, analytic ring pipelines, group reduces), which
//! makes silent double-counting or dropped messages easy to introduce.
//! These tests recompute the expected byte totals from first principles —
//! trace-visible `Send` events where the protocol emits them, closed-form
//! message counts everywhere else — and pin `bytes_sent` to the result.
//! A second group checks the compression plane's arithmetic: encoded
//! bytes plus `bytes_saved` must reassemble the dense total, and the
//! headline reduction ratios from the paper-style workload must hold.

use hop::core::config::{AdPsgdConfig, PragueConfig, PsConfig, PsMode, QgmConfig};
use hop::core::{HopConfig, Hyper, Protocol, ProtocolEvent, SimExperiment, TrainingReport};
use hop::data::webspam::{SyntheticWebspam, WebspamConfig};
use hop::data::Dataset;
use hop::graph::{groups, Topology};
use hop::model::svm::Svm;
use hop::sim::{ClusterSpec, LinkModel, SlowdownModel};
use hop::tensor::CompressionConfig;

const N: usize = 6;
const ITERS: u64 = 20;
const SEED: u64 = 13;

fn experiment(protocol: Protocol) -> SimExperiment {
    SimExperiment {
        topology: Topology::ring(N),
        cluster: ClusterSpec::uniform(N, 2, 0.01, LinkModel::ethernet_1gbps()),
        slowdown: SlowdownModel::paper_random(N),
        protocol,
        hyper: Hyper::svm(),
        max_iters: ITERS,
        seed: SEED,
        eval_every: 10,
        eval_examples: 48,
    }
}

fn run(protocol: Protocol) -> TrainingReport {
    let dataset = SyntheticWebspam::generate(192, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    experiment(protocol)
        .run(&model, &dataset)
        .expect("valid configuration")
}

fn run_traced(protocol: Protocol) -> TrainingReport {
    let dataset = SyntheticWebspam::generate(192, 5);
    let model = Svm::log_loss(dataset.feature_dim());
    experiment(protocol)
        .run_conformance(&model, &dataset)
        .expect("valid configuration")
}

/// Dense wire size of one parameter message, derived from the report
/// itself so the expectation tracks the model dimension.
fn param_bytes(report: &TrainingReport) -> u64 {
    4 * report.final_params[0].len() as u64
}

#[test]
fn hop_variants_match_their_trace_visible_sends() {
    // The decentralized runtime emits a conformance `Send` event for
    // every delivery, including the self-send (which never touches the
    // network). Expected bytes = external sends x dense message size.
    for (name, protocol) in [
        ("standard", Protocol::Hop(HopConfig::standard())),
        ("tokens", Protocol::Hop(HopConfig::standard_with_tokens(4))),
        ("backup", Protocol::Hop(HopConfig::backup(1, 5))),
        ("staleness", Protocol::Hop(HopConfig::staleness(3, 5))),
    ] {
        let report = run_traced(protocol);
        let trace = report.conformance.as_ref().expect("traced run");
        let external_sends = trace
            .events()
            .iter()
            .filter(|ev| matches!(ev, ProtocolEvent::Send { from, to, .. } if from != to))
            .count() as u64;
        assert!(external_sends > 0, "{name}: no sends recorded");
        assert_eq!(
            report.bytes_sent,
            external_sends * param_bytes(&report),
            "{name}: bytes_sent disagrees with the trace"
        );
    }
}

#[test]
fn qgm_sends_once_per_external_edge_per_iteration() {
    let report = run(Protocol::Qgm(QgmConfig::default()));
    let topo = Topology::ring(N);
    let edges: u64 = (0..N)
        .map(|w| topo.external_out_neighbors(w).len() as u64)
        .sum();
    assert_eq!(report.bytes_sent, ITERS * edges * param_bytes(&report));
}

#[test]
fn ps_modes_move_one_pull_and_one_push_per_iteration() {
    for mode in [PsMode::Bsp, PsMode::Ssp(3), PsMode::Async] {
        let report = run(Protocol::Ps(PsConfig::new(mode)));
        // Per worker iteration: one parameter pull (or broadcast share)
        // plus one gradient push, both of dense size.
        assert_eq!(
            report.bytes_sent,
            2 * N as u64 * ITERS * param_bytes(&report),
            "{mode:?}"
        );
    }
}

#[test]
fn adpsgd_moves_two_blocks_per_pairing() {
    // On an even ring the bipartite 2-coloring has n/2 active workers;
    // each completes `max_iters` iterations and each iteration ends in
    // exactly one pairwise averaging: one block each way.
    let report = run(Protocol::AdPsgd(AdPsgdConfig::default()));
    let pairings = (N as u64 / 2) * ITERS;
    assert_eq!(report.bytes_sent, pairings * 2 * param_bytes(&report));
}

#[test]
fn ring_allreduce_moves_two_chunk_sweeps_per_round() {
    let report = run(Protocol::RingAllReduce);
    // The analytic pipeline: 2(n-1) steps, n chunks in flight per step,
    // chunk = dense/n (truncated exactly as the protocol truncates).
    let chunk = (param_bytes(&report) as f64 / N as f64) as u64;
    let per_round = (2 * (N - 1) * N) as u64 * chunk;
    assert_eq!(report.bytes_sent, ITERS * per_round);
}

#[test]
fn prague_bytes_follow_the_recomputed_partition() {
    let cfg = PragueConfig::default();
    let report = run(Protocol::Prague(cfg));
    // Rebuild each round's group partition from the same pure function
    // of (seed, epoch) the protocol uses and re-derive the group
    // all-reduce traffic: 2(g-1) chunk sweeps of dense/g each, which at
    // the identity codec is exactly 2(g-1) x dense.
    let mut expected = 0u64;
    for round in 0..ITERS {
        let epoch = round / cfg.regen_every;
        for group in groups::partition(N, cfg.group_size, SEED, epoch) {
            if group.len() > 1 {
                expected += (group.len() as u64 - 1) * 2 * param_bytes(&report);
            }
        }
    }
    assert_eq!(report.bytes_sent, expected);
}

#[test]
fn compression_reassembles_the_dense_total() {
    // For the gossip protocol every external send runs through the
    // plane, so encoded bytes + saved bytes must equal the identity
    // run's total, message for message.
    let dense = run(Protocol::Hop(HopConfig::standard()));
    for codec in [
        CompressionConfig::TopK { ratio: 0.01 },
        CompressionConfig::Int8Uniform,
    ] {
        let compressed = run(Protocol::Hop(HopConfig::standard().with_compression(codec)));
        assert!(compressed.bytes_saved > 0, "{codec:?} saved nothing");
        assert_eq!(
            compressed.bytes_sent + compressed.bytes_saved,
            dense.bytes_sent,
            "{codec:?} lost bytes in accounting"
        );
    }
}

#[test]
fn headline_reduction_ratios_hold_on_the_large_workload() {
    // The acceptance workload: decentralized gossip over a 64K-parameter
    // model. Top-1% must cut wire traffic at least 8x; int8 about 4x.
    let dataset = SyntheticWebspam::generate_with(
        96,
        5,
        WebspamConfig {
            dim: 65_536,
            nnz_per_example: 32,
            label_noise: 0.05,
        },
    );
    let model = Svm::log_loss(dataset.feature_dim());
    let run_codec = |codec: CompressionConfig| {
        let mut exp = experiment(Protocol::Hop(HopConfig::standard().with_compression(codec)));
        exp.max_iters = 5;
        exp.run(&model, &dataset).expect("valid configuration")
    };
    let dense = run_codec(CompressionConfig::Identity);
    let topk = run_codec(CompressionConfig::TopK { ratio: 0.01 });
    let int8 = run_codec(CompressionConfig::Int8Uniform);
    assert!(
        topk.bytes_sent * 8 <= dense.bytes_sent,
        "top-1% reduction only {:.2}x",
        dense.bytes_sent as f64 / topk.bytes_sent as f64
    );
    let int8_ratio = dense.bytes_sent as f64 / int8.bytes_sent as f64;
    assert!(
        int8_ratio > 3.9 && int8_ratio < 4.1,
        "int8 reduction {int8_ratio:.2}x, expected ~4x"
    );
}
