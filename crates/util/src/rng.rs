//! Deterministic pseudo-random number generation.
//!
//! Implements xoshiro256++ (Blackman & Vigna) seeded through SplitMix64,
//! plus the sampling helpers the rest of the workspace needs: uniform
//! ranges, Bernoulli trials, Gaussian variates (Box–Muller), shuffles and
//! weighted choice. The generator is intentionally independent of the
//! `rand` crate so results are stable across toolchain upgrades.

/// SplitMix64 step used to expand a 64-bit seed into generator state.
///
/// This is the seeding procedure recommended by the xoshiro authors: it
/// guarantees that even adjacent seeds produce well-distributed state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xoshiro256++ pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use hop_util::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from_u64(7);
/// let mut b = Xoshiro256::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Xoshiro256 {
    s: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated worker its own stream while keeping global determinism.
    pub fn split(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }

    /// Returns the next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift with rejection for exact uniformity.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal variate via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Draw u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.index(items.len())]
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir-free, via a
    /// partial Fisher–Yates over an index vector).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct indices from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = Xoshiro256::seed_from_u64(123);
        let mut b = Xoshiro256::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_uniform_enough() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn next_below_one_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..32 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::seed_from_u64(77);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let z = rng.normal();
            sum += z;
            sum_sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        let sample = rng.sample_indices(100, 20);
        assert_eq!(sample.len(), 20);
        let mut s = sample.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = Xoshiro256::seed_from_u64(42);
        let mut c1 = parent.split();
        let mut c2 = parent.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Xoshiro256::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
    }
}
