//! Small statistics helpers used by the metrics and bench crates.

/// Summary statistics over a sample of `f64` values.
///
/// # Examples
///
/// ```
/// use hop_util::stats::Summary;
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
    sum_sq: f64,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn from_slice(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty sample");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "summary sample contains NaN"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        let sum = values.iter().sum();
        let sum_sq = values.iter().map(|v| v * v).sum();
        Self {
            sorted,
            sum,
            sum_sq,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed summary).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.sum / self.sorted.len() as f64
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        let n = self.sorted.len() as f64;
        let mean = self.mean();
        (self.sum_sq / n - mean * mean).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// Linear-interpolated percentile, `q` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 100]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=100.0).contains(&q), "percentile {q} out of range");
        if self.sorted.len() == 1 {
            return self.sorted[0];
        }
        let pos = q / 100.0 * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }
}

/// Exponentially weighted moving average, used for smoothing loss curves.
///
/// # Examples
///
/// ```
/// use hop_util::stats::Ewma;
/// let mut e = Ewma::new(0.5);
/// assert_eq!(e.update(4.0), 4.0); // first sample initializes
/// assert_eq!(e.update(0.0), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha {alpha} out of (0,1]");
        Self { alpha, value: None }
    }

    /// Feeds one sample and returns the smoothed value.
    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => self.alpha * sample + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value, if any sample has been seen.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// Computes the arithmetic mean of a slice; returns 0.0 for an empty slice.
pub fn mean_or_zero(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::from_slice(&[3.0, 1.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
        assert!((s.median() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_variance() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let s = Summary::from_slice(&[0.0, 10.0]);
        assert!((s.percentile(25.0) - 2.5).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 0.0);
        assert_eq!(s.percentile(100.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn summary_empty_panics() {
        Summary::from_slice(&[]);
    }

    #[test]
    #[should_panic(expected = "contains NaN")]
    fn summary_nan_panics() {
        Summary::from_slice(&[1.0, f64::NAN]);
    }

    #[test]
    fn ewma_smooths() {
        let mut e = Ewma::new(0.25);
        e.update(8.0);
        let v = e.update(0.0);
        assert!((v - 6.0).abs() < 1e-12);
        assert_eq!(e.value(), Some(v));
    }

    #[test]
    fn mean_or_zero_handles_empty() {
        assert_eq!(mean_or_zero(&[]), 0.0);
        assert_eq!(mean_or_zero(&[2.0, 4.0]), 3.0);
    }
}
