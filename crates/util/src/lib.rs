//! Shared utilities for the Hop reproduction: a deterministic PRNG and
//! small statistics helpers.
//!
//! Every stochastic choice in the workspace (synthetic data generation,
//! minibatch sampling, random slowdowns, randomized topologies) draws from
//! [`rng::Xoshiro256`], a self-contained xoshiro256++ implementation, so
//! that all experiments are bit-for-bit reproducible across platforms and
//! do not depend on external crates.
//!
//! # Examples
//!
//! ```
//! use hop_util::rng::Xoshiro256;
//!
//! let mut rng = Xoshiro256::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! ```

pub mod rng;
pub mod stats;

pub use rng::Xoshiro256;
pub use stats::Summary;
