//! Length-prefixed wire format for the multi-process runtime.
//!
//! Every socket in the process runtime carries a stream of *frames*:
//! a little-endian `u32` payload length followed by exactly that many
//! payload bytes, written with `write_all` and read with `read_exact`
//! semantics. The first payload byte is a [`Message`] discriminant; the
//! rest is the fixed per-variant body described on each variant.
//!
//! The format exists to make the simulated byte accounting *true on a
//! real wire*: an [`Message::Update`] frame embeds a
//! [`CompressedBlock`] in exactly
//! [`CompressedBlock::encoded_bytes`] payload bytes — dense `4·len`,
//! sparse `4 + 8·k`, int8 `4 + 4 + len` — so a process-runtime worker
//! that sums its update block bytes reports the same number the
//! discrete-event simulator charges its virtual network. (Frame and
//! header bytes are transport overhead on both sides and counted by
//! neither.)
//!
//! Decoding fails *closed*: a peer death mid-frame surfaces as
//! [`WireError::Closed`] or [`WireError::Truncated`], an oversized
//! length prefix as [`WireError::FrameTooLarge`] (nothing is
//! allocated), unknown discriminants as
//! [`WireError::UnknownDiscriminant`] /
//! [`WireError::UnknownBlockKind`], and structurally invalid bodies as
//! [`WireError::Malformed`]. No input byte sequence panics, and a
//! socket read timeout surfaces as [`WireError::Timeout`] instead of a
//! hang — a timeout mid-frame poisons the stream (the remaining bytes
//! of the half-read frame are unrecoverable), so callers either read
//! without a timeout and rely on peer-close, or treat `Timeout` as
//! fatal for that connection.

use std::fmt;
use std::io::{ErrorKind, Read, Write};

use hop_queue::Tag;
use hop_tensor::CompressedBlock;

/// Largest payload a frame may declare (64 MiB). A prefix beyond this
/// is rejected before any allocation — a corrupt or adversarial length
/// word cannot balloon memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong reading or writing a frame.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended mid-frame: `got` of `expected` bytes arrived
    /// before EOF. The classic killed-peer signature.
    Truncated {
        /// Bytes the frame (or its length prefix) still owed.
        expected: usize,
        /// Bytes that actually arrived.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    FrameTooLarge {
        /// The declared payload length.
        len: u32,
    },
    /// The payload's first byte names no known [`Message`] variant.
    UnknownDiscriminant {
        /// The offending discriminant byte.
        tag: u8,
    },
    /// An update frame's block-kind byte names no known
    /// [`CompressedBlock`] variant.
    UnknownBlockKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// The payload parsed but its structure is inconsistent (short
    /// body, misaligned array region, out-of-range sparse index, ...).
    Malformed(&'static str),
    /// A socket read timeout elapsed. Between frames this is retryable;
    /// mid-frame it poisons the stream.
    Timeout,
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed by peer"),
            WireError::Truncated { expected, got } => {
                write!(f, "stream truncated mid-frame ({got} of {expected} bytes)")
            }
            WireError::FrameTooLarge { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            WireError::UnknownDiscriminant { tag } => {
                write!(f, "unknown message discriminant {tag:#04x}")
            }
            WireError::UnknownBlockKind { kind } => {
                write!(f, "unknown compressed-block kind {kind:#04x}")
            }
            WireError::Malformed(what) => write!(f, "malformed frame: {what}"),
            WireError::Timeout => write!(f, "socket read timed out"),
            WireError::Io(e) => write!(f, "socket i/o error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One framed message of the process-runtime protocol.
///
/// Wire bodies are little-endian throughout. Strings are UTF-8; where a
/// string is the final field its length is implied by the frame length.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// First frame on every connection, identifying the dialer.
    /// Worker → coordinator additionally reports the port the worker
    /// listens on for peer connections. Body: `u32 worker`, `u16 port`.
    Hello {
        /// The sending worker's id.
        worker: u32,
        /// The sender's peer-listener port (0 on worker→worker links).
        port: u16,
    },
    /// Coordinator → worker: the experiment specification as the
    /// runtime's text `key=value` format. Body: the UTF-8 text.
    Spec {
        /// Specification text, one `key=value` per line.
        text: String,
    },
    /// Coordinator → worker: where each peer listens. Body:
    /// `u32 count`, then `count` × (`u32 worker`, `u16 port`).
    Peers {
        /// `(worker id, localhost port)` pairs.
        peers: Vec<(u32, u16)>,
    },
    /// A tagged parameter update. Body: `u64 iter`, `u32 w_id`,
    /// `u64 clock` (sender's Lamport stamp), `u8 block kind`, then the
    /// block in exactly [`CompressedBlock::encoded_bytes`] bytes.
    Update {
        /// The update's `(iter, w_id)` tag.
        tag: Tag,
        /// Sender's Lamport clock at send time.
        clock: u64,
        /// The (possibly compressed) parameter block.
        block: CompressedBlock,
    },
    /// Token grant(s) from a queue owner. Body: `u64 count`,
    /// `u64 clock`.
    Token {
        /// Number of tokens granted.
        count: u64,
        /// Sender's Lamport clock at grant time.
        clock: u64,
    },
    /// Control: the named worker is about to crash (fault injection).
    /// Body: `u32 worker`.
    Crash {
        /// The crashing worker.
        worker: u32,
    },
    /// Control: the named worker rejoined after a crash. Body:
    /// `u32 worker`.
    Rejoin {
        /// The rejoining worker.
        worker: u32,
    },
    /// Graceful end-of-stream: the sender finished its last iteration
    /// and will close the connection. EOF *without* a preceding
    /// `Finished` means the peer died. Body: `u32 worker`.
    Finished {
        /// The finishing worker.
        worker: u32,
    },
    /// Worker → coordinator final report. Body: `u32 worker`, `u8 ok`,
    /// `u64 update_wire_bytes`, `u32 error len` + error text,
    /// `u32 n` + `n` f32 final params, `u32 m` + `m` f32 losses, then
    /// the stamped event text (`<stamp> <event>` lines) to frame end.
    Summary {
        /// The reporting worker.
        worker: u32,
        /// Whether the worker completed all iterations.
        ok: bool,
        /// Error description when `ok` is false (empty otherwise).
        error: String,
        /// Total update-block payload bytes this worker wrote — the
        /// number that must equal the simulator's per-worker
        /// `bytes_sent`.
        update_wire_bytes: u64,
        /// Final parameter vector.
        final_params: Vec<f32>,
        /// Per-iteration training losses.
        losses: Vec<f32>,
        /// Lamport-stamped protocol events, one `<stamp> <event>` per
        /// line, mergeable into a global `ProtocolTrace`.
        events_text: String,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_SPEC: u8 = 2;
const TAG_PEERS: u8 = 3;
const TAG_UPDATE: u8 = 4;
const TAG_TOKEN: u8 = 5;
const TAG_CRASH: u8 = 6;
const TAG_REJOIN: u8 = 7;
const TAG_FINISHED: u8 = 8;
const TAG_SUMMARY: u8 = 9;

const KIND_DENSE: u8 = 0;
const KIND_SPARSE: u8 = 1;
const KIND_QUANTIZED: u8 = 2;

/// Serializes `msg` into `out` as one complete frame (length prefix
/// included), returning the update-block payload bytes the frame
/// carries (0 for every non-`Update` message). The returned count is
/// exactly [`CompressedBlock::encoded_bytes`] — the wire-accounting
/// contract the conformance tests pin.
pub fn encode_frame(msg: &Message, out: &mut Vec<u8>) -> u64 {
    out.clear();
    out.extend_from_slice(&[0; 4]); // patched with the length below
    let block_bytes = encode_payload(msg, out);
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    block_bytes
}

/// Serializes one complete [`Message::Update`] frame from borrowed
/// parts, returning the block payload bytes (see [`encode_frame`]).
/// The fan-out path: a sender encodes its block once and writes the
/// same buffer to every outgoing connection without cloning the block
/// into an owned [`Message`].
pub fn encode_update_frame(
    tag: Tag,
    clock: u64,
    block: &CompressedBlock,
    out: &mut Vec<u8>,
) -> u64 {
    out.clear();
    out.extend_from_slice(&[0; 4]); // patched with the length below
    out.push(TAG_UPDATE);
    out.extend_from_slice(&tag.iter.to_le_bytes());
    out.extend_from_slice(&(tag.w_id as u32).to_le_bytes());
    out.extend_from_slice(&clock.to_le_bytes());
    let before = out.len();
    encode_block(block, out);
    let written = (out.len() - before - 1) as u64;
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    written
}

fn encode_payload(msg: &Message, out: &mut Vec<u8>) -> u64 {
    match msg {
        Message::Hello { worker, port } => {
            out.push(TAG_HELLO);
            out.extend_from_slice(&worker.to_le_bytes());
            out.extend_from_slice(&port.to_le_bytes());
            0
        }
        Message::Spec { text } => {
            out.push(TAG_SPEC);
            out.extend_from_slice(text.as_bytes());
            0
        }
        Message::Peers { peers } => {
            out.push(TAG_PEERS);
            out.extend_from_slice(&(peers.len() as u32).to_le_bytes());
            for &(worker, port) in peers {
                out.extend_from_slice(&worker.to_le_bytes());
                out.extend_from_slice(&port.to_le_bytes());
            }
            0
        }
        Message::Update { tag, clock, block } => {
            out.push(TAG_UPDATE);
            out.extend_from_slice(&tag.iter.to_le_bytes());
            out.extend_from_slice(&(tag.w_id as u32).to_le_bytes());
            out.extend_from_slice(&clock.to_le_bytes());
            let before = out.len();
            encode_block(block, out);
            let written = (out.len() - before - 1) as u64;
            debug_assert_eq!(
                written,
                block.encoded_bytes(),
                "block serializer out of sync with encoded_bytes()"
            );
            written
        }
        Message::Token { count, clock } => {
            out.push(TAG_TOKEN);
            out.extend_from_slice(&count.to_le_bytes());
            out.extend_from_slice(&clock.to_le_bytes());
            0
        }
        Message::Crash { worker } => {
            out.push(TAG_CRASH);
            out.extend_from_slice(&worker.to_le_bytes());
            0
        }
        Message::Rejoin { worker } => {
            out.push(TAG_REJOIN);
            out.extend_from_slice(&worker.to_le_bytes());
            0
        }
        Message::Finished { worker } => {
            out.push(TAG_FINISHED);
            out.extend_from_slice(&worker.to_le_bytes());
            0
        }
        Message::Summary {
            worker,
            ok,
            error,
            update_wire_bytes,
            final_params,
            losses,
            events_text,
        } => {
            out.push(TAG_SUMMARY);
            out.extend_from_slice(&worker.to_le_bytes());
            out.push(u8::from(*ok));
            out.extend_from_slice(&update_wire_bytes.to_le_bytes());
            out.extend_from_slice(&(error.len() as u32).to_le_bytes());
            out.extend_from_slice(error.as_bytes());
            out.extend_from_slice(&(final_params.len() as u32).to_le_bytes());
            for v in final_params {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(&(losses.len() as u32).to_le_bytes());
            for v in losses {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out.extend_from_slice(events_text.as_bytes());
            0
        }
    }
}

/// Writes the block-kind byte plus the block in exactly
/// [`CompressedBlock::encoded_bytes`] payload bytes.
fn encode_block(block: &CompressedBlock, out: &mut Vec<u8>) {
    match block {
        CompressedBlock::Dense { values } => {
            out.push(KIND_DENSE);
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        CompressedBlock::Sparse {
            len,
            indices,
            values,
        } => {
            out.push(KIND_SPARSE);
            out.extend_from_slice(&len.to_le_bytes());
            for i in indices {
                out.extend_from_slice(&i.to_le_bytes());
            }
            for v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        CompressedBlock::Quantized { scale, values } => {
            out.push(KIND_QUANTIZED);
            out.extend_from_slice(&(values.len() as u32).to_le_bytes());
            out.extend_from_slice(&scale.to_le_bytes());
            for &q in values {
                out.push(q as u8);
            }
        }
    }
}

/// Frames and writes `msg` to `w` (`write_all` + flush), returning the
/// update-block payload bytes written (see [`encode_frame`]).
///
/// # Errors
///
/// [`WireError::Io`] when the underlying write or flush fails.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> Result<u64, WireError> {
    let mut buf = Vec::new();
    let block_bytes = encode_frame(msg, &mut buf);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(block_bytes)
}

/// Reads one complete frame from `r` and decodes it.
///
/// # Errors
///
/// Fails closed on every malformed input: [`WireError::Closed`] on EOF
/// at a frame boundary, [`WireError::Truncated`] on EOF mid-frame,
/// [`WireError::FrameTooLarge`] before allocating an oversized payload,
/// [`WireError::Timeout`] when the stream has a read timeout and it
/// elapses, and the decode errors documented on [`WireError`].
pub fn read_message<R: Read>(r: &mut R) -> Result<Message, WireError> {
    let mut prefix = [0u8; 4];
    read_full(r, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge { len });
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, false)?;
    decode_payload(&payload)
}

/// `read_exact` with typed boundary semantics: EOF before the first
/// byte of a frame is [`WireError::Closed`]; EOF or a read timeout
/// anywhere else is [`WireError::Truncated`] / [`WireError::Timeout`].
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], frame_start: bool) -> Result<(), WireError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return if frame_start && got == 0 {
                    Err(WireError::Closed)
                } else {
                    Err(WireError::Truncated {
                        expected: buf.len(),
                        got,
                    })
                };
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(WireError::Timeout);
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Bounds-checked little-endian reader over one frame payload.
struct Body<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Body<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() - self.pos < n {
            return Err(WireError::Malformed("body shorter than its fields"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// A `u32`-counted f32 array (count validated against the body).
    fn f32_array(&mut self) -> Result<Vec<f32>, WireError> {
        let n = self.u32()? as usize;
        let raw = self.take(
            n.checked_mul(4)
                .ok_or(WireError::Malformed("f32 array count overflows the frame"))?,
        )?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// The remaining bytes as UTF-8 text.
    fn rest_utf8(&mut self) -> Result<String, WireError> {
        let raw = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        String::from_utf8(raw.to_vec()).map_err(|_| WireError::Malformed("text is not UTF-8"))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after the body"))
        }
    }
}

/// Decodes one frame payload (discriminant byte + body).
///
/// # Errors
///
/// The decode errors documented on [`WireError`]; an empty payload is
/// [`WireError::Malformed`].
pub fn decode_payload(payload: &[u8]) -> Result<Message, WireError> {
    let Some((&tag, rest)) = payload.split_first() else {
        return Err(WireError::Malformed("empty payload"));
    };
    let mut b = Body {
        bytes: rest,
        pos: 0,
    };
    let msg = match tag {
        TAG_HELLO => Message::Hello {
            worker: b.u32()?,
            port: b.u16()?,
        },
        TAG_SPEC => Message::Spec {
            text: b.rest_utf8()?,
        },
        TAG_PEERS => {
            let n = b.u32()? as usize;
            let mut peers = Vec::new();
            for _ in 0..n {
                peers.push((b.u32()?, b.u16()?));
            }
            Message::Peers { peers }
        }
        TAG_UPDATE => {
            let iter = b.u64()?;
            let w_id = b.u32()? as usize;
            let clock = b.u64()?;
            let block = decode_block(&mut b)?;
            Message::Update {
                tag: Tag { iter, w_id },
                clock,
                block,
            }
        }
        TAG_TOKEN => Message::Token {
            count: b.u64()?,
            clock: b.u64()?,
        },
        TAG_CRASH => Message::Crash { worker: b.u32()? },
        TAG_REJOIN => Message::Rejoin { worker: b.u32()? },
        TAG_FINISHED => Message::Finished { worker: b.u32()? },
        TAG_SUMMARY => Message::Summary {
            worker: b.u32()?,
            ok: b.u8()? != 0,
            update_wire_bytes: b.u64()?,
            error: {
                let n = b.u32()? as usize;
                String::from_utf8(b.take(n)?.to_vec())
                    .map_err(|_| WireError::Malformed("text is not UTF-8"))?
            },
            final_params: b.f32_array()?,
            losses: b.f32_array()?,
            events_text: b.rest_utf8()?,
        },
        other => return Err(WireError::UnknownDiscriminant { tag: other }),
    };
    b.finish()?;
    Ok(msg)
}

/// Decodes a block (kind byte + [`CompressedBlock::encoded_bytes`]
/// payload bytes) from the remainder of an update body.
fn decode_block(b: &mut Body<'_>) -> Result<CompressedBlock, WireError> {
    let kind = b.u8()?;
    match kind {
        KIND_DENSE => {
            // Dense blocks are raw f32s to frame end; the length word
            // the simulator charges for is the frame's own prefix.
            if !b.remaining().is_multiple_of(4) {
                return Err(WireError::Malformed("dense block not f32-aligned"));
            }
            let n = b.remaining() / 4;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(b.f32()?);
            }
            Ok(CompressedBlock::Dense { values })
        }
        KIND_SPARSE => {
            let len = b.u32()?;
            if !b.remaining().is_multiple_of(8) {
                return Err(WireError::Malformed("sparse block pairs misaligned"));
            }
            let k = b.remaining() / 8;
            let mut indices = Vec::with_capacity(k);
            for _ in 0..k {
                let i = b.u32()?;
                if i >= len {
                    return Err(WireError::Malformed("sparse index out of range"));
                }
                indices.push(i);
            }
            let mut values = Vec::with_capacity(k);
            for _ in 0..k {
                values.push(b.f32()?);
            }
            Ok(CompressedBlock::Sparse {
                len,
                indices,
                values,
            })
        }
        KIND_QUANTIZED => {
            let len = b.u32()? as usize;
            let scale = b.f32()?;
            if b.remaining() != len {
                return Err(WireError::Malformed("quantized length word disagrees"));
            }
            let values = b.take(len)?.iter().map(|&x| x as i8).collect();
            Ok(CompressedBlock::Quantized { scale, values })
        }
        other => Err(WireError::UnknownBlockKind { kind: other }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) -> Message {
        let mut frame = Vec::new();
        encode_frame(&msg, &mut frame);
        let decoded = read_message(&mut frame.as_slice()).expect("roundtrip");
        assert_eq!(decoded, msg);
        decoded
    }

    #[test]
    fn every_variant_roundtrips() {
        roundtrip(Message::Hello {
            worker: 3,
            port: 45123,
        });
        roundtrip(Message::Spec {
            text: "n=4\nmode=standard\n".into(),
        });
        roundtrip(Message::Peers {
            peers: vec![(0, 5000), (2, 5002)],
        });
        roundtrip(Message::Token { count: 2, clock: 9 });
        roundtrip(Message::Crash { worker: 1 });
        roundtrip(Message::Rejoin { worker: 1 });
        roundtrip(Message::Finished { worker: 7 });
        roundtrip(Message::Summary {
            worker: 2,
            ok: false,
            error: "worker 2 stalled".into(),
            update_wire_bytes: 12345,
            final_params: vec![1.5, -2.25],
            losses: vec![0.7, 0.6, 0.55],
            events_text: "4 advance w=2 iter=0\n9 send from=2 to=0 iter=0\n".into(),
        });
    }

    #[test]
    fn all_block_kinds_roundtrip_at_their_encoded_size() {
        let blocks = [
            CompressedBlock::Dense {
                values: vec![1.0, -2.5, 0.0, f32::MIN_POSITIVE],
            },
            CompressedBlock::Sparse {
                len: 10,
                indices: vec![1, 4, 9],
                values: vec![0.5, -0.25, 8.0],
            },
            CompressedBlock::Quantized {
                scale: 0.01,
                values: vec![-127, 0, 3, 127],
            },
        ];
        for block in blocks {
            let msg = Message::Update {
                tag: Tag { iter: 6, w_id: 1 },
                clock: 42,
                block: block.clone(),
            };
            let mut frame = Vec::new();
            let counted = encode_frame(&msg, &mut frame);
            // The wire-accounting contract: the serializer spends
            // exactly encoded_bytes() on the block. Frame layout is
            // 4 (prefix) + 1 (discriminant) + 20 (tag+clock) + 1
            // (kind) + block payload.
            assert_eq!(counted, block.encoded_bytes());
            assert_eq!(frame.len() as u64, 4 + 1 + 20 + 1 + block.encoded_bytes());
            assert_eq!(roundtrip(msg), roundtrip_frame(&frame));
        }
    }

    fn roundtrip_frame(frame: &[u8]) -> Message {
        read_message(&mut &frame[..]).expect("frame decodes")
    }

    #[test]
    fn empty_stream_is_closed_and_partial_prefix_is_truncated() {
        assert!(matches!(read_message(&mut &[][..]), Err(WireError::Closed)));
        assert!(matches!(
            read_message(&mut &[7u8, 0][..]),
            Err(WireError::Truncated {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn eof_mid_payload_is_truncated_not_a_hang() {
        // A frame claiming 10 payload bytes, killed after 3.
        let mut bytes = 10u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[TAG_SPEC, b'a', b'b']);
        assert!(matches!(
            read_message(&mut bytes.as_slice()),
            Err(WireError::Truncated {
                expected: 10,
                got: 3
            })
        ));
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation() {
        let bytes = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(matches!(
            read_message(&mut &bytes[..]),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn unknown_discriminant_and_block_kind_are_typed_errors() {
        let mut frame = Vec::new();
        encode_frame(&Message::Token { count: 1, clock: 0 }, &mut frame);
        frame[4] = 0xEE; // clobber the discriminant
        assert!(matches!(
            read_message(&mut frame.as_slice()),
            Err(WireError::UnknownDiscriminant { tag: 0xEE })
        ));

        let msg = Message::Update {
            tag: Tag { iter: 0, w_id: 0 },
            clock: 0,
            block: CompressedBlock::Dense { values: vec![1.0] },
        };
        let mut frame = Vec::new();
        encode_frame(&msg, &mut frame);
        frame[4 + 1 + 20] = 0x7F; // clobber the block kind
        assert!(matches!(
            read_message(&mut frame.as_slice()),
            Err(WireError::UnknownBlockKind { kind: 0x7F })
        ));
    }

    #[test]
    fn corrupt_bodies_are_malformed_not_panics() {
        // Sparse pair region misaligned: 4-byte len word + 5 stray bytes.
        let mut payload = vec![TAG_UPDATE];
        payload.extend_from_slice(&[0; 20]); // tag + clock
        payload.push(KIND_SPARSE);
        payload.extend_from_slice(&3u32.to_le_bytes());
        payload.extend_from_slice(&[1, 2, 3, 4, 5]);
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed(_))
        ));

        // Sparse index >= decoded length.
        let block = CompressedBlock::Sparse {
            len: 2,
            indices: vec![5],
            values: vec![1.0],
        };
        let msg = Message::Update {
            tag: Tag { iter: 0, w_id: 0 },
            clock: 0,
            block,
        };
        let mut frame = Vec::new();
        encode_frame(&msg, &mut frame);
        assert!(matches!(
            read_message(&mut frame.as_slice()),
            Err(WireError::Malformed("sparse index out of range"))
        ));

        // Quantized length word disagreeing with the frame remainder.
        let mut payload = vec![TAG_UPDATE];
        payload.extend_from_slice(&[0; 20]);
        payload.push(KIND_QUANTIZED);
        payload.extend_from_slice(&9u32.to_le_bytes()); // claims 9 entries
        payload.extend_from_slice(&0.5f32.to_le_bytes());
        payload.extend_from_slice(&[1, 2, 3]); // only 3 present
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed("quantized length word disagrees"))
        ));

        // Dense region not f32-aligned.
        let mut payload = vec![TAG_UPDATE];
        payload.extend_from_slice(&[0; 20]);
        payload.push(KIND_DENSE);
        payload.extend_from_slice(&[1, 2, 3]);
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed("dense block not f32-aligned"))
        ));

        // Empty payload and a body shorter than its fixed fields.
        assert!(matches!(
            decode_payload(&[]),
            Err(WireError::Malformed("empty payload"))
        ));
        assert!(matches!(
            decode_payload(&[TAG_HELLO, 1, 2]),
            Err(WireError::Malformed(_))
        ));

        // Trailing garbage after a fixed-size body.
        let mut frame = Vec::new();
        encode_frame(&Message::Finished { worker: 1 }, &mut frame);
        let mut payload = frame[4..].to_vec();
        payload.push(0xAB);
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed("trailing bytes after the body"))
        ));
    }

    #[test]
    fn summary_array_count_cannot_balloon_allocation() {
        // A summary whose f32 count claims ~1 billion entries must fail
        // on the body bound, not allocate.
        let mut payload = vec![TAG_SUMMARY];
        payload.extend_from_slice(&0u32.to_le_bytes()); // worker
        payload.push(1); // ok
        payload.extend_from_slice(&0u64.to_le_bytes()); // wire bytes
        payload.extend_from_slice(&0u32.to_le_bytes()); // error len
        payload.extend_from_slice(&u32::MAX.to_le_bytes()); // params count
        assert!(matches!(
            decode_payload(&payload),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn borrowed_update_frame_matches_the_owned_encoding() {
        let tag = Tag { iter: 3, w_id: 2 };
        let block = CompressedBlock::Sparse {
            len: 6,
            indices: vec![0, 5],
            values: vec![1.0, -4.0],
        };
        let mut borrowed = Vec::new();
        let counted = encode_update_frame(tag, 77, &block, &mut borrowed);
        assert_eq!(counted, block.encoded_bytes());
        let mut owned = Vec::new();
        encode_frame(
            &Message::Update {
                tag,
                clock: 77,
                block,
            },
            &mut owned,
        );
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn write_message_reports_update_block_bytes() {
        let mut sink = Vec::new();
        let n = write_message(
            &mut sink,
            &Message::Update {
                tag: Tag { iter: 1, w_id: 0 },
                clock: 3,
                block: CompressedBlock::Dense {
                    values: vec![0.0; 8],
                },
            },
        )
        .unwrap();
        assert_eq!(n, 32);
        let n = write_message(&mut sink, &Message::Token { count: 1, clock: 4 }).unwrap();
        assert_eq!(n, 0);
        // Both frames decode back-to-back from the same stream.
        let mut stream = sink.as_slice();
        assert!(matches!(
            read_message(&mut stream).unwrap(),
            Message::Update { .. }
        ));
        assert!(matches!(
            read_message(&mut stream).unwrap(),
            Message::Token { count: 1, clock: 4 }
        ));
        assert!(matches!(read_message(&mut stream), Err(WireError::Closed)));
    }
}
