//! Models and optimizer for the Hop reproduction.
//!
//! The paper evaluates two tasks: a CNN (VGG11 on CIFAR-10) and an SVM
//! with log loss (webspam). This crate implements laptop-scale versions of
//! both, plus an MLP used in tests, all operating on a *flat* `f32`
//! parameter vector — the representation exchanged between workers by the
//! decentralized protocols:
//!
//! * [`svm::Svm`] — linear model with log loss (as §7.2 specifies) or
//!   hinge loss, supporting sparse features.
//! * [`mlp::Mlp`] — fully connected ReLU network with softmax
//!   cross-entropy.
//! * [`cnn::TinyCnn`] — conv3×3 → ReLU → 2×2 avg-pool → FC softmax; the
//!   "CNN" workload.
//! * [`optimizer::Sgd`] — SGD with momentum and weight decay (momentum
//!   0.9, as the paper's hyperparameter setup).
//! * [`optimizer::QgmState`] — Quasi-Global Momentum (Lin et al.): a
//!   momentum buffer tracking the locally-estimated global parameter
//!   difference, applied around each gossip Reduce.
//!
//! All gradients are verified against finite differences in the test
//! suites.
//!
//! # Examples
//!
//! ```
//! use hop_data::{BatchSampler, Dataset};
//! use hop_data::webspam::SyntheticWebspam;
//! use hop_model::{Model, svm::Svm, optimizer::Sgd};
//! use hop_util::Xoshiro256;
//!
//! let data = SyntheticWebspam::generate(512, 0);
//! let model = Svm::log_loss(data.feature_dim());
//! let mut rng = Xoshiro256::seed_from_u64(1);
//! let mut params = model.init_params(&mut rng);
//! let mut grad = vec![0.0; params.len()];
//! let mut opt = Sgd::new(0.5, 0.9, 1e-7, params.len());
//! let mut sampler = BatchSampler::new(data.len(), 32, 2);
//!
//! let batch = sampler.next_batch(&data);
//! let first = model.loss_grad(&params, &batch, &mut grad);
//! for _ in 0..50 {
//!     let b = sampler.next_batch(&data);
//!     model.loss_grad(&params, &b, &mut grad);
//!     opt.step(&mut params, &grad);
//! }
//! let last = model.loss(&params, &sampler.next_batch(&data));
//! assert!(last < first);
//! ```

pub mod cnn;
pub mod loss;
pub mod mlp;
pub mod model;
pub mod optimizer;
pub mod svm;

pub use model::{GradScratch, Model};
pub use optimizer::{QgmState, Sgd};
