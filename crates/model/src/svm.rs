//! Linear SVM with log loss (the paper's webspam workload).
//!
//! §7.2: "We use log loss for SVM instead of hinge loss", learning rate 10
//! and weight decay 1e-7. Labels are stored as `{0, 1}` in the dataset and
//! mapped to `{-1, +1}` here. The parameter vector is `[weights..., bias]`.

use crate::loss::{hinge_loss, log_loss, sigmoid};
use crate::model::{GradScratch, Model};
use hop_data::{Batch, Features};
use hop_util::Xoshiro256;

/// Loss flavor for [`Svm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvmLoss {
    /// Logistic loss, as the paper uses.
    Log,
    /// Classic hinge loss (for ablations).
    Hinge,
}

/// A binary linear classifier over dense or sparse features.
///
/// # Examples
///
/// ```
/// use hop_model::{svm::Svm, Model};
/// use hop_data::Features;
///
/// let svm = Svm::log_loss(4);
/// // weights favor feature 0 for class 1; bias 0.
/// let params = vec![1.0, 0.0, 0.0, 0.0, 0.0];
/// assert_eq!(svm.predict(&params, &Features::Dense(vec![2.0, 0.0, 0.0, 0.0])), 1);
/// assert_eq!(svm.predict(&params, &Features::Dense(vec![-2.0, 0.0, 0.0, 0.0])), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Svm {
    dim: usize,
    loss: SvmLoss,
}

impl Svm {
    /// Creates an SVM with log loss over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn log_loss(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self {
            dim,
            loss: SvmLoss::Log,
        }
    }

    /// Creates an SVM with hinge loss over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn hinge(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        Self {
            dim,
            loss: SvmLoss::Hinge,
        }
    }

    /// Feature dimension (excluding the bias slot).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The configured loss flavor.
    pub fn loss_kind(&self) -> SvmLoss {
        self.loss
    }

    fn margin(&self, params: &[f32], features: &Features) -> f32 {
        features.dot(&params[..self.dim]) + params[self.dim]
    }

    /// Probability of class 1 under the logistic model.
    pub fn probability(&self, params: &[f32], features: &Features) -> f32 {
        sigmoid(self.margin(params, features))
    }
}

impl Model for Svm {
    fn param_len(&self) -> usize {
        self.dim + 1
    }

    fn init_params(&self, _rng: &mut Xoshiro256) -> Vec<f32> {
        // Linear models conventionally start at zero.
        vec![0.0; self.dim + 1]
    }

    // The linear model needs no per-example intermediates; the scratch is
    // accepted (and ignored) so every model shares one hot-path entry.
    fn loss_grad_with(
        &self,
        params: &[f32],
        batch: &Batch<'_>,
        grad: &mut [f32],
        _scratch: &mut GradScratch,
    ) -> f32 {
        assert_eq!(params.len(), self.param_len(), "params length mismatch");
        assert_eq!(grad.len(), self.param_len(), "grad length mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let mut total = 0.0;
        for ex in &batch.examples {
            let y = if ex.label == 1 { 1.0 } else { -1.0 };
            let margin = self.margin(params, &ex.features);
            let (l, dmargin) = match self.loss {
                SvmLoss::Log => log_loss(margin, y),
                SvmLoss::Hinge => hinge_loss(margin, y),
            };
            total += l;
            ex.features.axpy_into(dmargin, &mut grad[..self.dim]);
            grad[self.dim] += dmargin;
        }
        let inv = 1.0 / batch.len() as f32;
        for g in grad.iter_mut() {
            *g *= inv;
        }
        total * inv
    }

    fn predict(&self, params: &[f32], features: &Features) -> u32 {
        u32::from(self.margin(params, features) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use crate::optimizer::Sgd;
    use hop_data::webspam::SyntheticWebspam;
    use hop_data::{BatchSampler, Dataset, Example, InMemoryDataset};

    fn toy() -> InMemoryDataset {
        InMemoryDataset::new(
            vec![
                Example {
                    features: Features::Dense(vec![1.0, 0.5]),
                    label: 1,
                },
                Example {
                    features: Features::Dense(vec![-1.0, -0.5]),
                    label: 0,
                },
                Example {
                    features: Features::Sparse(vec![(0, 2.0)]),
                    label: 1,
                },
            ],
            2,
            2,
        )
    }

    #[test]
    fn zero_params_give_ln2_loss() {
        let d = toy();
        let svm = Svm::log_loss(2);
        let batch = d.batch(&[0, 1, 2]);
        let loss = svm.loss(&[0.0, 0.0, 0.0], &batch);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference_log() {
        let d = toy();
        let svm = Svm::log_loss(2);
        let batch = d.batch(&[0, 1, 2]);
        let err = finite_difference_check(&svm, &[0.2, -0.4, 0.1], &batch, &[0, 1, 2], 1e-3);
        assert!(err < 5e-3, "relative error {err}");
    }

    #[test]
    fn gradient_matches_finite_difference_hinge() {
        let d = toy();
        let svm = Svm::hinge(2);
        let batch = d.batch(&[0, 1, 2]);
        // Probe away from the hinge kink.
        let err = finite_difference_check(&svm, &[0.05, -0.03, 0.02], &batch, &[0, 1, 2], 1e-4);
        assert!(err < 5e-2, "relative error {err}");
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let data = SyntheticWebspam::generate(2048, 3);
        let svm = Svm::log_loss(data.feature_dim());
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut params = svm.init_params(&mut rng);
        let mut grad = vec![0.0; params.len()];
        let mut opt = Sgd::new(0.5, 0.9, 1e-7, params.len());
        let mut sampler = BatchSampler::new(data.len(), 64, 1);
        for _ in 0..300 {
            let b = sampler.next_batch(&data);
            svm.loss_grad(&params, &b, &mut grad);
            opt.step(&mut params, &grad);
        }
        let eval: Vec<usize> = (0..512).collect();
        let batch = data.batch(&eval);
        let acc = svm.accuracy(&params, &batch);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(svm.loss(&params, &batch) < 0.45);
    }

    #[test]
    fn probability_is_calibrated_direction() {
        let svm = Svm::log_loss(1);
        let p_hi = svm.probability(&[2.0, 0.0], &Features::Dense(vec![3.0]));
        let p_lo = svm.probability(&[2.0, 0.0], &Features::Dense(vec![-3.0]));
        assert!(p_hi > 0.9 && p_lo < 0.1);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn rejects_empty_batch() {
        let svm = Svm::log_loss(2);
        let batch = Batch { examples: vec![] };
        let mut g = vec![0.0; 3];
        svm.loss_grad(&[0.0, 0.0, 0.0], &batch, &mut g);
    }
}
