//! Multi-layer perceptron with ReLU activations and softmax cross-entropy.
//!
//! Used as a middle-weight workload in tests and examples; the parameter
//! layout per layer is row-major `W (d_out x d_in)` followed by `b (d_out)`.

use crate::loss::softmax_cross_entropy;
use crate::model::{resize_buf, GradScratch, Model};
use hop_data::{Batch, Features};
use hop_tensor::ops;
use hop_util::Xoshiro256;

/// A fully connected ReLU network.
///
/// # Examples
///
/// ```
/// use hop_model::{mlp::Mlp, Model};
/// let mlp = Mlp::new(&[4, 8, 3]);
/// assert_eq!(mlp.param_len(), 4 * 8 + 8 + 8 * 3 + 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mlp {
    sizes: Vec<usize>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes (`[input, ..., classes]`).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 sizes are given or any size is 0.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output layers");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        Self {
            sizes: sizes.to_vec(),
        }
    }

    /// Layer sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    fn n_layers(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Offset of layer `l`'s weight block in the flat parameter vector.
    fn weight_offset(&self, layer: usize) -> usize {
        let mut off = 0;
        for l in 0..layer {
            off += self.sizes[l] * self.sizes[l + 1] + self.sizes[l + 1];
        }
        off
    }

    /// Forward pass for one dense example into caller-provided buffers:
    /// `acts[l]` receives layer `l`'s activation (`acts[0]` is the input)
    /// and `pre[l]` layer `l`'s pre-activation.
    fn forward_into(
        &self,
        params: &[f32],
        input: &[f32],
        acts: &mut [Vec<f32>],
        pre: &mut [Vec<f32>],
    ) {
        resize_buf(&mut acts[0], input.len());
        acts[0].copy_from_slice(input);
        for l in 0..self.n_layers() {
            let (d_in, d_out) = (self.sizes[l], self.sizes[l + 1]);
            let off = self.weight_offset(l);
            let w = &params[off..off + d_in * d_out];
            let b = &params[off + d_in * d_out..off + d_in * d_out + d_out];
            resize_buf(&mut pre[l], d_out);
            ops::gemv(w, d_out, d_in, &acts[l], &mut pre[l]);
            ops::axpy(1.0, b, &mut pre[l]);
            resize_buf(&mut acts[l + 1], d_out);
            acts[l + 1].copy_from_slice(&pre[l]);
            if l + 1 < self.n_layers() {
                ops::relu(&mut acts[l + 1]);
            }
        }
    }

    /// Splits a scratch into the per-layer activation and pre-activation
    /// buffers used by [`Self::forward_into`].
    fn scratch_stages<'s>(
        &self,
        scratch: &'s mut GradScratch,
    ) -> (&'s mut [Vec<f32>], &'s mut [Vec<f32>]) {
        let n_layers = self.n_layers();
        scratch.ensure_stages(2 * n_layers + 1);
        let (acts, rest) = scratch.stages.split_at_mut(n_layers + 1);
        (acts, &mut rest[..n_layers])
    }

    fn logits(&self, params: &[f32], features: &Features) -> Vec<f32> {
        let input = features.as_dense().expect("MLP requires dense features");
        let mut scratch = GradScratch::new();
        let (acts, pre) = self.scratch_stages(&mut scratch);
        self.forward_into(params, input, acts, pre);
        acts[self.n_layers()].clone()
    }
}

impl Model for Mlp {
    fn param_len(&self) -> usize {
        self.weight_offset(self.n_layers())
    }

    fn init_params(&self, rng: &mut Xoshiro256) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_len()];
        for l in 0..self.n_layers() {
            let (d_in, d_out) = (self.sizes[l], self.sizes[l + 1]);
            let off = self.weight_offset(l);
            // He initialization for ReLU layers.
            let std = (2.0 / d_in as f64).sqrt();
            for w in params[off..off + d_in * d_out].iter_mut() {
                *w = rng.normal_with(0.0, std) as f32;
            }
            // Biases stay zero.
        }
        params
    }

    fn loss_grad_with(
        &self,
        params: &[f32],
        batch: &Batch<'_>,
        grad: &mut [f32],
        scratch: &mut GradScratch,
    ) -> f32 {
        assert_eq!(params.len(), self.param_len(), "params length mismatch");
        assert_eq!(grad.len(), self.param_len(), "grad length mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let mut total = 0.0f32;
        let n_layers = self.n_layers();
        let max_width = *self.sizes.iter().max().expect("at least two layers");
        scratch.ensure_stages(2 * n_layers + 1);
        let GradScratch { stages, a, b, .. } = scratch;
        let (acts, pre) = stages.split_at_mut(n_layers + 1);
        let (dz_buf, da_buf) = (a, b);
        resize_buf(dz_buf, max_width);
        resize_buf(da_buf, max_width);
        for ex in &batch.examples {
            let input = ex.features.as_dense().expect("MLP requires dense features");
            self.forward_into(params, input, acts, pre);
            let logits = &acts[n_layers];
            total += softmax_cross_entropy(logits, ex.label as usize, &mut dz_buf[..logits.len()]);
            // Backpropagate.
            for l in (0..n_layers).rev() {
                let (d_in, d_out) = (self.sizes[l], self.sizes[l + 1]);
                let off = self.weight_offset(l);
                let dz = &dz_buf[..d_out];
                {
                    // dW += dz ⊗ a_{l-1}; db += dz.
                    let (gw, gb) = grad[off..off + d_in * d_out + d_out].split_at_mut(d_in * d_out);
                    for o in 0..d_out {
                        ops::axpy(dz[o], &acts[l], &mut gw[o * d_in..(o + 1) * d_in]);
                        gb[o] += dz[o];
                    }
                }
                if l > 0 {
                    // da_{l-1} = W^T dz, then mask by ReLU'.
                    let w = &params[off..off + d_in * d_out];
                    let da = &mut da_buf[..d_in];
                    ops::gemv_t(w, d_out, d_in, dz, da);
                    ops::relu_backward(&pre[l - 1], da);
                    std::mem::swap(dz_buf, da_buf);
                }
            }
        }
        let inv = 1.0 / batch.len() as f32;
        ops::scale(inv, grad);
        total * inv
    }

    fn predict(&self, params: &[f32], features: &Features) -> u32 {
        ops::argmax(&self.logits(params, features)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use crate::optimizer::Sgd;
    use hop_data::images::SyntheticImages;
    use hop_data::{BatchSampler, Dataset, Example, InMemoryDataset};

    fn toy() -> InMemoryDataset {
        InMemoryDataset::new(
            vec![
                Example {
                    features: Features::Dense(vec![1.0, 0.0, -0.5]),
                    label: 0,
                },
                Example {
                    features: Features::Dense(vec![-1.0, 0.5, 0.2]),
                    label: 1,
                },
            ],
            3,
            2,
        )
    }

    #[test]
    fn param_len_layout() {
        let m = Mlp::new(&[3, 5, 2]);
        assert_eq!(m.param_len(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(m.weight_offset(1), 3 * 5 + 5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = toy();
        let m = Mlp::new(&[3, 4, 2]);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let params = m.init_params(&mut rng);
        let batch = d.batch(&[0, 1]);
        // Probe a spread of coordinates across both layers.
        let probe: Vec<usize> = (0..m.param_len()).step_by(3).collect();
        let err = finite_difference_check(&m, &params, &batch, &probe, 1e-2);
        assert!(err < 2e-2, "relative error {err}");
    }

    #[test]
    fn training_learns_synthetic_images() {
        let data = SyntheticImages::generate(1024, 2);
        let m = Mlp::new(&[data.feature_dim(), 32, data.n_classes()]);
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut params = m.init_params(&mut rng);
        let mut grad = vec![0.0; params.len()];
        let mut opt = Sgd::new(0.05, 0.9, 1e-4, params.len());
        let mut sampler = BatchSampler::new(data.len(), 64, 1);
        let eval: Vec<usize> = (0..256).collect();
        let initial = m.loss(&params, &data.batch(&eval));
        for _ in 0..200 {
            let b = sampler.next_batch(&data);
            m.loss_grad(&params, &b, &mut grad);
            opt.step(&mut params, &grad);
        }
        let batch = data.batch(&eval);
        let final_loss = m.loss(&params, &batch);
        assert!(
            final_loss < initial * 0.6,
            "loss {initial} -> {final_loss} did not drop"
        );
        assert!(m.accuracy(&params, &batch) > 0.5);
    }

    #[test]
    fn deterministic_init() {
        let m = Mlp::new(&[4, 4, 2]);
        let a = m.init_params(&mut Xoshiro256::seed_from_u64(1));
        let b = m.init_params(&mut Xoshiro256::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn predict_returns_valid_class() {
        let m = Mlp::new(&[3, 4, 2]);
        let params = m.init_params(&mut Xoshiro256::seed_from_u64(3));
        let c = m.predict(&params, &Features::Dense(vec![0.1, 0.2, 0.3]));
        assert!(c < 2);
    }

    #[test]
    #[should_panic(expected = "dense features")]
    fn rejects_sparse_features() {
        let m = Mlp::new(&[3, 2]);
        let params = vec![0.0; m.param_len()];
        m.predict(&params, &Features::Sparse(vec![(0, 1.0)]));
    }
}
