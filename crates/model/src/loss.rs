//! Loss functions and their derivatives.

/// Numerically stable `ln(1 + exp(x))`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        0.0
    } else {
        (1.0 + x.exp()).ln()
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary log loss for a ±1 label: `ln(1 + exp(-y * margin))`, and its
/// derivative w.r.t. the margin.
///
/// The paper's SVM uses log loss instead of hinge loss (§7.2).
#[inline]
pub fn log_loss(margin: f32, y: f32) -> (f32, f32) {
    let z = y * margin;
    (softplus(-z), -y * sigmoid(-z))
}

/// Hinge loss `max(0, 1 - y * margin)` and its (sub)derivative w.r.t. the
/// margin. Provided for completeness/ablations.
#[inline]
pub fn hinge_loss(margin: f32, y: f32) -> (f32, f32) {
    let z = y * margin;
    if z >= 1.0 {
        (0.0, 0.0)
    } else {
        (1.0 - z, -y)
    }
}

/// Softmax cross-entropy over one logit row.
///
/// Returns the loss and writes `softmax(logits) - one_hot(label)` (the
/// gradient w.r.t. the logits) into `dlogits`.
///
/// # Panics
///
/// Panics if shapes mismatch or `label` is out of range.
pub fn softmax_cross_entropy(logits: &[f32], label: usize, dlogits: &mut [f32]) -> f32 {
    assert_eq!(logits.len(), dlogits.len(), "logits/dlogits mismatch");
    assert!(label < logits.len(), "label out of range");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (d, &l) in dlogits.iter_mut().zip(logits) {
        *d = (l - max).exp();
        sum += *d;
    }
    let log_sum = sum.ln() + max;
    let loss = log_sum - logits[label];
    for d in dlogits.iter_mut() {
        *d /= sum;
    }
    dlogits[label] -= 1.0;
    loss
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_limits() {
        assert_eq!(softplus(50.0), 50.0);
        assert_eq!(softplus(-50.0), 0.0);
        assert!((softplus(0.0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
    }

    #[test]
    fn log_loss_gradient_matches_finite_difference() {
        for &(m, y) in &[(0.3f32, 1.0f32), (-1.2, -1.0), (2.0, -1.0), (0.0, 1.0)] {
            let (_, g) = log_loss(m, y);
            let eps = 1e-3;
            let (up, _) = log_loss(m + eps, y);
            let (down, _) = log_loss(m - eps, y);
            let numeric = (up - down) / (2.0 * eps);
            assert!((numeric - g).abs() < 1e-3, "m={m} y={y}: {numeric} vs {g}");
        }
    }

    #[test]
    fn hinge_loss_regions() {
        assert_eq!(hinge_loss(2.0, 1.0), (0.0, 0.0));
        let (l, g) = hinge_loss(0.0, 1.0);
        assert_eq!(l, 1.0);
        assert_eq!(g, -1.0);
        let (l, g) = hinge_loss(0.5, -1.0);
        assert_eq!(l, 1.5);
        assert_eq!(g, 1.0);
    }

    #[test]
    fn softmax_ce_gradient_sums_to_zero() {
        let logits = [1.0, 2.0, 0.5];
        let mut d = [0.0; 3];
        let loss = softmax_cross_entropy(&logits, 1, &mut d);
        assert!(loss > 0.0);
        let sum: f32 = d.iter().sum();
        assert!(sum.abs() < 1e-6);
        // True-class gradient is negative, others positive.
        assert!(d[1] < 0.0 && d[0] > 0.0 && d[2] > 0.0);
    }

    #[test]
    fn softmax_ce_perfect_prediction_low_loss() {
        let logits = [10.0, -10.0];
        let mut d = [0.0; 2];
        let loss = softmax_cross_entropy(&logits, 0, &mut d);
        assert!(loss < 1e-6);
    }

    #[test]
    fn softmax_ce_is_stable_for_huge_logits() {
        let logits = [1e4, 1e4 + 1.0];
        let mut d = [0.0; 2];
        let loss = softmax_cross_entropy(&logits, 1, &mut d);
        assert!(loss.is_finite());
    }
}
