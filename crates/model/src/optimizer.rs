//! SGD with momentum and weight decay.
//!
//! §7.2's hyperparameters: momentum 0.9, weight decay 1e-4 (CNN) or 1e-7
//! (SVM), no learning-rate decay. Each decentralized worker owns one
//! optimizer instance (momentum state is local and is *not* exchanged
//! between workers, matching the paper's prototype).

use hop_tensor::ParamBlock;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// Update rule per step:
/// `v = momentum * v + grad + weight_decay * params`;
/// `params -= lr * v`.
///
/// # Examples
///
/// ```
/// use hop_model::Sgd;
/// let mut opt = Sgd::new(0.1, 0.0, 0.0, 2);
/// let mut params = vec![1.0f32, -1.0];
/// opt.step(&mut params, &[1.0, -1.0]);
/// assert_eq!(params, vec![0.9, -0.9]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer for a parameter vector of length `param_len`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, `momentum` is outside `[0, 1)`, or
    /// `weight_decay < 0`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32, param_len: usize) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: vec![0.0; param_len],
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for manual schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one update in place.
    ///
    /// # Panics
    ///
    /// Panics if `params` or `grad` length differs from the optimizer's.
    pub fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "grad length mismatch");
        for ((v, p), g) in self.velocity.iter_mut().zip(params.iter_mut()).zip(grad) {
            *v = self.momentum * *v + g + self.weight_decay * *p;
            *p -= self.lr * *v;
        }
    }

    /// Computes the raw update `delta = -lr * v_next` *without* mutating
    /// `params`, writing it into `delta`. Used by protocols that apply
    /// gradients to a *different* parameter vector than the one they were
    /// computed on (the parallel computation graph of Fig. 2b).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn delta(&mut self, params: &[f32], grad: &[f32], delta: &mut [f32]) {
        assert_eq!(params.len(), self.velocity.len(), "params length mismatch");
        assert_eq!(grad.len(), self.velocity.len(), "grad length mismatch");
        assert_eq!(delta.len(), self.velocity.len(), "delta length mismatch");
        for (((v, &p), &g), d) in self
            .velocity
            .iter_mut()
            .zip(params.iter())
            .zip(grad)
            .zip(delta.iter_mut())
        {
            *v = self.momentum * *v + g + self.weight_decay * p;
            *d = -self.lr * *v;
        }
    }

    /// [`Self::step`] on a shared [`ParamBlock`]: copy-on-write, so
    /// snapshots published to other workers before the step keep their
    /// values, while an unshared block is updated in place with no
    /// allocation.
    pub fn step_block(&mut self, params: &mut ParamBlock, grad: &[f32]) {
        self.step(params.make_mut(), grad);
    }

    /// Resets momentum state (used after a worker skips iterations and
    /// re-syncs its parameters, §5).
    pub fn reset_velocity(&mut self) {
        self.velocity.fill(0.0);
    }
}

/// Quasi-Global Momentum state (Lin et al., *Quasi-Global Momentum:
/// Accelerating Decentralized Deep Learning on Heterogeneous Data*).
///
/// Local momentum diverges across decentralized workers when their data
/// (or pace) is heterogeneous. QGM replaces it with a momentum buffer that
/// tracks the *locally estimated global parameter difference*: after each
/// gossip Reduce the worker measures how far the consensus actually moved
/// its parameters over the iteration and folds that displacement — not
/// its private gradient — into the buffer:
///
/// * local half-step: `x_{t+1/2} = x_t - lr * (g + mu * m_t + wd * x_t)`
/// * gossip Reduce:   `x_{t+1}   = mean of neighbor half-steps`
/// * momentum update: `m_{t+1}   = mu * m_t + beta * (x_t - x_{t+1}) / lr`
///
/// `mu` is the momentum factor (the paper reuses SGD's 0.9) and `beta`
/// the mixing weight of the fresh displacement (the paper's `1 - mu`).
///
/// # Examples
///
/// ```
/// use hop_model::QgmState;
/// let mut qgm = QgmState::new(0.9, 0.1, 2);
/// let mut x = vec![1.0f32, -1.0];
/// qgm.local_step(&mut x, &[0.5, -0.5], 0.1, 0.0);
/// assert!(x[0] < 1.0 && x[1] > -1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QgmState {
    mu: f32,
    beta: f32,
    momentum: Vec<f32>,
}

impl QgmState {
    /// Creates QGM state for a parameter vector of length `param_len`.
    ///
    /// # Panics
    ///
    /// Panics if `mu` is outside `[0, 1)` or `beta < 0`.
    pub fn new(mu: f32, beta: f32, param_len: usize) -> Self {
        assert!((0.0..1.0).contains(&mu), "mu must be in [0,1)");
        assert!(beta >= 0.0, "beta must be non-negative");
        Self {
            mu,
            beta,
            momentum: vec![0.0; param_len],
        }
    }

    /// Momentum factor `mu`.
    pub fn mu(&self) -> f32 {
        self.mu
    }

    /// Displacement mixing weight `beta`.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// The current momentum buffer (the running estimate of the global
    /// parameter difference per unit learning rate).
    pub fn momentum(&self) -> &[f32] {
        &self.momentum
    }

    /// The local half-step before the gossip Reduce:
    /// `params -= lr * (grad + mu * m + weight_decay * params)`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn local_step(&self, params: &mut [f32], grad: &[f32], lr: f32, weight_decay: f32) {
        assert_eq!(params.len(), self.momentum.len(), "params length mismatch");
        assert_eq!(grad.len(), self.momentum.len(), "grad length mismatch");
        for ((p, &g), &m) in params.iter_mut().zip(grad).zip(&self.momentum) {
            *p -= lr * (g + self.mu * m + weight_decay * *p);
        }
    }

    /// The post-Reduce momentum update: folds the observed displacement
    /// `(prev - reduced) / lr` — how far the half-step *plus consensus*
    /// actually moved this worker — into the buffer with weight `beta`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or `lr <= 0`.
    pub fn update_momentum(&mut self, prev: &[f32], reduced: &[f32], lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        assert_eq!(prev.len(), self.momentum.len(), "prev length mismatch");
        assert_eq!(
            reduced.len(),
            self.momentum.len(),
            "reduced length mismatch"
        );
        let inv_lr = 1.0 / lr;
        for ((m, &p), &r) in self.momentum.iter_mut().zip(prev).zip(reduced) {
            *m = self.mu * *m + self.beta * (p - r) * inv_lr;
        }
    }

    /// Resets the momentum buffer (for protocols that abandon a
    /// trajectory, mirroring [`Sgd::reset_velocity`]).
    pub fn reset(&mut self) {
        self.momentum.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_step() {
        let mut opt = Sgd::new(0.5, 0.0, 0.0, 1);
        let mut p = vec![2.0f32];
        opt.step(&mut p, &[1.0]);
        assert_eq!(p, vec![1.5]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(1.0, 0.5, 0.0, 1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]); // v=1, p=-1
        opt.step(&mut p, &[1.0]); // v=1.5, p=-2.5
        assert_eq!(p, vec![-2.5]);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5, 1);
        let mut p = vec![1.0f32];
        opt.step(&mut p, &[0.0]);
        assert!((p[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn delta_matches_step() {
        let mut a = Sgd::new(0.2, 0.9, 0.01, 3);
        let mut b = a.clone();
        let mut p1 = vec![1.0f32, -2.0, 0.5];
        let p2 = p1.clone();
        let g = vec![0.3, -0.1, 0.0];
        a.step(&mut p1, &g);
        let mut d = vec![0.0; 3];
        b.delta(&p2, &g, &mut d);
        for i in 0..3 {
            assert!((p2[i] + d[i] - p1[i]).abs() < 1e-7);
        }
    }

    #[test]
    fn reset_velocity_clears_history() {
        let mut opt = Sgd::new(1.0, 0.9, 0.0, 1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        opt.reset_velocity();
        let mut q = vec![0.0f32];
        opt.step(&mut q, &[1.0]);
        assert_eq!(q, vec![-1.0]); // as if fresh
    }

    #[test]
    fn set_lr_changes_future_steps() {
        let mut opt = Sgd::new(1.0, 0.0, 0.0, 1);
        opt.set_lr(0.1);
        assert_eq!(opt.lr(), 0.1);
        let mut p = vec![0.0f32];
        opt.step(&mut p, &[1.0]);
        assert!((p[0] + 0.1).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn validates_momentum() {
        Sgd::new(0.1, 1.0, 0.0, 1);
    }

    #[test]
    fn qgm_zero_momentum_is_plain_sgd() {
        let qgm = QgmState::new(0.9, 0.1, 2);
        let mut x = vec![1.0f32, -2.0];
        qgm.local_step(&mut x, &[0.5, 0.5], 0.1, 0.0);
        // Fresh buffer: the mu * m term vanishes.
        assert_eq!(x, vec![0.95, -2.05]);
    }

    #[test]
    fn qgm_tracks_parameter_difference() {
        let mut qgm = QgmState::new(0.5, 0.5, 1);
        // The consensus moved x from 2.0 to 1.0 under lr 0.5: the
        // displacement per unit lr is (2 - 1) / 0.5 = 2.
        qgm.update_momentum(&[2.0], &[1.0], 0.5);
        assert_eq!(qgm.momentum(), &[1.0]); // 0.5 * 0 + 0.5 * 2
        qgm.update_momentum(&[1.0], &[1.0], 0.5);
        assert_eq!(qgm.momentum(), &[0.5]); // decays when consensus stalls
                                            // The next local step leans in the remembered global direction.
        let mut x = vec![1.0f32];
        qgm.local_step(&mut x, &[0.0], 0.5, 0.0);
        assert_eq!(x, vec![1.0 - 0.5 * 0.5 * 0.5]);
    }

    #[test]
    fn qgm_weight_decay_shrinks_params() {
        let qgm = QgmState::new(0.0, 1.0, 1);
        let mut x = vec![1.0f32];
        qgm.local_step(&mut x, &[0.0], 0.1, 0.5);
        assert!((x[0] - 0.95).abs() < 1e-7);
    }

    #[test]
    fn qgm_reset_clears_buffer() {
        let mut qgm = QgmState::new(0.9, 0.1, 2);
        qgm.update_momentum(&[1.0, 1.0], &[0.0, 0.0], 0.1);
        assert!(qgm.momentum().iter().any(|&m| m != 0.0));
        qgm.reset();
        assert_eq!(qgm.momentum(), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "mu must be in [0,1)")]
    fn qgm_validates_mu() {
        QgmState::new(1.0, 0.1, 1);
    }
}
