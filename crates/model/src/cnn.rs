//! A small convolutional network (the paper's "CNN" workload stand-in).
//!
//! Architecture: 3×3 convolution (padding 1) over `C×H×W` input with `F`
//! filters → ReLU → 2×2 average pool → fully connected softmax classifier.
//! VGG11 itself is out of scale for this environment; the protocol code
//! only requires a non-convex dense-gradient model (see the README), and
//! this network keeps the convolution + pooling + dense code path of a
//! real CNN, with all backward passes written out explicitly.
//!
//! Parameter layout: `[conv_w (F*C*3*3), conv_b (F), fc_w (K * F*(H/2)*(W/2)), fc_b (K)]`.

use crate::loss::softmax_cross_entropy;
use crate::model::{resize_buf, GradScratch, Model};
use hop_data::{Batch, Features};
use hop_tensor::ops;
use hop_util::Xoshiro256;

/// Tiny CNN classifier.
///
/// # Examples
///
/// ```
/// use hop_model::{cnn::TinyCnn, Model};
/// let cnn = TinyCnn::for_synthetic_images(8);
/// assert_eq!(cnn.param_len(), 8 * 3 * 9 + 8 + 10 * 8 * 16 + 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyCnn {
    channels: usize,
    height: usize,
    width: usize,
    filters: usize,
    classes: usize,
}

impl TinyCnn {
    /// Creates a CNN for `channels x height x width` inputs with the given
    /// number of conv filters and output classes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `height`/`width` are odd (the
    /// 2×2 pool requires even spatial dimensions).
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        filters: usize,
        classes: usize,
    ) -> Self {
        assert!(
            channels > 0 && height > 0 && width > 0 && filters > 0 && classes > 0,
            "all dimensions must be positive"
        );
        assert!(
            height.is_multiple_of(2) && width.is_multiple_of(2),
            "height and width must be even for 2x2 pooling"
        );
        Self {
            channels,
            height,
            width,
            filters,
            classes,
        }
    }

    /// The configuration matching [`hop_data::images::SyntheticImages`]
    /// (3×8×8 input, 10 classes) with `filters` conv filters.
    pub fn for_synthetic_images(filters: usize) -> Self {
        Self::new(
            hop_data::images::CHANNELS,
            hop_data::images::HEIGHT,
            hop_data::images::WIDTH,
            filters,
            hop_data::images::N_CLASSES,
        )
    }

    fn conv_w_len(&self) -> usize {
        self.filters * self.channels * 9
    }

    fn pooled_len(&self) -> usize {
        self.filters * (self.height / 2) * (self.width / 2)
    }

    fn fc_w_len(&self) -> usize {
        self.classes * self.pooled_len()
    }

    fn fc_w_offset(&self) -> usize {
        self.conv_w_len() + self.filters
    }

    /// Conv forward: `out[f, y, x] = b[f] + sum_{c,ky,kx} w[f,c,ky,kx] *
    /// in[c, y+ky-1, x+kx-1]` with zero padding.
    fn conv_forward(&self, params: &[f32], input: &[f32], out: &mut [f32]) {
        let (h, w, c_in) = (self.height, self.width, self.channels);
        let conv_w = &params[..self.conv_w_len()];
        let conv_b = &params[self.conv_w_len()..self.conv_w_len() + self.filters];
        for f in 0..self.filters {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = conv_b[f];
                    for c in 0..c_in {
                        for ky in 0..3 {
                            let iy = y as isize + ky as isize - 1;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..3 {
                                let ix = x as isize + kx as isize - 1;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += conv_w[((f * c_in + c) * 3 + ky) * 3 + kx]
                                    * input[(c * h + iy as usize) * w + ix as usize];
                            }
                        }
                    }
                    out[(f * h + y) * w + x] = acc;
                }
            }
        }
    }

    /// 2×2 average pool forward.
    fn pool_forward(&self, conv_out: &[f32], pooled: &mut [f32]) {
        let (h, w) = (self.height, self.width);
        let (ph, pw) = (h / 2, w / 2);
        for f in 0..self.filters {
            for py in 0..ph {
                for px in 0..pw {
                    let mut acc = 0.0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            acc += conv_out[(f * h + 2 * py + dy) * w + 2 * px + dx];
                        }
                    }
                    pooled[(f * ph + py) * pw + px] = acc / 4.0;
                }
            }
        }
    }

    /// Full forward pass into the scratch's stage buffers
    /// (`[conv_pre_relu, activated, pooled, logits]`).
    fn forward_into(&self, params: &[f32], input: &[f32], stages: &mut [Vec<f32>]) {
        let [conv, activated, pooled, logits] = &mut stages[..4] else {
            unreachable!("caller reserves 4 stage buffers");
        };
        resize_buf(conv, self.filters * self.height * self.width);
        self.conv_forward(params, input, conv);
        resize_buf(activated, conv.len());
        activated.copy_from_slice(conv);
        ops::relu(activated);
        resize_buf(pooled, self.pooled_len());
        self.pool_forward(activated, pooled);
        let fc_w = &params[self.fc_w_offset()..self.fc_w_offset() + self.fc_w_len()];
        let fc_b = &params[self.fc_w_offset() + self.fc_w_len()..];
        resize_buf(logits, self.classes);
        ops::gemv(fc_w, self.classes, self.pooled_len(), pooled, logits);
        ops::axpy(1.0, fc_b, logits);
    }
}

impl Model for TinyCnn {
    fn param_len(&self) -> usize {
        self.conv_w_len() + self.filters + self.fc_w_len() + self.classes
    }

    fn init_params(&self, rng: &mut Xoshiro256) -> Vec<f32> {
        let mut params = vec![0.0f32; self.param_len()];
        let conv_std = (2.0 / (self.channels as f64 * 9.0)).sqrt();
        for w in params[..self.conv_w_len()].iter_mut() {
            *w = rng.normal_with(0.0, conv_std) as f32;
        }
        let fc_std = (2.0 / self.pooled_len() as f64).sqrt();
        let off = self.fc_w_offset();
        for w in params[off..off + self.fc_w_len()].iter_mut() {
            *w = rng.normal_with(0.0, fc_std) as f32;
        }
        params
    }

    fn loss_grad_with(
        &self,
        params: &[f32],
        batch: &Batch<'_>,
        grad: &mut [f32],
        scratch: &mut GradScratch,
    ) -> f32 {
        assert_eq!(params.len(), self.param_len(), "params length mismatch");
        assert_eq!(grad.len(), self.param_len(), "grad length mismatch");
        assert!(!batch.is_empty(), "empty batch");
        grad.fill(0.0);
        let (h, w, c_in) = (self.height, self.width, self.channels);
        let (ph, pw) = (h / 2, w / 2);
        let mut total = 0.0f32;
        scratch.ensure_stages(4);
        let GradScratch { stages, a, b, c } = scratch;
        let (dlogits_buf, dpooled_buf, dconv_buf) = (a, b, c);
        for ex in &batch.examples {
            let input = ex.features.as_dense().expect("CNN requires dense features");
            assert_eq!(input.len(), c_in * h * w, "input size mismatch");
            self.forward_into(params, input, stages);
            let [conv_pre, _activated, pooled, logits] = &stages[..4] else {
                unreachable!("forward_into reserves 4 stage buffers");
            };
            resize_buf(dlogits_buf, self.classes);
            let dlogits = dlogits_buf.as_mut_slice();
            total += softmax_cross_entropy(logits, ex.label as usize, dlogits);
            // FC backward.
            let fc_off = self.fc_w_offset();
            let fc_w = &params[fc_off..fc_off + self.fc_w_len()];
            resize_buf(dpooled_buf, self.pooled_len());
            let dpooled = dpooled_buf.as_mut_slice();
            {
                let (gfc_w, gfc_b) = grad[fc_off..].split_at_mut(self.fc_w_len());
                for k in 0..self.classes {
                    ops::axpy(
                        dlogits[k],
                        pooled,
                        &mut gfc_w[k * self.pooled_len()..(k + 1) * self.pooled_len()],
                    );
                    gfc_b[k] += dlogits[k];
                }
                ops::gemv_t(fc_w, self.classes, self.pooled_len(), dlogits, dpooled);
            }
            // Pool backward: spread each pooled gradient over its 2x2 window.
            resize_buf(dconv_buf, self.filters * h * w);
            let dconv = dconv_buf.as_mut_slice();
            for f in 0..self.filters {
                for py in 0..ph {
                    for px in 0..pw {
                        let g = dpooled[(f * ph + py) * pw + px] / 4.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                dconv[(f * h + 2 * py + dy) * w + 2 * px + dx] += g;
                            }
                        }
                    }
                }
            }
            // ReLU backward on the conv pre-activations.
            ops::relu_backward(conv_pre, dconv);
            // Conv backward (weights and bias only; input grads unused).
            let (gconv_w, rest) = grad.split_at_mut(self.conv_w_len());
            let gconv_b = &mut rest[..self.filters];
            for f in 0..self.filters {
                for y in 0..h {
                    for x in 0..w {
                        let g = dconv[(f * h + y) * w + x];
                        if g == 0.0 {
                            continue;
                        }
                        gconv_b[f] += g;
                        for c in 0..c_in {
                            for ky in 0..3 {
                                let iy = y as isize + ky as isize - 1;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..3 {
                                    let ix = x as isize + kx as isize - 1;
                                    if ix < 0 || ix >= w as isize {
                                        continue;
                                    }
                                    gconv_w[((f * c_in + c) * 3 + ky) * 3 + kx] +=
                                        g * input[(c * h + iy as usize) * w + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
        let inv = 1.0 / batch.len() as f32;
        ops::scale(inv, grad);
        total * inv
    }

    fn predict(&self, params: &[f32], features: &Features) -> u32 {
        let input = features.as_dense().expect("CNN requires dense features");
        let mut scratch = GradScratch::new();
        scratch.ensure_stages(4);
        self.forward_into(params, input, &mut scratch.stages);
        ops::argmax(&scratch.stages[3]) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::finite_difference_check;
    use crate::optimizer::Sgd;
    use hop_data::images::SyntheticImages;
    use hop_data::{BatchSampler, Dataset};

    #[test]
    fn param_len_matches_layout() {
        let cnn = TinyCnn::new(3, 8, 8, 4, 10);
        assert_eq!(cnn.param_len(), 4 * 3 * 9 + 4 + 10 * 4 * 16 + 10);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let data = SyntheticImages::generate(4, 7);
        let cnn = TinyCnn::for_synthetic_images(2);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let params = cnn.init_params(&mut rng);
        let batch = data.batch(&[0, 1, 2, 3]);
        let probe: Vec<usize> = (0..cnn.param_len()).step_by(37).collect();
        let err = finite_difference_check(&cnn, &params, &batch, &probe, 1e-2);
        assert!(err < 3e-2, "relative error {err}");
    }

    #[test]
    fn training_reduces_loss() {
        let data = SyntheticImages::generate(512, 5);
        let cnn = TinyCnn::for_synthetic_images(4);
        let mut rng = Xoshiro256::seed_from_u64(0);
        let mut params = cnn.init_params(&mut rng);
        let mut grad = vec![0.0; params.len()];
        let mut opt = Sgd::new(0.05, 0.9, 1e-4, params.len());
        let mut sampler = BatchSampler::new(data.len(), 32, 1);
        let eval: Vec<usize> = (0..128).collect();
        let initial = cnn.loss(&params, &data.batch(&eval));
        for _ in 0..150 {
            let b = sampler.next_batch(&data);
            cnn.loss_grad(&params, &b, &mut grad);
            opt.step(&mut params, &grad);
        }
        let final_loss = cnn.loss(&params, &data.batch(&eval));
        assert!(
            final_loss < initial * 0.7,
            "loss {initial} -> {final_loss} did not drop"
        );
    }

    #[test]
    fn conv_identity_filter_passes_through() {
        // A single filter with a 1 at the kernel center on channel 0 copies
        // channel 0 of the input.
        let cnn = TinyCnn::new(1, 4, 4, 1, 2);
        let mut params = vec![0.0; cnn.param_len()];
        params[4] = 1.0; // kernel center of (f=0, c=0): index (0*3+1)*3+1 = 4
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut out = vec![0.0; 16];
        cnn.conv_forward(&params, &input, &mut out);
        assert_eq!(out, input);
    }

    #[test]
    fn pool_averages_windows() {
        let cnn = TinyCnn::new(1, 4, 4, 1, 2);
        let conv: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut pooled = vec![0.0; 4];
        cnn.pool_forward(&conv, &mut pooled);
        // Window (0,0): mean(0,1,4,5) = 2.5.
        assert_eq!(pooled[0], 2.5);
        assert_eq!(pooled[3], 12.5);
    }

    #[test]
    fn predict_valid_class() {
        let data = SyntheticImages::generate(2, 9);
        let cnn = TinyCnn::for_synthetic_images(2);
        let params = cnn.init_params(&mut Xoshiro256::seed_from_u64(2));
        let c = cnn.predict(&params, &data.example(0).features);
        assert!(c < 10);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn validates_even_dims() {
        TinyCnn::new(1, 5, 4, 1, 2);
    }
}
