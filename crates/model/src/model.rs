//! The `Model` trait: everything a decentralized worker needs from a model.

use hop_data::{Batch, Features};
use hop_util::Xoshiro256;

/// Reusable forward/backward scratch buffers for
/// [`Model::loss_grad_with`].
///
/// Each training worker owns one `GradScratch`; models write per-example
/// activations and backprop deltas into it instead of allocating fresh
/// `Vec`s per example, so a steady-state gradient step performs no heap
/// allocation. The buffer contents are transient — every call overwrites
/// what it reads — and carry no cross-call state, so reusing (or not
/// reusing) a scratch cannot change any computed value.
///
/// The layout is deliberately loose: [`GradScratch::stages`] holds one
/// buffer per forward stage (layer activations, pre-activations, pooled
/// maps…), and [`GradScratch::a`]/[`b`](GradScratch::b)/
/// [`c`](GradScratch::c) are generic delta buffers. Models size them via
/// [`resize_buf`] on entry.
#[derive(Debug, Clone, Default)]
pub struct GradScratch {
    /// Per-stage forward buffers (activations, pre-activations…).
    pub stages: Vec<Vec<f32>>,
    /// Generic backprop buffer (e.g. the current layer's `dz`).
    pub a: Vec<f32>,
    /// Generic backprop buffer (e.g. the previous layer's `da`).
    pub b: Vec<f32>,
    /// Generic backprop buffer for models with a third intermediate
    /// (e.g. the CNN's `dconv`).
    pub c: Vec<f32>,
}

impl GradScratch {
    /// An empty scratch; buffers grow to the model's sizes on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures [`Self::stages`] holds at least `n` buffers.
    pub fn ensure_stages(&mut self, n: usize) {
        if self.stages.len() < n {
            self.stages.resize_with(n, Vec::new);
        }
    }
}

/// Resizes a scratch buffer to `len` elements, zero-filled — equivalent
/// to a fresh `vec![0.0; len]` but reusing the allocation.
pub fn resize_buf(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

/// A differentiable model over a flat parameter vector.
///
/// Decentralized training exchanges raw parameter vectors between workers;
/// keeping the model stateless over `&[f32]` makes every protocol
/// implementation model-agnostic.
pub trait Model: Send + Sync {
    /// Length of the flat parameter vector.
    fn param_len(&self) -> usize;

    /// Draws initial parameters.
    fn init_params(&self, rng: &mut Xoshiro256) -> Vec<f32>;

    /// Computes the mean loss over `batch` and writes the mean gradient
    /// into `grad` (overwritten, not accumulated), using `scratch` for
    /// all per-example intermediates. Returns the loss.
    ///
    /// This is the allocation-free hot path: callers keep one
    /// [`GradScratch`] per worker and pass it to every call. Results are
    /// bit-identical regardless of the scratch's prior contents.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params` or `grad` have the wrong length
    /// or the batch is empty.
    fn loss_grad_with(
        &self,
        params: &[f32],
        batch: &Batch<'_>,
        grad: &mut [f32],
        scratch: &mut GradScratch,
    ) -> f32;

    /// [`Self::loss_grad_with`] with a throwaway scratch — convenient for
    /// tests and cold paths.
    fn loss_grad(&self, params: &[f32], batch: &Batch<'_>, grad: &mut [f32]) -> f32 {
        self.loss_grad_with(params, batch, grad, &mut GradScratch::new())
    }

    /// Computes the mean loss over `batch` without gradients.
    fn loss(&self, params: &[f32], batch: &Batch<'_>) -> f32 {
        let mut grad = vec![0.0; self.param_len()];
        self.loss_grad(params, batch, &mut grad)
    }

    /// Predicts the class of a single example.
    fn predict(&self, params: &[f32], features: &Features) -> u32;

    /// Classification accuracy over a batch.
    fn accuracy(&self, params: &[f32], batch: &Batch<'_>) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        let correct = batch
            .examples
            .iter()
            .filter(|ex| self.predict(params, &ex.features) == ex.label)
            .count();
        correct as f64 / batch.len() as f64
    }
}

/// Checks an analytic gradient against central finite differences on a few
/// coordinates; used by every model's tests.
///
/// Returns the maximum relative error over the probed coordinates.
#[doc(hidden)]
pub fn finite_difference_check<M: Model>(
    model: &M,
    params: &[f32],
    batch: &Batch<'_>,
    probe: &[usize],
    eps: f32,
) -> f64 {
    let mut grad = vec![0.0; model.param_len()];
    model.loss_grad(params, batch, &mut grad);
    let mut worst: f64 = 0.0;
    let mut p = params.to_vec();
    for &i in probe {
        let orig = p[i];
        p[i] = orig + eps;
        let up = model.loss(&p, batch) as f64;
        p[i] = orig - eps;
        let down = model.loss(&p, batch) as f64;
        p[i] = orig;
        let numeric = (up - down) / (2.0 * eps as f64);
        let analytic = grad[i] as f64;
        let denom = numeric.abs().max(analytic.abs()).max(1e-4);
        worst = worst.max((numeric - analytic).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::{Dataset, Example, InMemoryDataset};

    /// Quadratic toy model: loss = 0.5 * ||params - x||^2 summed over batch.
    struct Quadratic {
        dim: usize,
    }

    impl Model for Quadratic {
        fn param_len(&self) -> usize {
            self.dim
        }

        fn init_params(&self, _rng: &mut Xoshiro256) -> Vec<f32> {
            vec![0.0; self.dim]
        }

        fn loss_grad_with(
            &self,
            params: &[f32],
            batch: &Batch<'_>,
            grad: &mut [f32],
            _scratch: &mut GradScratch,
        ) -> f32 {
            assert_eq!(params.len(), self.dim);
            assert_eq!(grad.len(), self.dim);
            assert!(!batch.is_empty());
            grad.fill(0.0);
            let mut loss = 0.0;
            for ex in &batch.examples {
                let x = ex.features.as_dense().expect("dense");
                for k in 0..self.dim {
                    let d = params[k] - x[k];
                    loss += 0.5 * d * d;
                    grad[k] += d;
                }
            }
            let inv = 1.0 / batch.len() as f32;
            for g in grad.iter_mut() {
                *g *= inv;
            }
            loss * inv
        }

        fn predict(&self, _params: &[f32], _features: &Features) -> u32 {
            0
        }
    }

    fn dataset() -> InMemoryDataset {
        InMemoryDataset::new(
            vec![
                Example {
                    features: Features::Dense(vec![1.0, -1.0]),
                    label: 0,
                },
                Example {
                    features: Features::Dense(vec![3.0, 5.0]),
                    label: 0,
                },
            ],
            2,
            1,
        )
    }

    #[test]
    fn default_loss_matches_loss_grad() {
        let d = dataset();
        let m = Quadratic { dim: 2 };
        let batch = d.batch(&[0, 1]);
        let mut grad = vec![0.0; 2];
        let via_grad = m.loss_grad(&[0.0, 0.0], &batch, &mut grad);
        let plain = m.loss(&[0.0, 0.0], &batch);
        assert_eq!(via_grad, plain);
        // Mean gradient of 0.5(p - x)^2 at p = 0 is -mean(x) = (-2, -2).
        assert_eq!(grad, vec![-2.0, -2.0]);
    }

    #[test]
    fn finite_difference_agrees_for_quadratic() {
        let d = dataset();
        let m = Quadratic { dim: 2 };
        let batch = d.batch(&[0, 1]);
        let err = finite_difference_check(&m, &[0.3, -0.7], &batch, &[0, 1], 1e-3);
        assert!(err < 1e-3, "relative error {err}");
    }

    #[test]
    fn accuracy_counts_matches() {
        let d = dataset();
        let m = Quadratic { dim: 2 };
        let batch = d.batch(&[0, 1]);
        // Quadratic always predicts 0 and all labels are 0.
        assert_eq!(m.accuracy(&[0.0, 0.0], &batch), 1.0);
    }
}
