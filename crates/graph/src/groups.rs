//! Randomized partial all-reduce groups (Prague-style partition
//! scheduling).
//!
//! Prague (Luo et al., *Heterogeneity-Aware Asynchronous Decentralized
//! Training*) replaces the global all-reduce with a *partial* all-reduce:
//! each round the workers are partitioned into small groups and every
//! group all-reduces among only its own members, so a straggler delays at
//! most `group_size - 1` peers instead of the whole cluster. The
//! randomized regeneration of the partition over rounds is what mixes
//! information across the cluster.
//!
//! This module supplies the *static-group scheduling* half of that
//! design: [`partition`] is a pure function of `(seed, round)`, so every
//! worker — and every rerun of a simulation — derives the identical
//! group assignment for a round with no coordination and no shared
//! state. Group sizes differ by at most one (no starved singleton
//! remainders unless `n < group_size`).
//!
//! # Examples
//!
//! ```
//! use hop_graph::groups::partition;
//!
//! let groups = partition(10, 4, 42, 7);
//! // ceil(10 / 4) = 3 groups, balanced to sizes 4/3/3.
//! assert_eq!(groups.len(), 3);
//! let mut all: Vec<usize> = groups.concat();
//! all.sort_unstable();
//! assert_eq!(all, (0..10).collect::<Vec<_>>());
//! // Pure in (seed, round): the same arguments always give the same
//! // partition…
//! assert_eq!(groups, partition(10, 4, 42, 7));
//! // …and another round reshuffles it.
//! assert_ne!(groups, partition(10, 4, 42, 8));
//! ```

use hop_util::rng::{splitmix64, Xoshiro256};

/// Partitions workers `0..n` into groups of at most `group_size`,
/// deterministically from `(seed, round)`.
///
/// The partition is a seeded Fisher–Yates shuffle of the worker ids cut
/// into `ceil(n / group_size)` slices whose sizes differ by at most one
/// (e.g. 10 workers with `group_size = 4` gives 4/3/3, never 4/4/2).
/// Each group's member list stays in shuffled order, which callers use as
/// the logical ring order for the group's all-reduce.
///
/// # Panics
///
/// Panics if `n == 0` or `group_size == 0`.
pub fn partition(n: usize, group_size: usize, seed: u64, round: u64) -> Vec<Vec<usize>> {
    assert!(n > 0, "cannot partition zero workers");
    assert!(group_size > 0, "group size must be positive");
    let mut ids: Vec<usize> = (0..n).collect();
    let mut rng = Xoshiro256::seed_from_u64(mix(seed, round));
    rng.shuffle(&mut ids);
    let n_groups = n.div_ceil(group_size);
    let base = n / n_groups;
    let extra = n % n_groups; // the first `extra` groups get one more
    let mut groups = Vec::with_capacity(n_groups);
    let mut start = 0;
    for g in 0..n_groups {
        let size = base + usize::from(g < extra);
        groups.push(ids[start..start + size].to_vec());
        start += size;
    }
    groups
}

/// The group index each worker belongs to in `groups` (the inverse of
/// [`partition`]'s output): `membership(&groups)[w]` is the index into
/// `groups` containing worker `w`.
///
/// # Panics
///
/// Panics if a member id is out of range for the partition's total size.
pub fn membership(groups: &[Vec<usize>]) -> Vec<usize> {
    let n: usize = groups.iter().map(Vec::len).sum();
    let mut of = vec![usize::MAX; n];
    for (g, members) in groups.iter().enumerate() {
        for &w in members {
            assert!(w < n, "member {w} out of range for {n} workers");
            of[w] = g;
        }
    }
    of
}

/// Hashes `(seed, round)` into an RNG seed with two SplitMix64 rounds so
/// neighboring rounds produce unrelated shuffles.
fn mix(seed: u64, round: u64) -> u64 {
    let mut state = seed ^ 0x00C0_DE5E_ED0F_u64.rotate_left(17);
    let a = splitmix64(&mut state);
    state ^= round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let b = splitmix64(&mut state);
    a ^ b.rotate_left(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn is_partition(groups: &[Vec<usize>], n: usize) {
        let mut all: Vec<usize> = groups.concat();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>(), "not a partition of {n}");
    }

    #[test]
    fn covers_all_workers_exactly_once() {
        for n in [1, 2, 5, 6, 10, 16, 17] {
            for gs in [1, 2, 3, 4, 16] {
                for round in 0..4 {
                    let groups = partition(n, gs, 9, round);
                    is_partition(&groups, n);
                    assert_eq!(groups.len(), n.div_ceil(gs));
                    for g in &groups {
                        assert!(g.len() <= gs, "group larger than {gs}: {g:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn sizes_are_balanced() {
        // 10 workers in groups of 4: 4/3/3, never a starved remainder.
        let sizes: Vec<usize> = partition(10, 4, 0, 0).iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn deterministic_in_seed_and_round() {
        assert_eq!(partition(12, 3, 7, 5), partition(12, 3, 7, 5));
        assert_ne!(partition(12, 3, 7, 5), partition(12, 3, 7, 6));
        assert_ne!(partition(12, 3, 7, 5), partition(12, 3, 8, 5));
    }

    #[test]
    fn rounds_mix_memberships() {
        // Over a handful of rounds worker 0 should meet most of the
        // cluster — the property that makes partial all-reduce converge.
        let n = 12;
        let mut met = std::collections::HashSet::new();
        for round in 0..16 {
            let groups = partition(n, 4, 3, round);
            let of = membership(&groups);
            met.extend(groups[of[0]].iter().copied());
        }
        assert!(met.len() > n / 2, "worker 0 only met {met:?}");
    }

    #[test]
    fn membership_inverts_partition() {
        let groups = partition(9, 4, 1, 2);
        let of = membership(&groups);
        assert_eq!(of.len(), 9);
        for (g, members) in groups.iter().enumerate() {
            for &w in members {
                assert_eq!(of[w], g);
            }
        }
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn rejects_zero_group_size() {
        partition(4, 0, 0, 0);
    }
}
