//! Closed-form iteration-gap upper bounds (Table 1 of the paper).
//!
//! All bounds are on `Iter(i) - Iter(j)`: how far worker `i` can run ahead
//! of worker `j`. `path(j -> i)` denotes the directed shortest-path length
//! from `j` to `i` excluding self-loops ([`crate::paths::ShortestPaths`]).

use std::fmt;

/// An upper bound that may be infinite (backup workers make the raw gap
/// unbounded, §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bound {
    /// A finite bound of the given number of iterations.
    Finite(u64),
    /// No bound.
    Unbounded,
}

impl Bound {
    /// Multiplies a bound by a scalar; `Unbounded` is absorbing.
    pub fn times(self, k: u64) -> Bound {
        match self {
            Bound::Finite(b) => Bound::Finite(b.saturating_mul(k)),
            Bound::Unbounded => Bound::Unbounded,
        }
    }

    /// Minimum of two bounds.
    pub fn min(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.min(b)),
            (Bound::Finite(a), Bound::Unbounded) | (Bound::Unbounded, Bound::Finite(a)) => {
                Bound::Finite(a)
            }
            (Bound::Unbounded, Bound::Unbounded) => Bound::Unbounded,
        }
    }

    /// Whether an observed gap satisfies the bound.
    pub fn admits(self, observed: i64) -> bool {
        match self {
            Bound::Finite(b) => observed <= b as i64,
            Bound::Unbounded => true,
        }
    }

    /// The finite value, if any.
    pub fn finite(self) -> Option<u64> {
        match self {
            Bound::Finite(b) => Some(b),
            Bound::Unbounded => None,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(b) => write!(f, "{b}"),
            Bound::Unbounded => write!(f, "inf"),
        }
    }
}

impl From<u64> for Bound {
    fn from(v: u64) -> Self {
        Bound::Finite(v)
    }
}

/// Converts a shortest-path distance (`None` = unreachable) to a [`Bound`]
/// factor: an unreachable path imposes no constraint.
fn path_bound(dist: Option<usize>) -> Bound {
    match dist {
        Some(d) => Bound::Finite(d as u64),
        None => Bound::Unbounded,
    }
}

/// Table 1, row "Standard decentralized": `Iter(i) - Iter(j) <=
/// length(Path_{j->i})` (Theorem 1).
pub fn standard(path_j_to_i: Option<usize>) -> Bound {
    path_bound(path_j_to_i)
}

/// Table 1, row "Bounded staleness": `(s+1) * length(Path_{j->i})`.
pub fn staleness(s: u64, path_j_to_i: Option<usize>) -> Bound {
    path_bound(path_j_to_i).times(s + 1)
}

/// Table 1, row "Backup worker": unbounded.
pub fn backup() -> Bound {
    Bound::Unbounded
}

/// Table 1, row "Hybrid" (backup + staleness): unbounded.
pub fn hybrid() -> Bound {
    Bound::Unbounded
}

/// Table 1, row "Using NOTIFY-ACK":
/// `min(length(Path_{j->i}), 2 * length(Path_{i->j}))` (§3.3).
pub fn notify_ack(path_j_to_i: Option<usize>, path_i_to_j: Option<usize>) -> Bound {
    path_bound(path_j_to_i).min(path_bound(path_i_to_j).times(2))
}

/// Table 1, row "Using token queues":
/// `min(b0 * length(Path_{j->i}), max_ig * length(Path_{i->j}))`, where
/// `b0` is the forward per-hop bound of the base setting (1 for standard,
/// `s+1` for bounded staleness, unbounded for backup/hybrid).
pub fn token_queues(
    b0: Bound,
    max_ig: u64,
    path_j_to_i: Option<usize>,
    path_i_to_j: Option<usize>,
) -> Bound {
    let forward = match b0 {
        Bound::Finite(b) => path_bound(path_j_to_i).times(b),
        Bound::Unbounded => Bound::Unbounded,
    };
    forward.min(path_bound(path_i_to_j).times(max_ig))
}

/// Maximum number of tokens ever held by `TokenQ(i->j)` (Table 1 caption):
/// `max_ig * (length(Path_{i->j}) + 1)`.
pub fn token_queue_capacity(max_ig: u64, path_i_to_j: Option<usize>) -> Bound {
    match path_i_to_j {
        Some(d) => Bound::Finite(max_ig.saturating_mul(d as u64 + 1)),
        None => Bound::Unbounded,
    }
}

/// Required update-queue capacity with token queues (§4.2): with bounded
/// iteration gaps, `UpdateQ(i)` holds at most `(1 + max_ig) * |Nin(i)|`
/// entries regardless of graph size.
pub fn update_queue_capacity(max_ig: u64, in_degree: usize) -> u64 {
    (1 + max_ig) * in_degree as u64
}

/// The forward per-hop bound `b0` of each base protocol setting, i.e. the
/// Table 1 column "for j in Nin(i)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseSetting {
    /// Standard decentralized training: adjacent gap at most 1.
    Standard,
    /// Bounded staleness with bound `s`: adjacent gap at most `s + 1`.
    BoundedStaleness(u64),
    /// Backup workers: no inherent bound.
    BackupWorkers,
    /// Backup workers combined with staleness: no inherent bound.
    Hybrid,
}

impl BaseSetting {
    /// The per-hop forward bound `b0`.
    pub fn b0(self) -> Bound {
        match self {
            BaseSetting::Standard => Bound::Finite(1),
            BaseSetting::BoundedStaleness(s) => Bound::Finite(s + 1),
            BaseSetting::BackupWorkers | BaseSetting::Hybrid => Bound::Unbounded,
        }
    }

    /// The Table 1 bound for an arbitrary pair without token queues.
    pub fn pair_bound(self, path_j_to_i: Option<usize>) -> Bound {
        match self {
            BaseSetting::Standard => standard(path_j_to_i),
            BaseSetting::BoundedStaleness(s) => staleness(s, path_j_to_i),
            BaseSetting::BackupWorkers | BaseSetting::Hybrid => Bound::Unbounded,
        }
    }

    /// The Table 1 bound for an arbitrary pair when token queues with
    /// `max_ig` are layered on top of this setting.
    pub fn pair_bound_with_tokens(
        self,
        max_ig: u64,
        path_j_to_i: Option<usize>,
        path_i_to_j: Option<usize>,
    ) -> Bound {
        token_queues(self.b0(), max_ig, path_j_to_i, path_i_to_j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::ShortestPaths;
    use crate::topology::Topology;

    #[test]
    fn bound_algebra() {
        assert_eq!(Bound::Finite(3).times(2), Bound::Finite(6));
        assert_eq!(Bound::Unbounded.times(2), Bound::Unbounded);
        assert_eq!(Bound::Finite(3).min(Bound::Finite(5)), Bound::Finite(3));
        assert_eq!(Bound::Unbounded.min(Bound::Finite(5)), Bound::Finite(5));
        assert_eq!(Bound::Unbounded.min(Bound::Unbounded), Bound::Unbounded);
        assert!(Bound::Finite(2).admits(2));
        assert!(!Bound::Finite(2).admits(3));
        assert!(Bound::Unbounded.admits(i64::MAX));
        assert_eq!(Bound::Finite(4).finite(), Some(4));
        assert_eq!(Bound::Unbounded.finite(), None);
        assert_eq!(format!("{}", Bound::Finite(7)), "7");
        assert_eq!(format!("{}", Bound::Unbounded), "inf");
    }

    #[test]
    fn standard_is_theorem_1() {
        assert_eq!(standard(Some(3)), Bound::Finite(3));
        assert_eq!(standard(None), Bound::Unbounded);
    }

    #[test]
    fn staleness_scales_path() {
        assert_eq!(staleness(5, Some(2)), Bound::Finite(12));
    }

    #[test]
    fn notify_ack_adjacent_is_table_1() {
        // Adjacent workers: path(j->i) = 1, path(i->j) = 1 on a symmetric
        // graph => forward bound 1, backward bound 2, matching §3.3.
        assert_eq!(notify_ack(Some(1), Some(1)), Bound::Finite(1));
        assert_eq!(notify_ack(Some(4), Some(1)), Bound::Finite(2));
    }

    #[test]
    fn token_queues_bound_backup_setting() {
        // Backup workers alone: unbounded; with tokens: max_ig * path(i->j).
        let b = BaseSetting::BackupWorkers;
        assert_eq!(b.pair_bound(Some(1)), Bound::Unbounded);
        assert_eq!(
            b.pair_bound_with_tokens(5, Some(1), Some(2)),
            Bound::Finite(10)
        );
    }

    #[test]
    fn token_queues_adjacent_standard() {
        // Adjacent pair, standard setting with tokens: min(1 * 1, max_ig * 1).
        assert_eq!(
            BaseSetting::Standard.pair_bound_with_tokens(5, Some(1), Some(1)),
            Bound::Finite(1)
        );
        // The reverse direction ("for i in Nin(j)"): path(j->i) may be long.
        assert_eq!(
            BaseSetting::Standard.pair_bound_with_tokens(5, Some(9), Some(1)),
            Bound::Finite(5)
        );
    }

    #[test]
    fn capacities() {
        assert_eq!(token_queue_capacity(3, Some(2)), Bound::Finite(9));
        assert_eq!(token_queue_capacity(3, None), Bound::Unbounded);
        assert_eq!(update_queue_capacity(3, 4), 16);
    }

    #[test]
    fn figure_5_example() {
        // Fig. 5(b): a 5-node ring; path(A=0 -> B=1) going the long way is 4
        // hops in the directed sense used there. On our bidirectional
        // 5-ring, path(0->1) = 1 and path(1->0) = 1, so Theorem 1 gives
        // gap(B ahead of A) <= path(0->1)... exercise the machinery on the
        // directed cycle instead, which matches the figure's chain.
        let t = Topology::from_edges(5, &[(0, 4), (4, 3), (3, 2), (2, 1), (1, 0)]);
        let sp = ShortestPaths::new(&t);
        // B=1 can be 4 ahead of A=0: path(0 -> 1) = 4 hops (0->4->3->2->1).
        assert_eq!(standard(sp.dist(0, 1)), Bound::Finite(4));
        // With max_ig = 3 the gap shrinks to min(4, 3*1) = 3 (Fig. 5 fix).
        assert_eq!(
            BaseSetting::Standard.pair_bound_with_tokens(3, sp.dist(0, 1), sp.dist(1, 0)),
            Bound::Finite(3)
        );
    }

    #[test]
    fn hybrid_unbounded_without_tokens() {
        assert_eq!(hybrid(), Bound::Unbounded);
        assert_eq!(backup(), Bound::Unbounded);
    }
}
