//! Communication-graph substrate for decentralized training.
//!
//! This crate implements everything the Hop paper assumes about the worker
//! communication topology `G = (V, E)` (§3.1):
//!
//! * [`topology`] — directed graphs with self-loops and the constructions
//!   used in the evaluation: ring, ring-based (ring + chord to the most
//!   distant node), double-ring (Fig. 11), hierarchical placement-aware
//!   graphs (Fig. 21), plus generic and randomized builders for tests.
//! * [`weights`] — weighted adjacency matrices `W`: the uniform in-degree
//!   weights of Eq. (1) and Metropolis–Hastings weights, with
//!   doubly-stochastic checks.
//! * [`paths`] — BFS all-pairs shortest paths, `length(Path_{j->i})` in the
//!   iteration-gap theorems.
//! * [`spectral`] — spectral-gap computation (`1 - |lambda_2(W)|`) via a
//!   Jacobi eigensolver for symmetric `W` and a deflated power method for
//!   general `W` (§7.3.6, Fig. 21).
//! * [`bounds`] — the closed-form iteration-gap upper bounds of Table 1.
//! * [`groups`] — deterministic randomized partition scheduling for
//!   Prague-style partial all-reduce (groups derived purely from
//!   `(seed, round)`).
//!
//! # Examples
//!
//! ```
//! use hop_graph::topology::Topology;
//! use hop_graph::weights::WeightMatrix;
//!
//! let ring = Topology::ring(8);
//! let w = WeightMatrix::uniform(&ring);
//! assert!(w.is_doubly_stochastic(1e-9));
//! ```

pub mod bounds;
pub mod groups;
pub mod paths;
pub mod spectral;
pub mod topology;
pub mod weights;

pub use bounds::Bound;
pub use paths::ShortestPaths;
pub use topology::Topology;
pub use weights::WeightMatrix;
