//! All-pairs shortest path lengths (BFS over directed external edges).
//!
//! `length(Path_{j->i})` — the number of edges on the shortest directed path
//! from `j` to `i`, ignoring self-loops — is the quantity that bounds the
//! iteration gap in Theorems 1 and 2.

use crate::topology::Topology;
use std::collections::VecDeque;

/// Precomputed all-pairs shortest-path table for a [`Topology`].
///
/// # Examples
///
/// ```
/// use hop_graph::{ShortestPaths, Topology};
/// let sp = ShortestPaths::new(&Topology::ring(6));
/// assert_eq!(sp.dist(0, 3), Some(3));
/// assert_eq!(sp.dist(0, 0), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    n: usize,
    /// `dist[from][to]`, `usize::MAX` when unreachable.
    dist: Vec<Vec<usize>>,
}

impl ShortestPaths {
    /// Runs BFS from every node over directed edges, excluding self-loops.
    pub fn new(topology: &Topology) -> Self {
        let n = topology.len();
        let mut dist = vec![vec![usize::MAX; n]; n];
        for (start, row) in dist.iter_mut().enumerate() {
            row[start] = 0;
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in topology.external_out_neighbors(u) {
                    if row[v] == usize::MAX {
                        row[v] = row[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self { n, dist }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Shortest directed path length from `from` to `to`, or `None` if
    /// unreachable.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn dist(&self, from: usize, to: usize) -> Option<usize> {
        assert!(from < self.n && to < self.n, "index out of range");
        let d = self.dist[from][to];
        (d != usize::MAX).then_some(d)
    }

    /// The graph diameter (max finite distance), or `None` if disconnected.
    pub fn diameter(&self) -> Option<usize> {
        let mut max = 0;
        for row in &self.dist {
            for &d in row {
                if d == usize::MAX {
                    return None;
                }
                max = max.max(d);
            }
        }
        Some(max)
    }

    /// Average finite distance over ordered pairs `(i, j)`, `i != j`.
    ///
    /// Unreachable pairs are skipped; returns 0.0 for a single node.
    pub fn mean_distance(&self) -> f64 {
        let mut sum = 0usize;
        let mut count = 0usize;
        for (i, row) in self.dist.iter().enumerate() {
            for (j, &d) in row.iter().enumerate() {
                if i != j && d != usize::MAX {
                    sum += d;
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_distances() {
        let sp = ShortestPaths::new(&Topology::ring(8));
        assert_eq!(sp.dist(0, 1), Some(1));
        assert_eq!(sp.dist(0, 4), Some(4));
        assert_eq!(sp.dist(0, 7), Some(1));
        assert_eq!(sp.diameter(), Some(4));
    }

    #[test]
    fn ring_based_halves_diameter() {
        let sp = ShortestPaths::new(&Topology::ring_based(8));
        // chords to the opposite node cut the diameter to 2.
        assert_eq!(sp.dist(0, 4), Some(1));
        assert_eq!(sp.diameter(), Some(2));
    }

    #[test]
    fn directed_line_is_asymmetric() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        let sp = ShortestPaths::new(&t);
        assert_eq!(sp.dist(0, 2), Some(2));
        assert_eq!(sp.dist(2, 0), None);
        assert_eq!(sp.diameter(), None);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let sp = ShortestPaths::new(&Topology::complete(5));
        assert_eq!(sp.diameter(), Some(1));
        assert!((sp.mean_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_distance_zero() {
        let sp = ShortestPaths::new(&Topology::ring(4));
        for i in 0..4 {
            assert_eq!(sp.dist(i, i), Some(0));
        }
    }
}
