//! Spectral analysis of weight matrices.
//!
//! The paper (§7.3.6, Fig. 21) characterizes communication graphs by their
//! *spectral gap* `|lambda_1(W)| - |lambda_2(W)|`; for a doubly-stochastic
//! `W` on a connected graph `lambda_1 = 1`, so the gap is `1 - |lambda_2|`.
//! Two solvers are provided, both written from scratch:
//!
//! * a cyclic Jacobi eigensolver for symmetric `W` (exact, used for all the
//!   regular Fig. 11 graphs), and
//! * a deflated power method measuring the asymptotic growth rate of
//!   `(W - J/n)^k x`, which estimates `|lambda_2|` for general
//!   doubly-stochastic `W`, including non-symmetric ones with complex
//!   second eigenvalues.

use crate::weights::WeightMatrix;
use hop_util::Xoshiro256;

/// Eigenvalues of a symmetric matrix via the cyclic Jacobi method.
///
/// Returns eigenvalues in descending order of magnitude.
///
/// # Panics
///
/// Panics if `matrix.len() != n * n` or the matrix is not symmetric within
/// `1e-8`.
pub fn jacobi_eigenvalues(n: usize, matrix: &[f64]) -> Vec<f64> {
    assert_eq!(matrix.len(), n * n, "matrix size mismatch");
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (matrix[i * n + j] - matrix[j * n + i]).abs() < 1e-8,
                "jacobi requires a symmetric matrix"
            );
        }
    }
    let mut a = matrix.to_vec();
    // Cyclic Jacobi sweeps until off-diagonal mass is negligible.
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i * n + j] * a[i * n + j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Standard stable rotation computation.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply rotation G(p, q, theta) on both sides.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eig: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eig.sort_by(|x, y| y.abs().partial_cmp(&x.abs()).expect("finite eigenvalues"));
    eig
}

/// Estimates `|lambda_2(W)|` for a doubly-stochastic `W`.
///
/// For symmetric `W` the Jacobi solver is used (exact); otherwise the
/// deflated matrix `B = W - J/n` (which removes the known eigenpair
/// `lambda_1 = 1`, eigenvector `1`) is powered and the geometric-mean
/// growth rate of `||B^k x||` over the tail iterations estimates the
/// spectral radius of `B`, i.e. `|lambda_2(W)|`. The growth-rate estimator
/// is robust to complex-conjugate dominant pairs, which make per-step
/// Rayleigh quotients oscillate.
///
/// # Panics
///
/// Panics if `w` is not doubly stochastic within `1e-6` (the spectral-gap
/// notion in the paper is defined for doubly-stochastic matrices).
pub fn second_eigenvalue_magnitude(w: &WeightMatrix) -> f64 {
    assert!(
        w.is_doubly_stochastic(1e-6),
        "spectral gap is defined for doubly-stochastic W"
    );
    let n = w.len();
    if n == 1 {
        return 0.0;
    }
    if w.is_symmetric(1e-10) {
        let eig = jacobi_eigenvalues(n, w.as_slice());
        return eig[1].abs();
    }
    power_growth_rate(w)
}

/// Growth-rate power method on the deflated matrix; see
/// [`second_eigenvalue_magnitude`].
fn power_growth_rate(w: &WeightMatrix) -> f64 {
    let n = w.len();
    let mut rng = Xoshiro256::seed_from_u64(0x5EED_51EC);
    let mut x: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
    center(&mut x);
    normalize(&mut x);
    let warmup = 300;
    let window = 700;
    let mut log_sum = 0.0;
    let mut counted = 0usize;
    let mut y = vec![0.0; n];
    for it in 0..(warmup + window) {
        // y = W^T x (the averaging step applies W column-wise), then deflate
        // by recentring: subtracting the mean projects out the all-ones
        // component, equivalent to multiplying by (I - J/n).
        for (j, yj) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in 0..n {
                acc += w.get(i, j) * x[i];
            }
            *yj = acc;
        }
        center(&mut y);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm < 1e-280 {
            // B^k x vanished: lambda_2 is numerically zero.
            return 0.0;
        }
        if it >= warmup {
            log_sum += norm.ln();
            counted += 1;
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / norm;
        }
    }
    (log_sum / counted as f64).exp().min(1.0)
}

fn center(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

/// The spectral gap `1 - |lambda_2(W)|` of a doubly-stochastic matrix.
///
/// The bigger the gap, the faster information spreads over the graph.
///
/// # Panics
///
/// Panics if `w` is not doubly stochastic within `1e-6`.
///
/// # Examples
///
/// ```
/// use hop_graph::{spectral, Topology, WeightMatrix};
/// let w = WeightMatrix::uniform(&Topology::complete(4));
/// assert!((spectral::spectral_gap(&w) - 1.0).abs() < 1e-9);
/// ```
pub fn spectral_gap(w: &WeightMatrix) -> f64 {
    1.0 - second_eigenvalue_magnitude(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Circulant closed form for a uniform-weight ring: eigenvalues are
    /// `(1 + 2 cos(2 pi k / n)) / 3`.
    fn ring_lambda2(n: usize) -> f64 {
        (1..n)
            .map(|k| {
                ((1.0 + 2.0 * (2.0 * std::f64::consts::PI * k as f64 / n as f64).cos()) / 3.0).abs()
            })
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let eig = jacobi_eigenvalues(3, &[3.0, 0.0, 0.0, 0.0, -5.0, 0.0, 0.0, 0.0, 1.0]);
        assert_eq!(eig, vec![-5.0, 3.0, 1.0]);
    }

    #[test]
    fn jacobi_two_by_two() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let eig = jacobi_eigenvalues(2, &[2.0, 1.0, 1.0, 2.0]);
        assert!((eig[0] - 3.0).abs() < 1e-9);
        assert!((eig[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ring_matches_circulant_closed_form() {
        for n in [4usize, 6, 8, 12] {
            let w = WeightMatrix::uniform(&Topology::ring(n));
            let got = second_eigenvalue_magnitude(&w);
            let want = ring_lambda2(n);
            assert!((got - want).abs() < 1e-8, "n={n}: got {got}, want {want}");
        }
    }

    #[test]
    fn ring_based_8_closed_form() {
        // W = (I + P + P^-1 + P^4)/4; |lambda_2| = 1/2 at k = 2.
        let w = WeightMatrix::uniform(&Topology::ring_based(8));
        let got = second_eigenvalue_magnitude(&w);
        assert!((got - 0.5).abs() < 1e-8, "got {got}");
        assert!((spectral_gap(&w) - 0.5).abs() < 1e-8);
    }

    #[test]
    fn hypercube_closed_form() {
        // Uniform W on a d-cube with self-loops: eigenvalues
        // (1 + d - 2k) / (d + 1), so |lambda_2| = (d - 1) / (d + 1) and
        // the gap is 2 / (d + 1).
        for d in [2u32, 3, 4] {
            let w = WeightMatrix::uniform(&Topology::hypercube(d));
            let got = spectral_gap(&w);
            let want = 2.0 / (d as f64 + 1.0);
            assert!((got - want).abs() < 1e-8, "d={d}: {got} vs {want}");
        }
    }

    #[test]
    fn torus_closed_form() {
        // Uniform W on an r x c torus: eigenvalues
        // (1 + 2cos(2pi a/r) + 2cos(2pi b/c)) / 5.
        let (r, c) = (4usize, 4usize);
        let w = WeightMatrix::uniform(&Topology::torus(r, c));
        let mut want = 0.0f64;
        for a in 0..r {
            for b in 0..c {
                if a == 0 && b == 0 {
                    continue;
                }
                let lam = (1.0
                    + 2.0 * (std::f64::consts::TAU * a as f64 / r as f64).cos()
                    + 2.0 * (std::f64::consts::TAU * b as f64 / c as f64).cos())
                    / 5.0;
                want = want.max(lam.abs());
            }
        }
        let got = second_eigenvalue_magnitude(&w);
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }

    #[test]
    fn complete_graph_gap_is_one() {
        let w = WeightMatrix::uniform(&Topology::complete(6));
        assert!(second_eigenvalue_magnitude(&w) < 1e-9);
    }

    #[test]
    fn power_method_matches_jacobi_on_symmetric() {
        for t in [
            Topology::ring(8),
            Topology::ring_based(8),
            Topology::double_ring(16),
        ] {
            let w = WeightMatrix::uniform(&t);
            let exact = jacobi_eigenvalues(w.len(), w.as_slice())[1].abs();
            let approx = power_growth_rate(&w);
            assert!((exact - approx).abs() < 1e-3, "{t}: {exact} vs {approx}");
        }
    }

    #[test]
    fn metropolis_hierarchical_gap_is_small() {
        // The Fig. 21 placement-aware graphs have much smaller spectral gaps
        // than the ring-based baseline; check the ordering holds for our
        // constructions too.
        let baseline = WeightMatrix::uniform(&Topology::ring_based(8));
        let t2 = Topology::hierarchical(&[3, 3, 2], 1);
        let w2 = WeightMatrix::metropolis(&t2);
        assert!(spectral_gap(&w2) > 0.0);
        assert!(spectral_gap(&w2) < spectral_gap(&baseline));
    }

    #[test]
    fn sparser_graphs_have_smaller_gaps() {
        let ring = spectral_gap(&WeightMatrix::uniform(&Topology::ring(16)));
        let ring_based = spectral_gap(&WeightMatrix::uniform(&Topology::ring_based(16)));
        let complete = spectral_gap(&WeightMatrix::uniform(&Topology::complete(16)));
        assert!(ring < ring_based && ring_based < complete);
    }

    #[test]
    #[should_panic(expected = "doubly-stochastic")]
    fn gap_requires_doubly_stochastic() {
        let w = WeightMatrix::uniform(&Topology::star(5));
        let _ = spectral_gap(&w);
    }

    #[test]
    fn single_node_gap() {
        let w = WeightMatrix::uniform(&Topology::from_edges(1, &[]));
        assert_eq!(second_eigenvalue_magnitude(&w), 0.0);
    }
}
