//! Weighted adjacency matrices for decentralized averaging.
//!
//! §3.1: decentralized training converges when `G` is connected and `W` is
//! doubly stochastic. Eq. (1) gives each in-neighbor's update the same
//! influence `1/|Nin(j)|`; Metropolis–Hastings weights are an alternative
//! that is doubly stochastic on any undirected graph, even irregular ones.

use crate::topology::Topology;

/// A dense `n x n` weighted adjacency matrix.
///
/// Entry `(i, j)` (row `i`, column `j`) is the influence of worker `i`'s
/// update on worker `j`, matching the paper's `W_ij` with aggregated update
/// `sum_i W_ij * u_i` at worker `j` — columns describe a receiver.
///
/// # Examples
///
/// ```
/// use hop_graph::{Topology, WeightMatrix};
/// let w = WeightMatrix::uniform(&Topology::ring(4));
/// assert!((w.get(0, 1) - 1.0 / 3.0).abs() < 1e-12);
/// assert!(w.is_doubly_stochastic(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix {
    n: usize,
    /// Row-major `w[i * n + j] = W_ij`.
    w: Vec<f64>,
}

impl WeightMatrix {
    /// Uniform influence weights, Eq. (1): `W_ij = 1/|Nin(j)|` for
    /// `i ∈ Nin(j)` (which includes the self-loop), 0 otherwise.
    ///
    /// Columns always sum to 1; rows sum to 1 iff the graph is regular
    /// enough (true for all the paper's Fig. 11 graphs).
    pub fn uniform(topology: &Topology) -> Self {
        let n = topology.len();
        let mut w = vec![0.0; n * n];
        for j in 0..n {
            let nin = topology.in_neighbors(j);
            let share = 1.0 / nin.len() as f64;
            for &i in nin {
                w[i * n + j] = share;
            }
        }
        Self { n, w }
    }

    /// Metropolis–Hastings weights: doubly stochastic on any undirected
    /// graph. For an external edge `{i, j}`:
    /// `W_ij = 1 / max(|Nin(i)|, |Nin(j)|)`, and the self-loop absorbs the
    /// remainder.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not symmetric (every external edge must
    /// exist in both directions).
    pub fn metropolis(topology: &Topology) -> Self {
        let n = topology.len();
        for &(u, v) in topology.external_edges() {
            assert!(
                topology.has_edge(v, u),
                "metropolis weights need a symmetric topology; missing ({v},{u})"
            );
        }
        let mut w = vec![0.0; n * n];
        for i in 0..n {
            let mut self_weight = 1.0;
            for &j in topology.external_out_neighbors(i) {
                let wij = 1.0 / topology.in_degree(i).max(topology.in_degree(j)) as f64;
                w[i * n + j] = wij;
                self_weight -= wij;
            }
            w[i * n + i] = self_weight;
        }
        Self { n, w }
    }

    /// Builds directly from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != n * n`.
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "weight matrix size mismatch");
        Self { n, w: data }
    }

    /// Matrix dimension.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is 0 x 0.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Entry `W_ij`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "weight index out of range");
        self.w[i * self.n + j]
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Sum of row `i`.
    pub fn row_sum(&self, i: usize) -> f64 {
        self.w[i * self.n..(i + 1) * self.n].iter().sum()
    }

    /// Sum of column `j`.
    pub fn col_sum(&self, j: usize) -> f64 {
        (0..self.n).map(|i| self.w[i * self.n + j]).sum()
    }

    /// Whether all row and column sums equal 1 within `tol`.
    pub fn is_doubly_stochastic(&self, tol: f64) -> bool {
        (0..self.n).all(|i| (self.row_sum(i) - 1.0).abs() <= tol)
            && (0..self.n).all(|j| (self.col_sum(j) - 1.0).abs() <= tol)
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Whether all entries are non-negative.
    pub fn is_nonnegative(&self) -> bool {
        self.w.iter().all(|&x| x >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_ring_weights() {
        let w = WeightMatrix::uniform(&Topology::ring(4));
        // |Nin| = 3 everywhere.
        assert!((w.get(0, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((w.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(w.get(2, 0), 0.0);
        assert!(w.is_doubly_stochastic(1e-9));
        assert!(w.is_symmetric(1e-12));
    }

    #[test]
    fn uniform_star_is_column_stochastic_only() {
        let w = WeightMatrix::uniform(&Topology::star(4));
        for j in 0..4 {
            assert!((w.col_sum(j) - 1.0).abs() < 1e-12);
        }
        // Hub row over-weighs: star is irregular so W is not doubly stochastic.
        assert!(!w.is_doubly_stochastic(1e-9));
    }

    #[test]
    fn metropolis_star_is_doubly_stochastic() {
        let w = WeightMatrix::metropolis(&Topology::star(6));
        assert!(w.is_doubly_stochastic(1e-9));
        assert!(w.is_nonnegative());
        assert!(w.is_symmetric(1e-12));
    }

    #[test]
    fn metropolis_hierarchical_is_doubly_stochastic() {
        let t = Topology::hierarchical(&[3, 3, 2], 1);
        let w = WeightMatrix::metropolis(&t);
        assert!(w.is_doubly_stochastic(1e-9));
    }

    #[test]
    fn uniform_regular_graphs_are_doubly_stochastic() {
        for t in [
            Topology::ring(8),
            Topology::ring_based(8),
            Topology::ring_based(16),
            Topology::double_ring(16),
            Topology::complete(5),
        ] {
            let w = WeightMatrix::uniform(&t);
            assert!(w.is_doubly_stochastic(1e-9), "{t}");
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn from_raw_validates() {
        WeightMatrix::from_raw(2, vec![0.0; 3]);
    }

    proptest! {
        #[test]
        fn metropolis_always_doubly_stochastic(seed in 0u64..500, n in 2usize..12, extra in 0usize..8) {
            let mut rng = hop_util::Xoshiro256::seed_from_u64(seed);
            let t = Topology::random_connected(n, extra, &mut rng);
            let w = WeightMatrix::metropolis(&t);
            prop_assert!(w.is_doubly_stochastic(1e-9));
            prop_assert!(w.is_nonnegative());
        }

        #[test]
        fn uniform_always_column_stochastic(seed in 0u64..500, n in 2usize..12, extra in 0usize..8) {
            let mut rng = hop_util::Xoshiro256::seed_from_u64(seed);
            let t = Topology::random_connected(n, extra, &mut rng);
            let w = WeightMatrix::uniform(&t);
            for j in 0..n {
                prop_assert!((w.col_sum(j) - 1.0).abs() < 1e-9);
            }
        }
    }
}
