//! Directed communication topologies with self-loops.
//!
//! Following §3.1 of the paper, every node has a self-loop (`(i, i) ∈ E`):
//! a worker's own update is always available locally. An edge `(i, j)`
//! means worker `i` sends its parameters to worker `j` each iteration.

use hop_util::Xoshiro256;
use std::collections::BTreeSet;
use std::fmt;

/// A directed graph over workers `0..n` with mandatory self-loops.
///
/// Neighbor lists are kept sorted for determinism and stored in CSR
/// (compressed sparse row) form: one flat adjacency array plus `n + 1`
/// offsets per direction, so a 10k-worker topology is a handful of
/// allocations instead of tens of thousands. `in_neighbors`/
/// `out_neighbors` include the node itself (the paper's `Nin`/`Nout`);
/// the `external_*` variants exclude it, which is what actually crosses
/// the network. The external views and the global external edge list are
/// precomputed at construction, so every accessor returns a borrowed
/// slice — the per-event hot paths in `hop-core` never allocate to ask
/// who their neighbors are.
///
/// # Examples
///
/// ```
/// use hop_graph::topology::Topology;
/// let t = Topology::ring(4);
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.in_neighbors(0), &[0, 1, 3]);
/// assert_eq!(t.external_in_neighbors(0), &[1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    /// Flattened sorted in-neighbor lists, including self.
    in_adj: Vec<usize>,
    /// `in_adj` row offsets, length `n + 1`.
    in_off: Vec<usize>,
    /// Flattened sorted out-neighbor lists, including self.
    out_adj: Vec<usize>,
    /// `out_adj` row offsets, length `n + 1`.
    out_off: Vec<usize>,
    /// Flattened sorted in-neighbor lists, excluding self.
    ext_in_adj: Vec<usize>,
    /// `ext_in_adj` row offsets, length `n + 1`.
    ext_in_off: Vec<usize>,
    /// Flattened sorted out-neighbor lists, excluding self.
    ext_out_adj: Vec<usize>,
    /// `ext_out_adj` row offsets, length `n + 1`.
    ext_out_off: Vec<usize>,
    /// All directed edges excluding self-loops, sorted.
    ext_edges: Vec<(usize, usize)>,
}

impl Topology {
    /// Builds a topology from directed edges (self-loops added implicitly).
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "topology must have at least one node");
        let mut in_sets: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut out_sets: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            out_sets[u].insert(v);
            in_sets[v].insert(u);
        }
        Self::from_sorted_sets(n, &in_sets, &out_sets)
    }

    /// Flattens per-node sorted neighbor sets (self-loops already present)
    /// into the CSR arrays, deriving the external views and edge list.
    fn from_sorted_sets(
        n: usize,
        in_sets: &[BTreeSet<usize>],
        out_sets: &[BTreeSet<usize>],
    ) -> Self {
        let total_in: usize = in_sets.iter().map(BTreeSet::len).sum();
        let total_out: usize = out_sets.iter().map(BTreeSet::len).sum();
        let mut t = Self {
            n,
            in_adj: Vec::with_capacity(total_in),
            in_off: Vec::with_capacity(n + 1),
            out_adj: Vec::with_capacity(total_out),
            out_off: Vec::with_capacity(n + 1),
            ext_in_adj: Vec::with_capacity(total_in - n),
            ext_in_off: Vec::with_capacity(n + 1),
            ext_out_adj: Vec::with_capacity(total_out - n),
            ext_out_off: Vec::with_capacity(n + 1),
            ext_edges: Vec::with_capacity(total_out - n),
        };
        t.in_off.push(0);
        t.out_off.push(0);
        t.ext_in_off.push(0);
        t.ext_out_off.push(0);
        for u in 0..n {
            // BTreeSet iteration is ascending, so each CSR row is sorted
            // and (with u ascending) `ext_edges` is globally sorted.
            for &v in &in_sets[u] {
                t.in_adj.push(v);
                if v != u {
                    t.ext_in_adj.push(v);
                }
            }
            for &v in &out_sets[u] {
                t.out_adj.push(v);
                if v != u {
                    t.ext_out_adj.push(v);
                    t.ext_edges.push((u, v));
                }
            }
            t.in_off.push(t.in_adj.len());
            t.out_off.push(t.out_adj.len());
            t.ext_in_off.push(t.ext_in_adj.len());
            t.ext_out_off.push(t.ext_out_adj.len());
        }
        t
    }

    /// Builds from *undirected* edges: each pair becomes two directed edges.
    pub fn from_undirected_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            directed.push((u, v));
            directed.push((v, u));
        }
        Self::from_edges(n, &directed)
    }

    /// Bidirectional ring: node `i` connects to `i±1 (mod n)` (Fig. 11a).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Ring-based graph (Fig. 11b): ring plus a chord from every node to the
    /// most distant node (`i + n/2 mod n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is odd (the "most distant node" is ambiguous).
    pub fn ring_based(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_multiple_of(2),
            "ring-based graph needs even n >= 4"
        );
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2));
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Double-ring graph (Fig. 11c): two ring-based graphs of `n/2` nodes
    /// connected node-to-node.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 8` and `n/2` is even.
    pub fn double_ring(n: usize) -> Self {
        assert!(
            n >= 8 && n.is_multiple_of(2) && (n / 2).is_multiple_of(2),
            "double-ring needs n >= 8 with n/2 even"
        );
        let half = n / 2;
        let mut edges = Vec::new();
        for ring_start in [0, half] {
            for i in 0..half {
                edges.push((ring_start + i, ring_start + (i + 1) % half));
            }
            for i in 0..half / 2 {
                edges.push((ring_start + i, ring_start + i + half / 2));
            }
        }
        for i in 0..half {
            edges.push((i, i + half));
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Complete graph: the communication pattern of All-Reduce.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "complete graph needs at least one node");
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Star graph with node 0 as the hub (the PS communication pattern).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Path (line) graph `0 - 1 - ... - n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn line(n: usize) -> Self {
        assert!(n >= 2, "line needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Placement-aware hierarchical graph (Fig. 21 settings 2/3): an
    /// all-reduce (complete) graph within each machine, and a ring between
    /// machines. `machine_sizes[m]` is the number of workers on machine `m`;
    /// workers are numbered consecutively by machine.
    ///
    /// `bridges_per_machine` controls how many workers of each machine join
    /// the inter-machine ring: `1` reproduces our "setting 2" (a single
    /// representative per machine), `usize::MAX` (or any value >= machine
    /// size) reproduces "setting 3" (every worker is bridged round-robin to
    /// the next machine).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 machines or any machine is empty.
    pub fn hierarchical(machine_sizes: &[usize], bridges_per_machine: usize) -> Self {
        assert!(machine_sizes.len() >= 2, "need at least 2 machines");
        assert!(
            machine_sizes.iter().all(|&s| s > 0),
            "machines must be non-empty"
        );
        assert!(bridges_per_machine >= 1, "need at least one bridge");
        let n: usize = machine_sizes.iter().sum();
        let mut starts = Vec::with_capacity(machine_sizes.len());
        let mut acc = 0;
        for &s in machine_sizes {
            starts.push(acc);
            acc += s;
        }
        let mut edges = Vec::new();
        // All-reduce within each machine.
        for (m, &size) in machine_sizes.iter().enumerate() {
            let s = starts[m];
            for a in 0..size {
                for b in (a + 1)..size {
                    edges.push((s + a, s + b));
                }
            }
        }
        // Ring between machines: bridge worker k of machine m connects to
        // bridge worker k of machine m+1 (wrapping in both dimensions).
        let n_machines = machine_sizes.len();
        for m in 0..n_machines {
            let next = (m + 1) % n_machines;
            let k_here = bridges_per_machine.min(machine_sizes[m]);
            for k in 0..k_here {
                let from = starts[m] + k;
                let to = starts[next] + (k % machine_sizes[next]);
                if from != to {
                    edges.push((from, to));
                }
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// 2-D torus (wrap-around grid) of `rows x cols` workers: each node
    /// connects to its four grid neighbors. A common datacenter-friendly
    /// topology with degree 4 and diameter `(rows + cols) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is < 3 (smaller wraps create duplicate
    /// edges).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                edges.push((idx(r, c), idx(r, (c + 1) % cols)));
                edges.push((idx(r, c), idx((r + 1) % rows, c)));
            }
        }
        Self::from_undirected_edges(rows * cols, &edges)
    }

    /// `d`-dimensional hypercube over `2^d` workers: nodes differing in
    /// one bit are connected. Degree `d`, diameter `d` — a dense,
    /// fast-mixing topology.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dim <= 16`.
    pub fn hypercube(dim: u32) -> Self {
        assert!((1..=16).contains(&dim), "hypercube dimension out of range");
        let n = 1usize << dim;
        let mut edges = Vec::new();
        for v in 0..n {
            for bit in 0..dim {
                let u = v ^ (1 << bit);
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Random `degree`-regular expander over `n` nodes: `degree / 2`
    /// independent random Hamiltonian cycles superimposed. Each cycle
    /// visits every node, so the union is connected by construction, and
    /// superimposed random cycles are expanders with high probability —
    /// logarithmic diameter at constant degree, which is what keeps
    /// gossip rounds cheap at 10k+ workers where a ring's diameter
    /// (n/2) would dominate convergence.
    ///
    /// Distinct cycles can occasionally share an edge (the duplicate is
    /// deduped), so external degrees are bounded by `degree` rather than
    /// exactly equal to it; every node keeps degree >= 2 from its own
    /// cycle edges. Deterministic in `(n, degree, seed)`.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 3` and `degree` is even with `2 <= degree < n`.
    pub fn expander(n: usize, degree: usize, seed: u64) -> Self {
        assert!(n >= 3, "expander needs at least 3 nodes");
        assert!(
            degree >= 2 && degree < n && degree.is_multiple_of(2),
            "expander degree must be even with 2 <= degree < n, got {degree} for n={n}"
        );
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(n * degree / 2);
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..degree / 2 {
            rng.shuffle(&mut order);
            for i in 0..n {
                edges.push((order[i], order[(i + 1) % n]));
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Random connected undirected graph: a random spanning tree plus
    /// `extra_edges` random chords. Used by property tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_connected(n: usize, extra_edges: usize, rng: &mut Xoshiro256) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut edges = Vec::new();
        for i in 1..n {
            let parent = order[rng.index(i)];
            edges.push((order[i], parent));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra_edges && guard < extra_edges * 20 + 100 {
            guard += 1;
            if n < 2 {
                break;
            }
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && !edges.contains(&(u, v)) && !edges.contains(&(v, u)) {
                edges.push((u, v));
                added += 1;
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology is empty (never true: constructors require n>0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-neighbors of `i`, including `i` itself (the paper's `Nin(i)`).
    pub fn in_neighbors(&self, i: usize) -> &[usize] {
        &self.in_adj[self.in_off[i]..self.in_off[i + 1]]
    }

    /// Out-neighbors of `i`, including `i` itself (the paper's `Nout(i)`).
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.out_adj[self.out_off[i]..self.out_off[i + 1]]
    }

    /// In-neighbors excluding the self-loop: senders whose updates arrive
    /// over the network. Precomputed — a borrow, not an allocation.
    pub fn external_in_neighbors(&self, i: usize) -> &[usize] {
        &self.ext_in_adj[self.ext_in_off[i]..self.ext_in_off[i + 1]]
    }

    /// Out-neighbors excluding the self-loop: receivers of network sends.
    /// Precomputed — a borrow, not an allocation.
    pub fn external_out_neighbors(&self, i: usize) -> &[usize] {
        &self.ext_out_adj[self.ext_out_off[i]..self.ext_out_off[i + 1]]
    }

    /// `|Nin(i)|`, including the self-loop.
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_off[i + 1] - self.in_off[i]
    }

    /// `|Nout(i)|`, including the self-loop.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out_off[i + 1] - self.out_off[i]
    }

    /// Whether the directed edge `(u, v)` exists (self-loops always do).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// All directed edges excluding self-loops, sorted. Precomputed — a
    /// borrow, not an allocation.
    pub fn external_edges(&self) -> &[(usize, usize)] {
        &self.ext_edges
    }

    /// Depth-first reachability of every node from node 0 along one
    /// direction of the CSR adjacency.
    fn all_reachable(&self, adj: &[usize], off: &[usize]) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(u) = stack.pop() {
            for &v in &adj[off[u]..off[u + 1]] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Whether every ordered pair of nodes is connected by a directed path.
    pub fn is_strongly_connected(&self) -> bool {
        self.all_reachable(&self.out_adj, &self.out_off)
            && self.all_reachable(&self.in_adj, &self.in_off)
    }

    /// Whether the *external* graph (ignoring self-loops, treating edges as
    /// undirected) is bipartite. AD-PSGD's deadlock-free schedule requires
    /// this (§5).
    pub fn is_bipartite(&self) -> bool {
        let mut color = vec![-1i8; self.n];
        for start in 0..self.n {
            if color[start] != -1 {
                continue;
            }
            color[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                let nbrs = self
                    .external_out_neighbors(u)
                    .iter()
                    .chain(self.external_in_neighbors(u));
                for &v in nbrs {
                    if color[v] == -1 {
                        color[v] = 1 - color[u];
                        queue.push_back(v);
                    } else if color[v] == color[u] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology(n={}, external_edges={})",
            self.n,
            self.ext_edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(6);
        for i in 0..6 {
            assert_eq!(t.in_degree(i), 3); // self + 2 ring neighbors
            assert!(t.has_edge(i, (i + 1) % 6));
            assert!(t.has_edge((i + 1) % 6, i));
            assert!(t.has_edge(i, i)); // self loop
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn ring_based_adds_chords() {
        let t = Topology::ring_based(8);
        for i in 0..8 {
            assert_eq!(t.in_degree(i), 4); // self + 2 ring + 1 chord
            assert!(t.has_edge(i, (i + 4) % 8));
        }
    }

    #[test]
    fn double_ring_structure() {
        let t = Topology::double_ring(16);
        assert_eq!(t.len(), 16);
        // Each node: self + 2 ring + 1 chord (within its 8-ring) + 1 bridge.
        for i in 0..16 {
            assert_eq!(t.in_degree(i), 5, "node {i}");
        }
        // Bridge edges connect i <-> i+8.
        for i in 0..8 {
            assert!(t.has_edge(i, i + 8));
            assert!(t.has_edge(i + 8, i));
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn complete_graph_degrees() {
        let t = Topology::complete(5);
        for i in 0..5 {
            assert_eq!(t.in_degree(i), 5);
            assert_eq!(t.external_in_neighbors(i).len(), 4);
        }
    }

    #[test]
    fn star_center_and_leaves() {
        let t = Topology::star(5);
        assert_eq!(t.in_degree(0), 5);
        for i in 1..5 {
            assert_eq!(t.in_degree(i), 2);
        }
    }

    #[test]
    fn hierarchical_single_bridge() {
        // 8 workers on machines of 3/3/2 as in Fig. 21.
        let t = Topology::hierarchical(&[3, 3, 2], 1);
        assert_eq!(t.len(), 8);
        assert!(t.is_strongly_connected());
        // Within machine 0 (nodes 0..3) all-reduce:
        assert!(t.has_edge(0, 1) && t.has_edge(1, 2) && t.has_edge(0, 2));
        // Bridges: 0<->3, 3<->6, 6<->0.
        assert!(t.has_edge(0, 3) && t.has_edge(3, 6) && t.has_edge(6, 0));
        // Non-bridge node 1 has no inter-machine edge.
        assert!(!t.has_edge(1, 3) && !t.has_edge(1, 6));
    }

    #[test]
    fn hierarchical_full_bridge() {
        let t = Topology::hierarchical(&[3, 3, 2], usize::MAX);
        assert!(t.is_strongly_connected());
        // Every worker of machine 0 bridges to machine 1.
        assert!(t.has_edge(0, 3) && t.has_edge(1, 4) && t.has_edge(2, 5));
        // Machine 2 has 2 workers; worker 2 of machine 1 wraps to worker 0.
        assert!(t.has_edge(5, 6));
    }

    #[test]
    fn torus_structure() {
        let t = Topology::torus(3, 4);
        assert_eq!(t.len(), 12);
        for v in 0..12 {
            assert_eq!(t.in_degree(v), 5, "node {v}: self + 4 grid neighbors");
        }
        assert!(t.is_strongly_connected());
        // Wrap edges exist.
        assert!(t.has_edge(0, 3)); // row 0: col 0 <-> col 3
        assert!(t.has_edge(0, 8)); // col 0: row 0 <-> row 2
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::hypercube(3);
        assert_eq!(t.len(), 8);
        for v in 0..8 {
            assert_eq!(t.in_degree(v), 4, "self + 3 bit-flip neighbors");
        }
        assert!(t.is_strongly_connected());
        assert!(t.is_bipartite()); // hypercubes are bipartite by parity
        assert!(t.has_edge(0b000, 0b100));
        assert!(!t.has_edge(0b000, 0b110));
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for n in [1usize, 2, 5, 9, 16] {
            let t = Topology::random_connected(n, 3, &mut rng);
            assert!(t.is_strongly_connected(), "n={n}");
        }
    }

    #[test]
    fn even_ring_is_bipartite_odd_is_not() {
        assert!(Topology::ring(8).is_bipartite());
        assert!(!Topology::ring(5).is_bipartite());
        assert!(!Topology::complete(3).is_bipartite());
    }

    #[test]
    fn neighbor_lists_include_self_and_are_sorted() {
        let t = Topology::ring_based(8);
        for i in 0..8 {
            let nbrs = t.in_neighbors(i);
            assert!(nbrs.contains(&i));
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, nbrs);
        }
    }

    #[test]
    fn from_edges_dedups() {
        let t = Topology::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(t.out_neighbors(0), &[0, 1]);
        assert_eq!(t.external_edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn external_edges_are_sorted_and_consistent_with_neighbors() {
        let t = Topology::ring_based(8);
        let edges = t.external_edges();
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
        for &(u, v) in edges {
            assert_ne!(u, v);
            assert!(t.external_out_neighbors(u).contains(&v));
            assert!(t.external_in_neighbors(v).contains(&u));
        }
        let total: usize = (0..8).map(|i| t.external_out_neighbors(i).len()).sum();
        assert_eq!(edges.len(), total);
    }

    #[test]
    fn expander_is_connected_and_degree_bounded() {
        let t = Topology::expander(50, 4, 11);
        assert_eq!(t.len(), 50);
        assert!(t.is_strongly_connected());
        for i in 0..50 {
            let ext = t.external_in_neighbors(i).len();
            // Two Hamiltonian cycles: 2..=4 external neighbors after dedup.
            assert!((2..=4).contains(&ext), "node {i}: degree {ext}");
            assert_eq!(t.in_neighbors(i), t.out_neighbors(i), "undirected");
        }
    }

    #[test]
    fn expander_is_deterministic_in_seed() {
        let a = Topology::expander(40, 6, 3);
        let b = Topology::expander(40, 6, 3);
        let c = Topology::expander(40, 6, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "degree must be even")]
    fn expander_rejects_odd_degree() {
        Topology::expander(10, 3, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_range() {
        Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn line_is_not_strongly_connected_when_directed_only() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!t.is_strongly_connected());
    }

    #[test]
    fn display_mentions_size() {
        let t = Topology::ring(4);
        let s = format!("{t}");
        assert!(s.contains("n=4"));
    }
}
