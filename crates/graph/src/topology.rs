//! Directed communication topologies with self-loops.
//!
//! Following §3.1 of the paper, every node has a self-loop (`(i, i) ∈ E`):
//! a worker's own update is always available locally. An edge `(i, j)`
//! means worker `i` sends its parameters to worker `j` each iteration.

use hop_util::Xoshiro256;
use std::collections::BTreeSet;
use std::fmt;

/// A directed graph over workers `0..n` with mandatory self-loops.
///
/// Neighbor lists are kept sorted for determinism. `in_neighbors`/
/// `out_neighbors` include the node itself (the paper's `Nin`/`Nout`);
/// the `external_*` variants exclude it, which is what actually crosses
/// the network.
///
/// # Examples
///
/// ```
/// use hop_graph::topology::Topology;
/// let t = Topology::ring(4);
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.in_neighbors(0), &[0, 1, 3]);
/// assert_eq!(t.external_in_neighbors(0), &[1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    n: usize,
    /// Sorted in-neighbor lists, including self.
    in_nbrs: Vec<Vec<usize>>,
    /// Sorted out-neighbor lists, including self.
    out_nbrs: Vec<Vec<usize>>,
}

impl Topology {
    /// Builds a topology from directed edges (self-loops added implicitly).
    ///
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        assert!(n > 0, "topology must have at least one node");
        let mut in_sets: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        let mut out_sets: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            out_sets[u].insert(v);
            in_sets[v].insert(u);
        }
        Self {
            n,
            in_nbrs: in_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            out_nbrs: out_sets
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
        }
    }

    /// Builds from *undirected* edges: each pair becomes two directed edges.
    pub fn from_undirected_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut directed = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            directed.push((u, v));
            directed.push((v, u));
        }
        Self::from_edges(n, &directed)
    }

    /// Bidirectional ring: node `i` connects to `i±1 (mod n)` (Fig. 11a).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2, "ring needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Ring-based graph (Fig. 11b): ring plus a chord from every node to the
    /// most distant node (`i + n/2 mod n`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `n` is odd (the "most distant node" is ambiguous).
    pub fn ring_based(n: usize) -> Self {
        assert!(
            n >= 4 && n.is_multiple_of(2),
            "ring-based graph needs even n >= 4"
        );
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        for i in 0..n / 2 {
            edges.push((i, i + n / 2));
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Double-ring graph (Fig. 11c): two ring-based graphs of `n/2` nodes
    /// connected node-to-node.
    ///
    /// # Panics
    ///
    /// Panics unless `n >= 8` and `n/2` is even.
    pub fn double_ring(n: usize) -> Self {
        assert!(
            n >= 8 && n.is_multiple_of(2) && (n / 2).is_multiple_of(2),
            "double-ring needs n >= 8 with n/2 even"
        );
        let half = n / 2;
        let mut edges = Vec::new();
        for ring_start in [0, half] {
            for i in 0..half {
                edges.push((ring_start + i, ring_start + (i + 1) % half));
            }
            for i in 0..half / 2 {
                edges.push((ring_start + i, ring_start + i + half / 2));
            }
        }
        for i in 0..half {
            edges.push((i, i + half));
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Complete graph: the communication pattern of All-Reduce.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "complete graph needs at least one node");
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Star graph with node 0 as the hub (the PS communication pattern).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2, "star needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Path (line) graph `0 - 1 - ... - n-1`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn line(n: usize) -> Self {
        assert!(n >= 2, "line needs at least 2 nodes");
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Self::from_undirected_edges(n, &edges)
    }

    /// Placement-aware hierarchical graph (Fig. 21 settings 2/3): an
    /// all-reduce (complete) graph within each machine, and a ring between
    /// machines. `machine_sizes[m]` is the number of workers on machine `m`;
    /// workers are numbered consecutively by machine.
    ///
    /// `bridges_per_machine` controls how many workers of each machine join
    /// the inter-machine ring: `1` reproduces our "setting 2" (a single
    /// representative per machine), `usize::MAX` (or any value >= machine
    /// size) reproduces "setting 3" (every worker is bridged round-robin to
    /// the next machine).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 machines or any machine is empty.
    pub fn hierarchical(machine_sizes: &[usize], bridges_per_machine: usize) -> Self {
        assert!(machine_sizes.len() >= 2, "need at least 2 machines");
        assert!(
            machine_sizes.iter().all(|&s| s > 0),
            "machines must be non-empty"
        );
        assert!(bridges_per_machine >= 1, "need at least one bridge");
        let n: usize = machine_sizes.iter().sum();
        let mut starts = Vec::with_capacity(machine_sizes.len());
        let mut acc = 0;
        for &s in machine_sizes {
            starts.push(acc);
            acc += s;
        }
        let mut edges = Vec::new();
        // All-reduce within each machine.
        for (m, &size) in machine_sizes.iter().enumerate() {
            let s = starts[m];
            for a in 0..size {
                for b in (a + 1)..size {
                    edges.push((s + a, s + b));
                }
            }
        }
        // Ring between machines: bridge worker k of machine m connects to
        // bridge worker k of machine m+1 (wrapping in both dimensions).
        let n_machines = machine_sizes.len();
        for m in 0..n_machines {
            let next = (m + 1) % n_machines;
            let k_here = bridges_per_machine.min(machine_sizes[m]);
            for k in 0..k_here {
                let from = starts[m] + k;
                let to = starts[next] + (k % machine_sizes[next]);
                if from != to {
                    edges.push((from, to));
                }
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// 2-D torus (wrap-around grid) of `rows x cols` workers: each node
    /// connects to its four grid neighbors. A common datacenter-friendly
    /// topology with degree 4 and diameter `(rows + cols) / 2`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is < 3 (smaller wraps create duplicate
    /// edges).
    pub fn torus(rows: usize, cols: usize) -> Self {
        assert!(rows >= 3 && cols >= 3, "torus needs dimensions >= 3");
        let idx = |r: usize, c: usize| r * cols + c;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                edges.push((idx(r, c), idx(r, (c + 1) % cols)));
                edges.push((idx(r, c), idx((r + 1) % rows, c)));
            }
        }
        Self::from_undirected_edges(rows * cols, &edges)
    }

    /// `d`-dimensional hypercube over `2^d` workers: nodes differing in
    /// one bit are connected. Degree `d`, diameter `d` — a dense,
    /// fast-mixing topology.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= dim <= 16`.
    pub fn hypercube(dim: u32) -> Self {
        assert!((1..=16).contains(&dim), "hypercube dimension out of range");
        let n = 1usize << dim;
        let mut edges = Vec::new();
        for v in 0..n {
            for bit in 0..dim {
                let u = v ^ (1 << bit);
                if v < u {
                    edges.push((v, u));
                }
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Random connected undirected graph: a random spanning tree plus
    /// `extra_edges` random chords. Used by property tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_connected(n: usize, extra_edges: usize, rng: &mut Xoshiro256) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut edges = Vec::new();
        for i in 1..n {
            let parent = order[rng.index(i)];
            edges.push((order[i], parent));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < extra_edges && guard < extra_edges * 20 + 100 {
            guard += 1;
            if n < 2 {
                break;
            }
            let u = rng.index(n);
            let v = rng.index(n);
            if u != v && !edges.contains(&(u, v)) && !edges.contains(&(v, u)) {
                edges.push((u, v));
                added += 1;
            }
        }
        Self::from_undirected_edges(n, &edges)
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology is empty (never true: constructors require n>0).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-neighbors of `i`, including `i` itself (the paper's `Nin(i)`).
    pub fn in_neighbors(&self, i: usize) -> &[usize] {
        &self.in_nbrs[i]
    }

    /// Out-neighbors of `i`, including `i` itself (the paper's `Nout(i)`).
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.out_nbrs[i]
    }

    /// In-neighbors excluding the self-loop: senders whose updates arrive
    /// over the network.
    pub fn external_in_neighbors(&self, i: usize) -> Vec<usize> {
        self.in_nbrs[i]
            .iter()
            .copied()
            .filter(|&j| j != i)
            .collect()
    }

    /// Out-neighbors excluding the self-loop: receivers of network sends.
    pub fn external_out_neighbors(&self, i: usize) -> Vec<usize> {
        self.out_nbrs[i]
            .iter()
            .copied()
            .filter(|&j| j != i)
            .collect()
    }

    /// `|Nin(i)|`, including the self-loop.
    pub fn in_degree(&self, i: usize) -> usize {
        self.in_nbrs[i].len()
    }

    /// `|Nout(i)|`, including the self-loop.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out_nbrs[i].len()
    }

    /// Whether the directed edge `(u, v)` exists (self-loops always do).
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_nbrs[u].binary_search(&v).is_ok()
    }

    /// All directed edges excluding self-loops, sorted.
    pub fn external_edges(&self) -> Vec<(usize, usize)> {
        let mut edges = Vec::new();
        for u in 0..self.n {
            for &v in &self.out_nbrs[u] {
                if u != v {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    /// Whether every ordered pair of nodes is connected by a directed path.
    pub fn is_strongly_connected(&self) -> bool {
        let reach = |nbrs: &Vec<Vec<usize>>| {
            let mut seen = vec![false; self.n];
            let mut stack = vec![0usize];
            seen[0] = true;
            while let Some(u) = stack.pop() {
                for &v in &nbrs[u] {
                    if !seen[v] {
                        seen[v] = true;
                        stack.push(v);
                    }
                }
            }
            seen.into_iter().all(|s| s)
        };
        reach(&self.out_nbrs) && reach(&self.in_nbrs)
    }

    /// Whether the *external* graph (ignoring self-loops, treating edges as
    /// undirected) is bipartite. AD-PSGD's deadlock-free schedule requires
    /// this (§5).
    pub fn is_bipartite(&self) -> bool {
        let mut color = vec![-1i8; self.n];
        for start in 0..self.n {
            if color[start] != -1 {
                continue;
            }
            color[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                let nbrs: Vec<usize> = self.out_nbrs[u]
                    .iter()
                    .chain(self.in_nbrs[u].iter())
                    .copied()
                    .filter(|&v| v != u)
                    .collect();
                for v in nbrs {
                    if color[v] == -1 {
                        color[v] = 1 - color[u];
                        queue.push_back(v);
                    } else if color[v] == color[u] {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Topology(n={}, external_edges={})",
            self.n,
            self.external_edges().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let t = Topology::ring(6);
        for i in 0..6 {
            assert_eq!(t.in_degree(i), 3); // self + 2 ring neighbors
            assert!(t.has_edge(i, (i + 1) % 6));
            assert!(t.has_edge((i + 1) % 6, i));
            assert!(t.has_edge(i, i)); // self loop
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn ring_based_adds_chords() {
        let t = Topology::ring_based(8);
        for i in 0..8 {
            assert_eq!(t.in_degree(i), 4); // self + 2 ring + 1 chord
            assert!(t.has_edge(i, (i + 4) % 8));
        }
    }

    #[test]
    fn double_ring_structure() {
        let t = Topology::double_ring(16);
        assert_eq!(t.len(), 16);
        // Each node: self + 2 ring + 1 chord (within its 8-ring) + 1 bridge.
        for i in 0..16 {
            assert_eq!(t.in_degree(i), 5, "node {i}");
        }
        // Bridge edges connect i <-> i+8.
        for i in 0..8 {
            assert!(t.has_edge(i, i + 8));
            assert!(t.has_edge(i + 8, i));
        }
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn complete_graph_degrees() {
        let t = Topology::complete(5);
        for i in 0..5 {
            assert_eq!(t.in_degree(i), 5);
            assert_eq!(t.external_in_neighbors(i).len(), 4);
        }
    }

    #[test]
    fn star_center_and_leaves() {
        let t = Topology::star(5);
        assert_eq!(t.in_degree(0), 5);
        for i in 1..5 {
            assert_eq!(t.in_degree(i), 2);
        }
    }

    #[test]
    fn hierarchical_single_bridge() {
        // 8 workers on machines of 3/3/2 as in Fig. 21.
        let t = Topology::hierarchical(&[3, 3, 2], 1);
        assert_eq!(t.len(), 8);
        assert!(t.is_strongly_connected());
        // Within machine 0 (nodes 0..3) all-reduce:
        assert!(t.has_edge(0, 1) && t.has_edge(1, 2) && t.has_edge(0, 2));
        // Bridges: 0<->3, 3<->6, 6<->0.
        assert!(t.has_edge(0, 3) && t.has_edge(3, 6) && t.has_edge(6, 0));
        // Non-bridge node 1 has no inter-machine edge.
        assert!(!t.has_edge(1, 3) && !t.has_edge(1, 6));
    }

    #[test]
    fn hierarchical_full_bridge() {
        let t = Topology::hierarchical(&[3, 3, 2], usize::MAX);
        assert!(t.is_strongly_connected());
        // Every worker of machine 0 bridges to machine 1.
        assert!(t.has_edge(0, 3) && t.has_edge(1, 4) && t.has_edge(2, 5));
        // Machine 2 has 2 workers; worker 2 of machine 1 wraps to worker 0.
        assert!(t.has_edge(5, 6));
    }

    #[test]
    fn torus_structure() {
        let t = Topology::torus(3, 4);
        assert_eq!(t.len(), 12);
        for v in 0..12 {
            assert_eq!(t.in_degree(v), 5, "node {v}: self + 4 grid neighbors");
        }
        assert!(t.is_strongly_connected());
        // Wrap edges exist.
        assert!(t.has_edge(0, 3)); // row 0: col 0 <-> col 3
        assert!(t.has_edge(0, 8)); // col 0: row 0 <-> row 2
    }

    #[test]
    fn hypercube_structure() {
        let t = Topology::hypercube(3);
        assert_eq!(t.len(), 8);
        for v in 0..8 {
            assert_eq!(t.in_degree(v), 4, "self + 3 bit-flip neighbors");
        }
        assert!(t.is_strongly_connected());
        assert!(t.is_bipartite()); // hypercubes are bipartite by parity
        assert!(t.has_edge(0b000, 0b100));
        assert!(!t.has_edge(0b000, 0b110));
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for n in [1usize, 2, 5, 9, 16] {
            let t = Topology::random_connected(n, 3, &mut rng);
            assert!(t.is_strongly_connected(), "n={n}");
        }
    }

    #[test]
    fn even_ring_is_bipartite_odd_is_not() {
        assert!(Topology::ring(8).is_bipartite());
        assert!(!Topology::ring(5).is_bipartite());
        assert!(!Topology::complete(3).is_bipartite());
    }

    #[test]
    fn neighbor_lists_include_self_and_are_sorted() {
        let t = Topology::ring_based(8);
        for i in 0..8 {
            let nbrs = t.in_neighbors(i);
            assert!(nbrs.contains(&i));
            let mut sorted = nbrs.to_vec();
            sorted.sort_unstable();
            assert_eq!(sorted, nbrs);
        }
    }

    #[test]
    fn from_edges_dedups() {
        let t = Topology::from_edges(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(t.out_neighbors(0), &[0, 1]);
        assert_eq!(t.external_edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates_range() {
        Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn line_is_not_strongly_connected_when_directed_only() {
        let t = Topology::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!t.is_strongly_connected());
    }

    #[test]
    fn display_mentions_size() {
        let t = Topology::ring(4);
        let s = format!("{t}");
        assert!(s.contains("n=4"));
    }
}
