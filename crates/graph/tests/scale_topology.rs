//! Large-graph invariants: the CSR [`Topology`] must stay correct and
//! cheap at the 10k-worker scale the event pump targets.
//!
//! These tests run in the default (debug) profile, so they double as a
//! guard against accidentally reintroducing per-node allocations or
//! quadratic construction: a regression shows up as a timeout long
//! before it shows up as a wrong answer.

use hop_graph::Topology;

#[test]
fn expander_at_10k_is_connected_and_degree_bounded() {
    let t = Topology::expander(10_000, 4, 29);
    assert_eq!(t.len(), 10_000);
    assert!(t.is_strongly_connected());
    for i in 0..t.len() {
        let ext = t.external_out_neighbors(i).len();
        // Two Hamiltonian cycles: 2..=4 external neighbors after dedup.
        assert!((2..=4).contains(&ext), "node {i}: external degree {ext}");
        assert_eq!(
            t.external_in_neighbors(i),
            t.external_out_neighbors(i),
            "node {i}: expander must be symmetric"
        );
        assert!(!t.external_out_neighbors(i).contains(&i));
    }
    let edges = t.external_edges();
    assert!(edges.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
    let degree_sum: usize = (0..t.len())
        .map(|i| t.external_out_neighbors(i).len())
        .sum();
    assert_eq!(edges.len(), degree_sum);
}

#[test]
fn ring_and_torus_at_10k_keep_their_structure() {
    let ring = Topology::ring(10_000);
    assert!(ring.is_strongly_connected());
    for i in 0..ring.len() {
        assert_eq!(ring.in_degree(i), 3, "ring node {i}: self + 2 neighbors");
    }

    let torus = Topology::torus(100, 100);
    assert!(torus.is_strongly_connected());
    for i in 0..torus.len() {
        assert_eq!(torus.in_degree(i), 5, "torus node {i}: self + 4 neighbors");
    }
}

#[test]
fn hierarchical_handles_thousands_of_machines() {
    // 2500 machines x 4 workers = 10k nodes, one bridge per machine.
    let sizes = vec![4usize; 2500];
    let t = Topology::hierarchical(&sizes, 1);
    assert_eq!(t.len(), 10_000);
    assert!(t.is_strongly_connected());
    // Worker 1 of machine 0 is not a bridge: only its machine-local
    // all-reduce plus the self-loop.
    assert_eq!(t.in_degree(1), 4);
    // Worker 0 of machine 0 bridges to machine 1 and is bridged from the
    // last machine.
    assert!(t.has_edge(0, 4) && t.has_edge(9_996, 0));
}

#[test]
fn expander_seeds_give_distinct_graphs_at_scale() {
    let a = Topology::expander(10_000, 4, 1);
    let b = Topology::expander(10_000, 4, 2);
    assert_ne!(a, b);
}
