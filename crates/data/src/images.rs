//! Synthetic multi-class image data (the CIFAR-10 stand-in).
//!
//! Each of the 10 classes gets a random smooth template image; examples
//! are the template plus per-pixel Gaussian noise, normalized to roughly
//! zero mean and unit variance like standard CIFAR preprocessing. The
//! classes overlap enough that a linear model cannot reach zero loss but a
//! small CNN/MLP steadily improves — which is all the protocol experiments
//! need from the workload.

use crate::dataset::{Example, Features, InMemoryDataset};
use hop_util::Xoshiro256;

/// Image geometry: 3 channels of 8×8 pixels.
pub const CHANNELS: usize = 3;
/// Image height in pixels.
pub const HEIGHT: usize = 8;
/// Image width in pixels.
pub const WIDTH: usize = 8;
/// Number of classes.
pub const N_CLASSES: usize = 10;
/// Flattened feature dimension.
pub const FEATURE_DIM: usize = CHANNELS * HEIGHT * WIDTH;

/// Generator for the synthetic image dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticImages;

impl SyntheticImages {
    /// Generates `n` examples with the given seed.
    ///
    /// Class templates are drawn once from the seed, so two datasets with
    /// the same seed share the same underlying classification problem.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(n: usize, seed: u64) -> InMemoryDataset {
        assert!(n > 0, "need at least one example");
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // Smooth templates: low-frequency sinusoids with random phase per
        // channel, scaled by a random per-class amplitude. "Smooth" matters:
        // it gives the conv filters of the CNN stand-in structure to learn.
        let mut templates = Vec::with_capacity(N_CLASSES);
        for _class in 0..N_CLASSES {
            let mut img = vec![0.0f32; FEATURE_DIM];
            for c in 0..CHANNELS {
                let fx = rng.range_f64(0.5, 2.0);
                let fy = rng.range_f64(0.5, 2.0);
                let px = rng.range_f64(0.0, std::f64::consts::TAU);
                let py = rng.range_f64(0.0, std::f64::consts::TAU);
                let amp = rng.range_f64(0.8, 1.6);
                for y in 0..HEIGHT {
                    for x in 0..WIDTH {
                        let v = amp
                            * ((fx * x as f64 / WIDTH as f64 * std::f64::consts::TAU + px).sin()
                                + (fy * y as f64 / HEIGHT as f64 * std::f64::consts::TAU + py)
                                    .cos())
                            / 2.0;
                        img[c * HEIGHT * WIDTH + y * WIDTH + x] = v as f32;
                    }
                }
            }
            templates.push(img);
        }
        let noise_std = 0.6f64;
        let examples = (0..n)
            .map(|_| {
                let label = rng.index(N_CLASSES) as u32;
                let mut pixels = templates[label as usize].clone();
                for p in pixels.iter_mut() {
                    *p += rng.normal_with(0.0, noise_std) as f32;
                }
                Example {
                    features: Features::Dense(pixels),
                    label,
                }
            })
            .collect();
        InMemoryDataset::new(examples, FEATURE_DIM, N_CLASSES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn generates_requested_size() {
        let d = SyntheticImages::generate(128, 1);
        assert_eq!(d.len(), 128);
        assert_eq!(d.feature_dim(), FEATURE_DIM);
        assert_eq!(d.n_classes(), N_CLASSES);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SyntheticImages::generate(16, 9);
        let b = SyntheticImages::generate(16, 9);
        assert_eq!(a, b);
        let c = SyntheticImages::generate(16, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn all_classes_appear() {
        let d = SyntheticImages::generate(2000, 3);
        let mut seen = [false; N_CLASSES];
        for ex in d.iter() {
            seen[ex.label as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn pixels_are_roughly_standardized() {
        let d = SyntheticImages::generate(500, 4);
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut count = 0usize;
        for ex in d.iter() {
            let x = ex.features.as_dense().expect("dense");
            for &p in x {
                sum += p as f64;
                sum_sq += (p as f64) * (p as f64);
                count += 1;
            }
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(var > 0.2 && var < 3.0, "var {var}");
    }

    #[test]
    fn class_templates_are_separable_on_average() {
        // Examples of the same class should be closer to their template
        // than to other templates more often than chance.
        let d = SyntheticImages::generate(400, 5);
        let templates = SyntheticImages::generate(N_CLASSES * 50, 5);
        // Estimate per-class means from a second sample of the same seed.
        let mut means = vec![vec![0.0f64; FEATURE_DIM]; N_CLASSES];
        let mut counts = vec![0usize; N_CLASSES];
        for ex in templates.iter() {
            let x = ex.features.as_dense().expect("dense");
            for (m, &v) in means[ex.label as usize].iter_mut().zip(x) {
                *m += v as f64;
            }
            counts[ex.label as usize] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let mut correct = 0usize;
        for ex in d.iter() {
            let x = ex.features.as_dense().expect("dense");
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (k, m) in means.iter().enumerate() {
                let dist: f64 = x
                    .iter()
                    .zip(m)
                    .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                    .sum();
                if dist < best_d {
                    best_d = dist;
                    best = k;
                }
            }
            if best == ex.label as usize {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.len() as f64;
        assert!(acc > 0.5, "nearest-mean accuracy {acc} too low");
    }
}
