//! Synthetic datasets standing in for the paper's workloads.
//!
//! The paper trains VGG11 on CIFAR-10 and an SVM on the webspam dataset.
//! Neither dataset can be downloaded here, so this crate provides seeded
//! synthetic equivalents that exercise the same code paths (see the README
//! for the substitution argument):
//!
//! * [`images::SyntheticImages`] — a 10-class dense image dataset
//!   (3×8×8 channels) generated from per-class templates plus Gaussian
//!   noise; the "CIFAR-10" stand-in for the CNN task.
//! * [`webspam::SyntheticWebspam`] — a sparse binary classification
//!   dataset from a random ground-truth hyperplane with label noise; the
//!   "webspam" stand-in for the SVM task.
//! * [`batch::BatchSampler`] — deterministic minibatch sampling, one
//!   independent stream per worker.
//!
//! # Examples
//!
//! ```
//! use hop_data::images::SyntheticImages;
//! use hop_data::Dataset;
//!
//! let data = SyntheticImages::generate(256, 42);
//! assert_eq!(data.len(), 256);
//! assert_eq!(data.feature_dim(), 3 * 8 * 8);
//! ```

pub mod batch;
pub mod dataset;
pub mod images;
pub mod webspam;

pub use batch::BatchSampler;
pub use dataset::{Batch, Dataset, Example, Features, InMemoryDataset};
