//! Dataset abstractions shared by dense (image) and sparse (webspam) data.

/// Feature vector of one example: dense or sparse.
#[derive(Debug, Clone, PartialEq)]
pub enum Features {
    /// Dense feature vector.
    Dense(Vec<f32>),
    /// Sparse features as sorted `(index, value)` pairs.
    Sparse(Vec<(u32, f32)>),
}

impl Features {
    /// Dot product with a dense weight slice.
    ///
    /// # Panics
    ///
    /// Panics if a feature index exceeds `weights.len()` or, for dense
    /// features, the lengths mismatch.
    pub fn dot(&self, weights: &[f32]) -> f32 {
        match self {
            Features::Dense(x) => {
                assert_eq!(x.len(), weights.len(), "dense feature dim mismatch");
                x.iter().zip(weights).map(|(a, b)| a * b).sum()
            }
            Features::Sparse(pairs) => pairs.iter().map(|&(i, v)| v * weights[i as usize]).sum(),
        }
    }

    /// Accumulates `alpha * x` into a dense gradient slice.
    ///
    /// # Panics
    ///
    /// Panics on index/length mismatch.
    pub fn axpy_into(&self, alpha: f32, out: &mut [f32]) {
        match self {
            Features::Dense(x) => {
                assert_eq!(x.len(), out.len(), "dense feature dim mismatch");
                for (o, v) in out.iter_mut().zip(x) {
                    *o += alpha * v;
                }
            }
            Features::Sparse(pairs) => {
                for &(i, v) in pairs {
                    out[i as usize] += alpha * v;
                }
            }
        }
    }

    /// Number of stored components (dense length or sparse nnz).
    pub fn nnz(&self) -> usize {
        match self {
            Features::Dense(x) => x.len(),
            Features::Sparse(pairs) => pairs.len(),
        }
    }

    /// Dense view; `None` for sparse features.
    pub fn as_dense(&self) -> Option<&[f32]> {
        match self {
            Features::Dense(x) => Some(x),
            Features::Sparse(_) => None,
        }
    }
}

/// One labeled example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Input features.
    pub features: Features,
    /// Class label: `0..n_classes` for multiclass, `0` or `1` for binary.
    pub label: u32,
}

/// A borrowed minibatch.
#[derive(Debug, Clone)]
pub struct Batch<'a> {
    /// Examples in the batch.
    pub examples: Vec<&'a Example>,
}

impl Batch<'_> {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// A labeled dataset.
pub trait Dataset {
    /// Number of examples.
    fn len(&self) -> usize;

    /// Whether the dataset has no examples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dimensionality of the (dense view of the) feature space.
    fn feature_dim(&self) -> usize;

    /// Number of classes.
    fn n_classes(&self) -> usize;

    /// Example accessor.
    ///
    /// # Panics
    ///
    /// Implementations panic if `index >= len()`.
    fn example(&self, index: usize) -> &Example;

    /// Collects a batch by indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    fn batch(&self, indices: &[usize]) -> Batch<'_> {
        Batch {
            examples: indices.iter().map(|&i| self.example(i)).collect(),
        }
    }
}

/// An owned in-memory dataset, the concrete type behind both generators.
#[derive(Debug, Clone, PartialEq)]
pub struct InMemoryDataset {
    examples: Vec<Example>,
    feature_dim: usize,
    n_classes: usize,
}

impl InMemoryDataset {
    /// Wraps examples with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `examples` is empty, a label is out of range, or a dense
    /// example has the wrong dimension.
    pub fn new(examples: Vec<Example>, feature_dim: usize, n_classes: usize) -> Self {
        assert!(!examples.is_empty(), "dataset must be non-empty");
        for (i, ex) in examples.iter().enumerate() {
            assert!(
                (ex.label as usize) < n_classes,
                "label {} of example {i} out of range {n_classes}",
                ex.label
            );
            if let Features::Dense(x) = &ex.features {
                assert_eq!(x.len(), feature_dim, "example {i} has wrong dimension");
            }
        }
        Self {
            examples,
            feature_dim,
            n_classes,
        }
    }

    /// Iterator over examples.
    pub fn iter(&self) -> std::slice::Iter<'_, Example> {
        self.examples.iter()
    }
}

impl Dataset for InMemoryDataset {
    fn len(&self) -> usize {
        self.examples.len()
    }

    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn example(&self, index: usize) -> &Example {
        &self.examples[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        InMemoryDataset::new(
            vec![
                Example {
                    features: Features::Dense(vec![1.0, 0.0]),
                    label: 0,
                },
                Example {
                    features: Features::Dense(vec![0.0, 1.0]),
                    label: 1,
                },
            ],
            2,
            2,
        )
    }

    #[test]
    fn dense_dot_and_axpy() {
        let f = Features::Dense(vec![1.0, 2.0]);
        assert_eq!(f.dot(&[3.0, 4.0]), 11.0);
        let mut g = vec![0.0, 0.0];
        f.axpy_into(2.0, &mut g);
        assert_eq!(g, vec![2.0, 4.0]);
        assert_eq!(f.nnz(), 2);
        assert!(f.as_dense().is_some());
    }

    #[test]
    fn sparse_dot_and_axpy() {
        let f = Features::Sparse(vec![(1, 2.0), (3, 1.0)]);
        assert_eq!(f.dot(&[9.0, 3.0, 9.0, 5.0]), 11.0);
        let mut g = vec![0.0; 4];
        f.axpy_into(1.0, &mut g);
        assert_eq!(g, vec![0.0, 2.0, 0.0, 1.0]);
        assert_eq!(f.nnz(), 2);
        assert!(f.as_dense().is_none());
    }

    #[test]
    fn batch_by_indices() {
        let d = tiny();
        let b = d.batch(&[1, 0, 1]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.examples[0].label, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_validation() {
        InMemoryDataset::new(
            vec![Example {
                features: Features::Dense(vec![0.0]),
                label: 5,
            }],
            1,
            2,
        );
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn dim_validation() {
        InMemoryDataset::new(
            vec![Example {
                features: Features::Dense(vec![0.0]),
                label: 0,
            }],
            3,
            2,
        );
    }
}
