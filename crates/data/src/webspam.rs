//! Synthetic sparse binary classification data (the webspam stand-in).
//!
//! The real webspam dataset is a large sparse binary problem. This
//! generator draws a ground-truth hyperplane over a high-dimensional
//! space, emits examples with a small number of active features (drawn
//! with a skewed popularity distribution, like real bag-of-words data),
//! and flips a small fraction of labels so the optimum has non-zero loss.

use crate::dataset::{Example, Features, InMemoryDataset};
use hop_util::Xoshiro256;

/// Configuration for [`SyntheticWebspam`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebspamConfig {
    /// Feature-space dimensionality.
    pub dim: usize,
    /// Active features per example.
    pub nnz_per_example: usize,
    /// Fraction of labels flipped after generation.
    pub label_noise: f64,
}

impl Default for WebspamConfig {
    fn default() -> Self {
        Self {
            dim: 1024,
            nnz_per_example: 32,
            label_noise: 0.05,
        }
    }
}

/// Generator for the synthetic webspam-like dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticWebspam;

impl SyntheticWebspam {
    /// Generates `n` examples with default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(n: usize, seed: u64) -> InMemoryDataset {
        Self::generate_with(n, seed, WebspamConfig::default())
    }

    /// Generates `n` examples with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `config.dim == 0`, or
    /// `config.nnz_per_example > config.dim`.
    pub fn generate_with(n: usize, seed: u64, config: WebspamConfig) -> InMemoryDataset {
        assert!(n > 0, "need at least one example");
        assert!(config.dim > 0, "dimension must be positive");
        assert!(
            config.nnz_per_example <= config.dim,
            "nnz {} exceeds dim {}",
            config.nnz_per_example,
            config.dim
        );
        let mut rng = Xoshiro256::seed_from_u64(seed);
        // Ground-truth weights; only a subset of features is informative.
        let truth: Vec<f64> = (0..config.dim)
            .map(|_| {
                if rng.bernoulli(0.3) {
                    rng.normal_with(0.0, 1.5)
                } else {
                    rng.normal_with(0.0, 0.1)
                }
            })
            .collect();
        let examples = (0..n)
            .map(|_| {
                // Skewed feature popularity: indices drawn as floor(d * u^2)
                // concentrate on low indices, like frequent tokens.
                let mut idx_set = std::collections::BTreeSet::new();
                let mut guard = 0;
                while idx_set.len() < config.nnz_per_example && guard < config.dim * 8 {
                    let u = rng.next_f64();
                    idx_set.insert(((config.dim as f64) * u * u) as usize % config.dim);
                    guard += 1;
                }
                let pairs: Vec<(u32, f32)> = idx_set
                    .into_iter()
                    .map(|i| (i as u32, rng.range_f64(0.5, 1.5) as f32))
                    .collect();
                let margin: f64 = pairs
                    .iter()
                    .map(|&(i, v)| v as f64 * truth[i as usize])
                    .sum();
                let mut label = u32::from(margin > 0.0);
                if rng.bernoulli(config.label_noise) {
                    label = 1 - label;
                }
                Example {
                    features: Features::Sparse(pairs),
                    label,
                }
            })
            .collect();
        InMemoryDataset::new(examples, config.dim, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn generates_requested_shape() {
        let d = SyntheticWebspam::generate(100, 7);
        assert_eq!(d.len(), 100);
        assert_eq!(d.feature_dim(), 1024);
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn sparse_with_expected_nnz() {
        let cfg = WebspamConfig {
            dim: 256,
            nnz_per_example: 16,
            label_noise: 0.0,
        };
        let d = SyntheticWebspam::generate_with(50, 3, cfg);
        for ex in d.iter() {
            assert_eq!(ex.features.nnz(), 16);
            if let Features::Sparse(pairs) = &ex.features {
                // Sorted, in-range, positive values.
                for w in pairs.windows(2) {
                    assert!(w[0].0 < w[1].0);
                }
                assert!(pairs.iter().all(|&(i, v)| (i as usize) < 256 && v > 0.0));
            } else {
                panic!("expected sparse features");
            }
        }
    }

    #[test]
    fn both_labels_present_and_balanced_enough() {
        let d = SyntheticWebspam::generate(2000, 11);
        let positives = d.iter().filter(|e| e.label == 1).count();
        assert!(
            (400..1600).contains(&positives),
            "positives {positives} of 2000"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = SyntheticWebspam::generate(64, 5);
        let b = SyntheticWebspam::generate(64, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn linearly_separable_up_to_noise() {
        // Re-deriving the truth vector is internal, so check a weaker
        // property: a one-pass perceptron gets well above chance.
        let d = SyntheticWebspam::generate(3000, 13);
        let mut w = vec![0.0f32; d.feature_dim()];
        for ex in d.iter().take(2500) {
            let y = if ex.label == 1 { 1.0f32 } else { -1.0 };
            if ex.features.dot(&w) * y <= 0.0 {
                ex.features.axpy_into(y, &mut w);
            }
        }
        let correct = d
            .iter()
            .skip(2500)
            .filter(|ex| {
                let y = if ex.label == 1 { 1.0f32 } else { -1.0 };
                ex.features.dot(&w) * y > 0.0
            })
            .count();
        let acc = correct as f64 / 500.0;
        assert!(acc > 0.7, "perceptron holdout accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "nnz")]
    fn validates_nnz() {
        SyntheticWebspam::generate_with(
            1,
            0,
            WebspamConfig {
                dim: 4,
                nnz_per_example: 5,
                label_noise: 0.0,
            },
        );
    }
}
