//! Deterministic minibatch sampling.
//!
//! Each worker owns a [`BatchSampler`] seeded from the experiment seed and
//! its worker id, so decentralized runs are reproducible and workers draw
//! independent sample streams, matching the paper's i.i.d. sampling
//! assumption (`ξ_{k,i}` in Fig. 1).

use crate::dataset::{Batch, Dataset};
use hop_util::Xoshiro256;

/// Samples uniform random minibatches (with replacement across batches,
/// without replacement within a batch).
///
/// # Examples
///
/// ```
/// use hop_data::{BatchSampler, Dataset};
/// use hop_data::webspam::SyntheticWebspam;
///
/// let data = SyntheticWebspam::generate(100, 0);
/// let mut sampler = BatchSampler::new(data.len(), 8, 42);
/// let batch = sampler.next_batch(&data);
/// assert_eq!(batch.len(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSampler {
    n: usize,
    batch_size: usize,
    rng: Xoshiro256,
}

impl BatchSampler {
    /// Creates a sampler over `n` examples with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `batch_size == 0`.
    pub fn new(n: usize, batch_size: usize, seed: u64) -> Self {
        assert!(n > 0, "dataset must be non-empty");
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            n,
            batch_size: batch_size.min(n),
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    /// Creates the sampler for worker `worker` of an experiment seeded with
    /// `experiment_seed`; distinct workers get decorrelated streams.
    pub fn for_worker(n: usize, batch_size: usize, experiment_seed: u64, worker: usize) -> Self {
        let seed = experiment_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(worker as u64 + 1);
        Self::new(n, batch_size, seed)
    }

    /// The configured (possibly clamped) batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Draws the next batch's indices.
    pub fn next_indices(&mut self) -> Vec<usize> {
        self.rng.sample_indices(self.n, self.batch_size)
    }

    /// Draws the next batch from `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if `dataset.len()` differs from the sampler's `n`.
    pub fn next_batch<'a, D: Dataset + ?Sized>(&mut self, dataset: &'a D) -> Batch<'a> {
        assert_eq!(dataset.len(), self.n, "sampler/dataset size mismatch");
        let idx = self.next_indices();
        dataset.batch(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::webspam::SyntheticWebspam;

    #[test]
    fn batch_size_clamped_to_dataset() {
        let s = BatchSampler::new(3, 10, 0);
        assert_eq!(s.batch_size(), 3);
    }

    #[test]
    fn batches_are_deterministic() {
        let mut a = BatchSampler::new(100, 5, 9);
        let mut b = BatchSampler::new(100, 5, 9);
        for _ in 0..10 {
            assert_eq!(a.next_indices(), b.next_indices());
        }
    }

    #[test]
    fn distinct_workers_get_distinct_streams() {
        let mut a = BatchSampler::for_worker(100, 5, 7, 0);
        let mut b = BatchSampler::for_worker(100, 5, 7, 1);
        assert_ne!(a.next_indices(), b.next_indices());
    }

    #[test]
    fn indices_within_range_and_distinct() {
        let mut s = BatchSampler::new(50, 10, 3);
        for _ in 0..20 {
            let idx = s.next_indices();
            assert_eq!(idx.len(), 10);
            let mut sorted = idx.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 10);
            assert!(sorted.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn next_batch_borrows_examples() {
        let d = SyntheticWebspam::generate(20, 1);
        let mut s = BatchSampler::new(20, 4, 2);
        let batch = s.next_batch(&d);
        assert_eq!(batch.len(), 4);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn next_batch_validates_dataset() {
        let d = SyntheticWebspam::generate(20, 1);
        let mut s = BatchSampler::new(30, 4, 2);
        let _ = s.next_batch(&d);
    }
}
