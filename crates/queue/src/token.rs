//! Token queues (§4.2): bounding the iteration gap between neighbors.
//!
//! Worker `i` maintains `TokenQ(i -> j)` for each in-coming neighbor `j`.
//! To *enter* a new iteration, `j` must remove one token from every
//! `TokenQ(i -> j)` of its out-going neighbors `i`; when `i` itself enters
//! a new iteration it inserts one token into each of its local queues.
//! With `max_ig` initial tokens, the invariant
//! `TokenQ(i -> j).size() == Iter(i) - Iter(j) + max_ig`
//! holds throughout (Theorem 2's proof), which both bounds the gap and
//! lets a worker *observe* how far behind it is (used by skip-iterations,
//! §5).

/// A token queue between one ordered pair of neighboring workers.
///
/// The paper enqueues iteration numbers as token payloads but never reads
/// them; a counter with insert/remove statistics is semantically identical
/// and is what we implement.
///
/// # Examples
///
/// ```
/// use hop_queue::TokenQueue;
///
/// let mut q = TokenQueue::new(3); // max_ig = 3
/// assert_eq!(q.available(), 3);
/// assert!(q.try_remove(1));
/// q.insert(1);
/// assert_eq!(q.available(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenQueue {
    available: u64,
    max_ig: u64,
    total_inserted: u64,
    total_removed: u64,
    peak: u64,
}

impl TokenQueue {
    /// Creates a queue holding `max_ig` initial tokens (§4.2
    /// *Initialization*).
    ///
    /// # Panics
    ///
    /// Panics if `max_ig == 0` (a zero gap would deadlock immediately).
    pub fn new(max_ig: u64) -> Self {
        assert!(max_ig > 0, "max_ig must be positive");
        Self {
            available: max_ig,
            max_ig,
            total_inserted: 0,
            total_removed: 0,
            peak: max_ig,
        }
    }

    /// The configured maximum iteration gap.
    pub fn max_ig(&self) -> u64 {
        self.max_ig
    }

    /// Tokens currently available (`Iter(owner) - Iter(consumer) + max_ig`).
    pub fn available(&self) -> u64 {
        self.available
    }

    /// Maximum number of tokens ever held; Table 1 bounds this by
    /// `max_ig * (length(Path_{i->j}) + 1)`.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Tokens inserted since creation (excluding the initial batch).
    pub fn total_inserted(&self) -> u64 {
        self.total_inserted
    }

    /// Tokens removed since creation.
    pub fn total_removed(&self) -> u64 {
        self.total_removed
    }

    /// §4.2 *Insert token*: the owner entered `k` new iterations.
    pub fn insert(&mut self, k: u64) {
        self.available += k;
        self.total_inserted += k;
        self.peak = self.peak.max(self.available);
    }

    /// §4.2 *Remove token*: the consumer attempts to enter `k` new
    /// iterations. Returns `false` (removing nothing) if fewer than `k`
    /// tokens are available — the caller must block or skip.
    pub fn try_remove(&mut self, k: u64) -> bool {
        if self.available < k {
            return false;
        }
        self.available -= k;
        self.total_removed += k;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn starts_with_max_ig_tokens() {
        let q = TokenQueue::new(5);
        assert_eq!(q.available(), 5);
        assert_eq!(q.max_ig(), 5);
    }

    #[test]
    fn remove_fails_when_insufficient() {
        let mut q = TokenQueue::new(2);
        assert!(q.try_remove(2));
        assert!(!q.try_remove(1));
        assert_eq!(q.available(), 0);
        assert_eq!(q.total_removed(), 2);
    }

    #[test]
    fn insert_and_peak_tracking() {
        let mut q = TokenQueue::new(1);
        q.insert(4);
        assert_eq!(q.available(), 5);
        assert_eq!(q.peak(), 5);
        assert!(q.try_remove(3));
        assert_eq!(q.peak(), 5);
        assert_eq!(q.total_inserted(), 4);
    }

    #[test]
    #[should_panic(expected = "max_ig must be positive")]
    fn rejects_zero_gap() {
        TokenQueue::new(0);
    }

    proptest! {
        /// Theorem 2 invariant: simulate two workers where the owner has
        /// done `a` iterations (inserting a token each) and the consumer
        /// has completed `b <= a + max_ig` iterations (removing one each);
        /// then available == a - b + max_ig, and the consumer can never
        /// exceed a + max_ig iterations.
        #[test]
        fn gap_invariant(max_ig in 1u64..6, schedule in proptest::collection::vec(proptest::bool::ANY, 0..200)) {
            let mut q = TokenQueue::new(max_ig);
            let mut owner_iters = 0u64;
            let mut consumer_iters = 0u64;
            for owner_turn in schedule {
                if owner_turn {
                    owner_iters += 1;
                    q.insert(1);
                } else if q.try_remove(1) {
                    consumer_iters += 1;
                }
                prop_assert_eq!(q.available(), owner_iters + max_ig - consumer_iters);
                prop_assert!(consumer_iters <= owner_iters + max_ig);
            }
        }
    }
}
