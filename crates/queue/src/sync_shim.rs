//! A `parking_lot`-shaped facade over `std::sync` primitives.
//!
//! The build environment cannot fetch crates.io dependencies, so the
//! blocking queues use this drop-in subset instead of `parking_lot`:
//! [`Mutex::lock`] returns the guard directly (like `parking_lot`, a
//! poisoned lock is recovered, not propagated — a panicked holder does
//! not poison waiters) and [`Condvar::wait_until`] takes the guard by
//! mutable reference and a deadline, mirroring the `parking_lot` API the
//! code was written against.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Instant;

/// Mutex whose `lock` never returns a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (a panicked holder).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline expired.
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// Condition variable with deadline-based waits.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Blocks until notified or `deadline` passes, releasing and
    /// reacquiring the lock around the wait.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present outside wait");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}
