//! Queue-based synchronization primitives (the paper's §4 and §6.1).
//!
//! This crate implements the coordination substrate that replaces
//! NOTIFY-ACK in Hop:
//!
//! * [`tagged::TaggedQueue`] — a FIFO queue whose entries carry
//!   `(iter, w_id)` tags with the `enqueue` / `dequeue(m, tags)` / `size`
//!   operations defined in §4.1. This is the *logical* (non-blocking)
//!   variant used by the discrete-event runtime.
//! * [`rotating::RotatingQueues`] — the memory-bounded implementation of
//!   §6.1: `max_ig + 1` sub-queues indexed by `iter mod (max_ig + 1)`,
//!   reused like rotating registers, with stale-update discarding.
//! * [`token::TokenQueue`] — the token queues of §4.2 that bound the
//!   iteration gap between adjacent workers.
//! * [`blocking`] — thread-safe blocking variants (mutex + condvar via
//!   [`sync_shim`]) used by the real multi-threaded runtime.

pub mod blocking;
pub mod rotating;
pub mod sync_shim;
pub mod tagged;
pub mod token;

pub use rotating::RotatingQueues;
pub use tagged::{Tag, TaggedEntry, TaggedQueue};
pub use token::TokenQueue;
