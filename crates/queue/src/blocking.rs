//! Thread-safe blocking queue variants for the real multi-threaded runtime.
//!
//! These wrap the logical queues with a mutex + condvar (see
//! [`crate::sync_shim`]) so
//! that a worker thread's `Recv` genuinely blocks until enough matching
//! updates arrive (the paper's blocking `dequeue`), and token acquisition
//! blocks until the out-going neighbor releases tokens. All blocking
//! operations take a timeout so tests can detect deadlocks (e.g. the
//! AD-PSGD non-bipartite deadlock of §5) instead of hanging.

use crate::sync_shim::{Condvar, Mutex};
use crate::tagged::{Tag, TagFilter, TaggedEntry, TaggedQueue};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Error returned when a blocking operation times out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutError;

impl fmt::Display for WaitTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blocking queue operation timed out")
    }
}

impl std::error::Error for WaitTimeoutError {}

/// A shareable blocking tagged queue.
///
/// Cloning shares the underlying queue (like the paper's per-worker update
/// queue being written by many senders).
///
/// # Examples
///
/// ```
/// use hop_queue::blocking::SharedTaggedQueue;
/// use hop_queue::{Tag, tagged::TagFilter};
/// use std::time::Duration;
///
/// let q = SharedTaggedQueue::new();
/// let sender = q.clone();
/// std::thread::spawn(move || {
///     sender.enqueue(7u32, Tag { iter: 0, w_id: 1 });
/// });
/// let got = q.dequeue(1, TagFilter::iter(0), Duration::from_secs(5)).unwrap();
/// assert_eq!(got[0].value, 7);
/// ```
#[derive(Debug)]
pub struct SharedTaggedQueue<T> {
    inner: Arc<(Mutex<TaggedQueue<T>>, Condvar)>,
}

impl<T> Clone for SharedTaggedQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for SharedTaggedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SharedTaggedQueue<T> {
    /// Creates an empty unbounded shared queue.
    pub fn new() -> Self {
        Self {
            inner: Arc::new((Mutex::new(TaggedQueue::unbounded()), Condvar::new())),
        }
    }

    /// Enqueues an update and wakes all waiters.
    pub fn enqueue(&self, value: T, tag: Tag) {
        let (lock, cvar) = &*self.inner;
        let mut q = lock.lock();
        q.enqueue(value, tag)
            .expect("unbounded queue never overflows");
        cvar.notify_all();
    }

    /// Blocking `dequeue(m, filter)`: waits until `m` matching entries are
    /// present, removes and returns them.
    ///
    /// # Errors
    ///
    /// Returns [`WaitTimeoutError`] if the deadline expires first; nothing
    /// is removed in that case.
    pub fn dequeue(
        &self,
        m: usize,
        filter: TagFilter,
        timeout: Duration,
    ) -> Result<Vec<TaggedEntry<T>>, WaitTimeoutError> {
        let (lock, cvar) = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        let mut q = lock.lock();
        loop {
            if let Some(entries) = q.try_dequeue(m, filter) {
                return Ok(entries);
            }
            if cvar.wait_until(&mut q, deadline).timed_out() {
                return Err(WaitTimeoutError);
            }
        }
    }

    /// Removes up to `m` matching entries without blocking (possibly zero).
    pub fn dequeue_up_to(&self, m: usize, filter: TagFilter) -> Vec<TaggedEntry<T>> {
        let (lock, _) = &*self.inner;
        lock.lock().dequeue_up_to(m, filter)
    }

    /// Non-blocking size query.
    pub fn size(&self, filter: TagFilter) -> usize {
        let (lock, _) = &*self.inner;
        lock.lock().size(filter)
    }

    /// Total entries present.
    pub fn len(&self) -> usize {
        let (lock, _) = &*self.inner;
        lock.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards entries older than `min_iter`, returning the count.
    pub fn discard_older_than(&self, min_iter: u64) -> usize {
        let (lock, _) = &*self.inner;
        lock.lock().discard_older_than(min_iter)
    }

    /// Removes and returns all entries older than `min_iter` (see
    /// [`TaggedQueue::drain_older_than`]).
    pub fn drain_older_than(&self, min_iter: u64) -> Vec<TaggedEntry<T>> {
        let (lock, _) = &*self.inner;
        lock.lock().drain_older_than(min_iter)
    }

    /// Snapshot of the tags currently queued, in FIFO order — stall
    /// diagnostics for the threaded runtime.
    pub fn tags(&self) -> Vec<Tag> {
        let (lock, _) = &*self.inner;
        lock.lock().iter().map(|e| e.tag).collect()
    }
}

/// A shareable blocking token queue (§4.2) for the threaded runtime.
#[derive(Debug)]
pub struct SharedTokenQueue {
    inner: Arc<(Mutex<u64>, Condvar)>,
    max_ig: u64,
}

impl Clone for SharedTokenQueue {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            max_ig: self.max_ig,
        }
    }
}

impl SharedTokenQueue {
    /// Creates a queue pre-loaded with `max_ig` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `max_ig == 0`.
    pub fn new(max_ig: u64) -> Self {
        assert!(max_ig > 0, "max_ig must be positive");
        Self {
            inner: Arc::new((Mutex::new(max_ig), Condvar::new())),
            max_ig,
        }
    }

    /// The configured maximum iteration gap.
    pub fn max_ig(&self) -> u64 {
        self.max_ig
    }

    /// Tokens currently available.
    pub fn available(&self) -> u64 {
        *self.inner.0.lock()
    }

    /// Inserts `k` tokens and wakes waiters.
    pub fn insert(&self, k: u64) {
        let (lock, cvar) = &*self.inner;
        *lock.lock() += k;
        cvar.notify_all();
    }

    /// Blocks until `k` tokens can be removed, then removes them.
    ///
    /// # Errors
    ///
    /// Returns [`WaitTimeoutError`] on deadline expiry (nothing removed).
    pub fn remove(&self, k: u64, timeout: Duration) -> Result<(), WaitTimeoutError> {
        let (lock, cvar) = &*self.inner;
        let deadline = std::time::Instant::now() + timeout;
        let mut avail = lock.lock();
        loop {
            if *avail >= k {
                *avail -= k;
                return Ok(());
            }
            if cvar.wait_until(&mut avail, deadline).timed_out() {
                return Err(WaitTimeoutError);
            }
        }
    }

    /// Non-blocking removal; returns whether it succeeded.
    pub fn try_remove(&self, k: u64) -> bool {
        let (lock, _) = &*self.inner;
        let mut avail = lock.lock();
        if *avail >= k {
            *avail -= k;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn tag(iter: u64, w_id: usize) -> Tag {
        Tag { iter, w_id }
    }

    #[test]
    fn dequeue_blocks_until_enough() {
        let q: SharedTaggedQueue<u32> = SharedTaggedQueue::new();
        let producer = q.clone();
        let handle = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            producer.enqueue(1, tag(0, 0));
            thread::sleep(Duration::from_millis(20));
            producer.enqueue(2, tag(0, 1));
        });
        let got = q
            .dequeue(2, TagFilter::iter(0), Duration::from_secs(5))
            .unwrap();
        assert_eq!(got.len(), 2);
        handle.join().unwrap();
    }

    #[test]
    fn dequeue_times_out_cleanly() {
        let q: SharedTaggedQueue<u32> = SharedTaggedQueue::new();
        q.enqueue(1, tag(0, 0));
        let err = q
            .dequeue(2, TagFilter::iter(0), Duration::from_millis(30))
            .unwrap_err();
        assert_eq!(err, WaitTimeoutError);
        // Timed-out dequeue removed nothing.
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn many_producers_one_consumer() {
        let q: SharedTaggedQueue<usize> = SharedTaggedQueue::new();
        let mut handles = Vec::new();
        for w in 0..8 {
            let p = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..10 {
                    p.enqueue(w * 100 + i, tag(i as u64, w));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..10u64 {
            let got = q
                .dequeue(8, TagFilter::iter(i), Duration::from_secs(5))
                .unwrap();
            assert_eq!(got.len(), 8);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn token_queue_blocks_and_resumes() {
        let t = SharedTokenQueue::new(1);
        assert!(t.try_remove(1));
        assert!(!t.try_remove(1));
        let waiter = t.clone();
        let handle = thread::spawn(move || waiter.remove(1, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        t.insert(1);
        handle.join().unwrap().unwrap();
        assert_eq!(t.available(), 0);
    }

    #[test]
    fn token_timeout_removes_nothing() {
        let t = SharedTokenQueue::new(2);
        assert!(t.remove(5, Duration::from_millis(30)).is_err());
        assert_eq!(t.available(), 2);
    }

    #[test]
    fn discard_older_than_shared() {
        let q: SharedTaggedQueue<u32> = SharedTaggedQueue::new();
        q.enqueue(1, tag(0, 0));
        q.enqueue(2, tag(5, 0));
        assert_eq!(q.discard_older_than(3), 1);
        assert_eq!(q.size(TagFilter::any()), 1);
    }
}
