//! Rotating per-iteration queues (§6.1).
//!
//! A single update queue would have to be scanned for matching tags,
//! putting unmatched newer entries back repeatedly. The paper's
//! implementation instead keeps `max_ig + 1` queues and routes an update
//! of iteration `k` to queue `k mod (max_ig + 1)`: by Theorem 1 (with
//! token queues bounding the gap to `max_ig`), at most `max_ig + 1`
//! *distinct current-or-newer* iterations can be in flight, so within one
//! sub-queue an entry is either for the requested iteration or stale (only
//! possible with backup workers) — never newer. Stale entries are
//! discarded on dequeue (§6.2a).

use crate::tagged::{QueueFullError, Tag, TagFilter, TaggedEntry, TaggedQueue};

/// The rotating multi-queue of §6.1.
///
/// # Examples
///
/// ```
/// use hop_queue::{RotatingQueues, Tag};
///
/// let mut q = RotatingQueues::new(2); // max_ig = 2 → 3 sub-queues
/// q.enqueue("u0", Tag { iter: 0, w_id: 1 }).unwrap();
/// q.enqueue("u3", Tag { iter: 3, w_id: 1 }).unwrap(); // same sub-queue as iter 0
/// // Requesting iteration 3 discards the stale iteration-0 entry.
/// let got = q.try_dequeue(1, 3).unwrap();
/// assert_eq!(got[0].value, "u3");
/// assert_eq!(q.stale_discarded(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RotatingQueues<T> {
    queues: Vec<TaggedQueue<T>>,
    stale_discarded: u64,
}

impl<T> RotatingQueues<T> {
    /// Creates `max_ig + 1` unbounded sub-queues.
    pub fn new(max_ig: u64) -> Self {
        let n = max_ig as usize + 1;
        Self {
            queues: (0..n).map(|_| TaggedQueue::unbounded()).collect(),
            stale_discarded: 0,
        }
    }

    /// Creates `max_ig + 1` sub-queues each bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(max_ig: u64, capacity: usize) -> Self {
        let n = max_ig as usize + 1;
        Self {
            queues: (0..n).map(|_| TaggedQueue::bounded(capacity)).collect(),
            stale_discarded: 0,
        }
    }

    /// Number of sub-queues (`max_ig + 1`).
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// Total entries across sub-queues.
    pub fn len(&self) -> usize {
        self.queues.iter().map(TaggedQueue::len).sum()
    }

    /// Whether all sub-queues are empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(TaggedQueue::is_empty)
    }

    /// Updates of iterations older than the requested one found and
    /// dropped during dequeues so far.
    pub fn stale_discarded(&self) -> u64 {
        self.stale_discarded
    }

    fn index(&self, iter: u64) -> usize {
        (iter % self.queues.len() as u64) as usize
    }

    /// Routes an update to sub-queue `iter mod n_queues`.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if that sub-queue is bounded and full.
    pub fn enqueue(&mut self, value: T, tag: Tag) -> Result<(), QueueFullError> {
        let idx = self.index(tag.iter);
        self.queues[idx].enqueue(value, tag)
    }

    /// Drops entries older than `iter` from the sub-queue for `iter`,
    /// counting them as stale.
    fn purge_stale(&mut self, iter: u64) {
        let idx = self.index(iter);
        self.stale_discarded += self.queues[idx].discard_older_than(iter) as u64;
    }

    /// Number of entries currently available for iteration `iter`
    /// (after discarding stale entries sharing its sub-queue).
    pub fn size(&mut self, iter: u64) -> usize {
        self.purge_stale(iter);
        let idx = self.index(iter);
        self.queues[idx].size(TagFilter::iter(iter))
    }

    /// Number of entries from sender `w_id` for iteration `iter`.
    pub fn size_from(&mut self, iter: u64, w_id: usize) -> usize {
        self.purge_stale(iter);
        let idx = self.index(iter);
        self.queues[idx].size(TagFilter::exact(iter, w_id))
    }

    /// Non-blocking dequeue of exactly `m` updates for iteration `iter`;
    /// removes nothing if fewer are available. Stale entries sharing the
    /// sub-queue are discarded first (§6.2a).
    pub fn try_dequeue(&mut self, m: usize, iter: u64) -> Option<Vec<TaggedEntry<T>>> {
        self.purge_stale(iter);
        let idx = self.index(iter);
        self.queues[idx].try_dequeue(m, TagFilter::iter(iter))
    }

    /// Dequeues up to `m` updates for iteration `iter` (the "additional
    /// updates" collection of Fig. 8 line 5).
    pub fn dequeue_up_to(&mut self, m: usize, iter: u64) -> Vec<TaggedEntry<T>> {
        self.purge_stale(iter);
        let idx = self.index(iter);
        self.queues[idx].dequeue_up_to(m, TagFilter::iter(iter))
    }

    /// Drains every update from sender `w_id` across *all* sub-queues, in
    /// increasing iteration order. Used by the bounded-staleness Recv
    /// (Fig. 9), which scans per-sender and keeps the newest.
    pub fn drain_from_worker(&mut self, w_id: usize) -> Vec<TaggedEntry<T>> {
        let mut all = Vec::new();
        for q in &mut self.queues {
            all.extend(q.drain_matching(TagFilter::from_worker(w_id)));
        }
        all.sort_by_key(|e| e.tag.iter);
        all
    }

    /// Discards entries older than `min_iter` in all sub-queues (the
    /// periodic cleanup of §4.3), returning the number dropped.
    pub fn discard_older_than(&mut self, min_iter: u64) -> usize {
        let dropped: usize = self
            .queues
            .iter_mut()
            .map(|q| q.discard_older_than(min_iter))
            .sum();
        self.stale_discarded += dropped as u64;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tag(iter: u64, w_id: usize) -> Tag {
        Tag { iter, w_id }
    }

    #[test]
    fn routes_by_modulo() {
        let mut q = RotatingQueues::new(2);
        assert_eq!(q.n_queues(), 3);
        q.enqueue(0, tag(0, 0)).unwrap();
        q.enqueue(1, tag(1, 0)).unwrap();
        q.enqueue(2, tag(2, 0)).unwrap();
        q.enqueue(3, tag(3, 0)).unwrap(); // shares sub-queue with iter 0
        assert_eq!(q.len(), 4);
        assert_eq!(q.size(1), 1);
        assert_eq!(q.size(2), 1);
    }

    #[test]
    fn dequeue_exact_count() {
        let mut q = RotatingQueues::new(1);
        q.enqueue("a", tag(4, 0)).unwrap();
        q.enqueue("b", tag(4, 1)).unwrap();
        assert!(q.try_dequeue(3, 4).is_none());
        let got = q.try_dequeue(2, 4).unwrap();
        assert_eq!(got.len(), 2);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_entries_are_discarded_not_returned() {
        let mut q = RotatingQueues::new(2);
        // Backup-worker case: an old unused update of iter 0 lingers, then
        // iter 3 updates land in the same sub-queue.
        q.enqueue("old", tag(0, 0)).unwrap();
        q.enqueue("new", tag(3, 1)).unwrap();
        let got = q.try_dequeue(1, 3).unwrap();
        assert_eq!(got[0].value, "new");
        assert_eq!(q.stale_discarded(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn size_from_counts_per_sender() {
        let mut q = RotatingQueues::new(3);
        q.enqueue(0, tag(2, 5)).unwrap();
        q.enqueue(1, tag(2, 5)).unwrap();
        q.enqueue(2, tag(2, 6)).unwrap();
        assert_eq!(q.size_from(2, 5), 2);
        assert_eq!(q.size_from(2, 6), 1);
        assert_eq!(q.size_from(2, 7), 0);
    }

    #[test]
    fn drain_from_worker_is_sorted_by_iter() {
        let mut q = RotatingQueues::new(4);
        q.enqueue("i3", tag(3, 1)).unwrap();
        q.enqueue("i1", tag(1, 1)).unwrap();
        q.enqueue("i2", tag(2, 2)).unwrap();
        let got = q.drain_from_worker(1);
        let iters: Vec<u64> = got.iter().map(|e| e.tag.iter).collect();
        assert_eq!(iters, vec![1, 3]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn global_cleanup_counts_stale() {
        let mut q = RotatingQueues::new(4);
        for i in 0..5u64 {
            q.enqueue(i, tag(i, 0)).unwrap();
        }
        let dropped = q.discard_older_than(4);
        assert_eq!(dropped, 4);
        assert_eq!(q.stale_discarded(), 4);
    }

    #[test]
    fn bounded_subqueues_reject_overflow() {
        let mut q = RotatingQueues::bounded(1, 1);
        q.enqueue(0, tag(0, 0)).unwrap();
        // Same sub-queue (iter 2 mod 2 == 0) and it is full.
        assert!(q.enqueue(1, tag(2, 0)).is_err());
        // Different sub-queue still accepts.
        q.enqueue(2, tag(1, 0)).unwrap();
    }

    proptest! {
        /// Equivalence with a single tagged queue when no stale updates
        /// exist: standard training only sees current-or-newer updates, and
        /// dequeuing iteration-by-iteration yields the same multiset.
        #[test]
        fn equivalent_to_flat_queue_without_staleness(
            updates in proptest::collection::vec((0u64..6, 0usize..4), 0..50),
            max_ig in 5u64..8,
        ) {
            // max_ig >= max iter span, so no aliasing/staleness occurs.
            let mut rot = RotatingQueues::new(max_ig);
            let mut flat = TaggedQueue::unbounded();
            for (k, &(iter, w_id)) in updates.iter().enumerate() {
                rot.enqueue(k, tag(iter, w_id)).unwrap();
                flat.enqueue(k, tag(iter, w_id)).unwrap();
            }
            for iter in 0..6u64 {
                let a = rot.dequeue_up_to(usize::MAX, iter);
                let b = flat.drain_matching(TagFilter::iter(iter));
                let mut av: Vec<usize> = a.iter().map(|e| e.value).collect();
                let mut bv: Vec<usize> = b.iter().map(|e| e.value).collect();
                av.sort_unstable();
                bv.sort_unstable();
                prop_assert_eq!(av, bv);
            }
            prop_assert_eq!(rot.stale_discarded(), 0);
        }
    }
}
