//! Tagged FIFO update queues (§4.1).
//!
//! Entries carry an `(iter, w_id)` tag. `dequeue` removes the first `m`
//! entries matching a tag filter while leaving non-matching entries in
//! place and in order — exactly the semantics the paper defines for
//! `q.dequeue(m, iter, w_id)`. This logical variant never blocks; the
//! discrete-event runtime re-polls it when new updates arrive, and
//! [`crate::blocking`] wraps it with real blocking for the threaded
//! runtime.

use std::collections::VecDeque;
use std::fmt;

/// The `(iter, w_id)` tag attached to each update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag {
    /// Iteration in which the update was generated.
    pub iter: u64,
    /// Index of the sending worker.
    pub w_id: usize,
}

/// A tagged queue entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedEntry<T> {
    /// The update payload (model parameters in the real protocol).
    pub value: T,
    /// Its tag.
    pub tag: Tag,
}

/// A tag filter: `None` matches anything, mirroring the optional tag
/// arguments of the paper's queue API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TagFilter {
    /// Required iteration, if any.
    pub iter: Option<u64>,
    /// Required sender, if any.
    pub w_id: Option<usize>,
}

impl TagFilter {
    /// Matches any entry.
    pub fn any() -> Self {
        Self::default()
    }

    /// Matches entries of one iteration.
    pub fn iter(iter: u64) -> Self {
        Self {
            iter: Some(iter),
            w_id: None,
        }
    }

    /// Matches entries from one sender.
    pub fn from_worker(w_id: usize) -> Self {
        Self {
            iter: None,
            w_id: Some(w_id),
        }
    }

    /// Matches entries with both tags fixed.
    pub fn exact(iter: u64, w_id: usize) -> Self {
        Self {
            iter: Some(iter),
            w_id: Some(w_id),
        }
    }

    /// Whether `tag` satisfies the filter.
    pub fn matches(&self, tag: Tag) -> bool {
        self.iter.is_none_or(|i| i == tag.iter) && self.w_id.is_none_or(|w| w == tag.w_id)
    }
}

/// Error returned when enqueuing into a full bounded queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFullError {
    /// The configured capacity that was exceeded.
    pub capacity: usize,
}

impl fmt::Display for QueueFullError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFullError {}

/// FIFO queue with tag-filtered dequeue.
///
/// # Examples
///
/// ```
/// use hop_queue::{TaggedQueue, Tag};
/// use hop_queue::tagged::TagFilter;
///
/// let mut q = TaggedQueue::unbounded();
/// q.enqueue("a", Tag { iter: 0, w_id: 1 }).unwrap();
/// q.enqueue("b", Tag { iter: 1, w_id: 2 }).unwrap();
/// let got = q.try_dequeue(1, TagFilter::iter(1)).unwrap();
/// assert_eq!(got[0].value, "b");
/// assert_eq!(q.len(), 1); // "a" stayed in place
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedQueue<T> {
    entries: VecDeque<TaggedEntry<T>>,
    capacity: Option<usize>,
}

impl<T> TaggedQueue<T> {
    /// Creates a queue with no capacity limit.
    pub fn unbounded() -> Self {
        Self {
            entries: VecDeque::new(),
            capacity: None,
        }
    }

    /// Creates a queue that rejects enqueues beyond `capacity` entries,
    /// modeling the fixed-capacity TensorFlow FIFO queues of §6.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: VecDeque::new(),
            capacity: Some(capacity),
        }
    }

    /// Number of entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity limit, if bounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Pushes an update with its tag (the paper's
    /// `q.enqueue(update, iter, w_id)`).
    ///
    /// # Errors
    ///
    /// Returns [`QueueFullError`] if the queue is bounded and full.
    pub fn enqueue(&mut self, value: T, tag: Tag) -> Result<(), QueueFullError> {
        if let Some(cap) = self.capacity {
            if self.entries.len() >= cap {
                return Err(QueueFullError { capacity: cap });
            }
        }
        self.entries.push_back(TaggedEntry { value, tag });
        Ok(())
    }

    /// The paper's `q.size(iter, w_id)`: number of entries matching the
    /// filter.
    pub fn size(&self, filter: TagFilter) -> usize {
        self.entries
            .iter()
            .filter(|e| filter.matches(e.tag))
            .count()
    }

    /// Non-blocking `q.dequeue(m, iter, w_id)`: removes and returns the
    /// first `m` entries matching `filter`, or `None` (removing nothing)
    /// if fewer than `m` match. The blocking variant waits instead; see
    /// [`crate::blocking::SharedTaggedQueue`].
    pub fn try_dequeue(&mut self, m: usize, filter: TagFilter) -> Option<Vec<TaggedEntry<T>>> {
        if self.size(filter) < m {
            return None;
        }
        Some(self.dequeue_up_to(m, filter))
    }

    /// Removes and returns up to `m` matching entries (possibly fewer),
    /// used for collecting "additional updates" in the backup-worker Recv
    /// (Fig. 8 line 5).
    pub fn dequeue_up_to(&mut self, m: usize, filter: TagFilter) -> Vec<TaggedEntry<T>> {
        let mut taken = Vec::new();
        if m == 0 {
            return taken;
        }
        let mut kept = VecDeque::with_capacity(self.entries.len());
        while let Some(entry) = self.entries.pop_front() {
            if taken.len() < m && filter.matches(entry.tag) {
                taken.push(entry);
            } else {
                kept.push_back(entry);
            }
        }
        self.entries = kept;
        taken
    }

    /// Removes and returns *all* matching entries.
    pub fn drain_matching(&mut self, filter: TagFilter) -> Vec<TaggedEntry<T>> {
        self.dequeue_up_to(usize::MAX, filter)
    }

    /// Discards all entries with `tag.iter < min_iter`, returning how many
    /// were dropped. This is the periodic stale-update cleanup of §4.3/§6.2.
    pub fn discard_older_than(&mut self, min_iter: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.tag.iter >= min_iter);
        before - self.entries.len()
    }

    /// Removes and returns all entries with `tag.iter < min_iter` — the
    /// attributable variant of [`Self::discard_older_than`], used when the
    /// caller needs the dropped tags (conformance `Drop` events) or the
    /// payloads (buffer recycling).
    pub fn drain_older_than(&mut self, min_iter: u64) -> Vec<TaggedEntry<T>> {
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.entries.len());
        while let Some(entry) = self.entries.pop_front() {
            if entry.tag.iter < min_iter {
                taken.push(entry);
            } else {
                kept.push_back(entry);
            }
        }
        self.entries = kept;
        taken
    }

    /// Iterates over entries in FIFO order without removing them.
    pub fn iter(&self) -> impl Iterator<Item = &TaggedEntry<T>> {
        self.entries.iter()
    }
}

impl<T> Default for TaggedQueue<T> {
    fn default() -> Self {
        Self::unbounded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tag(iter: u64, w_id: usize) -> Tag {
        Tag { iter, w_id }
    }

    #[test]
    fn fifo_order_within_tag() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue(1, tag(0, 0)).unwrap();
        q.enqueue(2, tag(0, 1)).unwrap();
        q.enqueue(3, tag(0, 0)).unwrap();
        let got = q.try_dequeue(2, TagFilter::from_worker(0)).unwrap();
        assert_eq!(got.iter().map(|e| e.value).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().next().unwrap().value, 2);
    }

    #[test]
    fn try_dequeue_insufficient_removes_nothing() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue("x", tag(3, 0)).unwrap();
        assert!(q.try_dequeue(2, TagFilter::iter(3)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dequeue_any_takes_head() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue("a", tag(5, 2)).unwrap();
        q.enqueue("b", tag(1, 7)).unwrap();
        let got = q.try_dequeue(1, TagFilter::any()).unwrap();
        assert_eq!(got[0].value, "a");
    }

    #[test]
    fn exact_filter() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue(10, tag(2, 0)).unwrap();
        q.enqueue(11, tag(2, 1)).unwrap();
        q.enqueue(12, tag(3, 1)).unwrap();
        assert_eq!(q.size(TagFilter::exact(2, 1)), 1);
        let got = q.try_dequeue(1, TagFilter::exact(2, 1)).unwrap();
        assert_eq!(got[0].value, 11);
    }

    #[test]
    fn bounded_queue_overflows() {
        let mut q = TaggedQueue::bounded(2);
        q.enqueue(0, tag(0, 0)).unwrap();
        q.enqueue(1, tag(1, 0)).unwrap();
        let err = q.enqueue(2, tag(2, 0)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(format!("{err}"), "update queue full (capacity 2)");
    }

    #[test]
    fn discard_older_than_drops_stale() {
        let mut q = TaggedQueue::unbounded();
        for i in 0..5 {
            q.enqueue(i, tag(i, 0)).unwrap();
        }
        assert_eq!(q.discard_older_than(3), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.size(TagFilter::iter(3)), 1);
    }

    #[test]
    fn drain_matching_takes_all() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue(1, tag(0, 0)).unwrap();
        q.enqueue(2, tag(0, 0)).unwrap();
        q.enqueue(3, tag(1, 0)).unwrap();
        let got = q.drain_matching(TagFilter::iter(0));
        assert_eq!(got.len(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn dequeue_up_to_partial() {
        let mut q = TaggedQueue::unbounded();
        q.enqueue(1, tag(0, 0)).unwrap();
        let got = q.dequeue_up_to(5, TagFilter::iter(0));
        assert_eq!(got.len(), 1);
        assert!(q.is_empty());
    }

    proptest! {
        /// Mixed enqueues/dequeues never lose or duplicate entries and
        /// preserve FIFO order per tag.
        #[test]
        fn fifo_per_tag_invariant(ops in proptest::collection::vec((0u64..4, 0usize..3), 1..60)) {
            let mut q = TaggedQueue::unbounded();
            let mut sequence_by_tag: std::collections::HashMap<Tag, Vec<u32>> =
                std::collections::HashMap::new();
            for (counter, &(iter, w_id)) in ops.iter().enumerate() {
                let counter = counter as u32;
                let t = tag(iter, w_id);
                q.enqueue(counter, t).unwrap();
                sequence_by_tag.entry(t).or_default().push(counter);
            }
            for (t, expected) in sequence_by_tag {
                let got = q.drain_matching(TagFilter::exact(t.iter, t.w_id));
                let values: Vec<u32> = got.iter().map(|e| e.value).collect();
                prop_assert_eq!(values, expected);
            }
            prop_assert!(q.is_empty());
        }

        /// `size` agrees with what `drain_matching` returns.
        #[test]
        fn size_matches_drain(ops in proptest::collection::vec((0u64..3, 0usize..3), 0..40), fi in 0u64..3, fw in 0usize..3) {
            let mut q = TaggedQueue::unbounded();
            for (k, &(iter, w_id)) in ops.iter().enumerate() {
                q.enqueue(k, tag(iter, w_id)).unwrap();
            }
            let filter = TagFilter::exact(fi, fw);
            let size = q.size(filter);
            let drained = q.drain_matching(filter);
            prop_assert_eq!(size, drained.len());
        }
    }
}
