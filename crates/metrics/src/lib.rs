//! Metrics, time series and report rendering for experiments.
//!
//! * [`series::TimeSeries`] — (time, value) curves with resampling and
//!   time-to-threshold queries, used for loss-vs-time/steps figures.
//! * [`table::Table`] — plain-text table rendering and CSV export for the
//!   benchmark harnesses.

pub mod series;
pub mod table;

pub use series::TimeSeries;
pub use table::Table;
