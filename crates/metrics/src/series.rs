//! Time series for loss-vs-time and loss-vs-steps curves.

/// A monotone-time series of `(time, value)` points.
///
/// # Examples
///
/// ```
/// use hop_metrics::TimeSeries;
/// let mut s = TimeSeries::new();
/// s.push(0.0, 1.0);
/// s.push(1.0, 0.5);
/// s.push(2.0, 0.2);
/// assert_eq!(s.time_to_reach(0.5), Some(1.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a series from `(time, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if times are not non-decreasing.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "times must be non-decreasing");
        }
        Self { points }
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the last recorded time.
    pub fn push(&mut self, time: f64, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(time >= last, "time went backwards: {time} < {last}");
        }
        self.points.push((time, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The recorded points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Last point, if any.
    pub fn last(&self) -> Option<(f64, f64)> {
        self.points.last().copied()
    }

    /// First time at which the value drops to `threshold` or below
    /// (loss curves decrease; this is "time to reach loss X").
    pub fn time_to_reach(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, v)| v <= threshold)
            .map(|&(t, _)| t)
    }

    /// Minimum value seen.
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .min_by(|a, b| a.partial_cmp(b).expect("no NaN values"))
    }

    /// Value at the given time by step interpolation (last point at or
    /// before `time`); `None` before the first point.
    ///
    /// Binary search over the monotone time axis, so resampling a series
    /// (or merging many, as `TrainingReport::mean_train_loss_time` does
    /// over the union of sample times) costs O(log n) per lookup instead
    /// of a linear scan.
    pub fn value_at(&self, time: f64) -> Option<f64> {
        let idx = self.points.partition_point(|&(t, _)| t <= time);
        idx.checked_sub(1).map(|i| self.points[i].1)
    }

    /// Resamples onto `n` evenly spaced times across the series' span —
    /// used to print compact figure rows.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty or `n == 0`.
    pub fn resample(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(!self.points.is_empty(), "cannot resample an empty series");
        assert!(n > 0, "need at least one sample");
        let t0 = self.points[0].0;
        let t1 = self.points.last().expect("non-empty").0;
        (0..n)
            .map(|k| {
                let t = if n == 1 {
                    t1
                } else {
                    t0 + (t1 - t0) * k as f64 / (n - 1) as f64
                };
                (t, self.value_at(t).expect("t >= t0"))
            })
            .collect()
    }

    /// Exponentially smoothed copy (for noisy loss curves).
    pub fn smoothed(&self, alpha: f64) -> TimeSeries {
        let mut ewma = hop_util::stats::Ewma::new(alpha);
        TimeSeries {
            points: self
                .points
                .iter()
                .map(|&(t, v)| (t, ewma.update(v)))
                .collect(),
        }
    }
}

/// Speedup of `ours` over `baseline` in time-to-threshold; `None` if either
/// curve never reaches the threshold.
pub fn speedup_at(baseline: &TimeSeries, ours: &TimeSeries, threshold: f64) -> Option<f64> {
    let tb = baseline.time_to_reach(threshold)?;
    let to = ours.time_to_reach(threshold)?;
    if to <= 0.0 {
        return None;
    }
    Some(tb / to)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn falling() -> TimeSeries {
        TimeSeries::from_points(vec![(0.0, 2.0), (1.0, 1.0), (3.0, 0.4), (4.0, 0.1)])
    }

    #[test]
    fn time_to_reach_interpolates_by_points() {
        let s = falling();
        assert_eq!(s.time_to_reach(1.0), Some(1.0));
        assert_eq!(s.time_to_reach(0.5), Some(3.0));
        assert_eq!(s.time_to_reach(0.01), None);
    }

    #[test]
    fn value_at_steps() {
        let s = falling();
        assert_eq!(s.value_at(0.5), Some(2.0));
        assert_eq!(s.value_at(3.5), Some(0.4));
        assert_eq!(s.value_at(-1.0), None);
    }

    /// The linear-scan definition `value_at` replaced; kept as the oracle
    /// for the binary-search implementation.
    fn value_at_scan(s: &TimeSeries, time: f64) -> Option<f64> {
        s.points()
            .iter()
            .take_while(|&&(t, _)| t <= time)
            .last()
            .map(|&(_, v)| v)
    }

    #[test]
    fn value_at_matches_linear_scan() {
        // Step-function fixtures with duplicate timestamps, negative
        // times, and a singleton — probed at boundaries, between samples,
        // and outside the span.
        let fixtures = [
            TimeSeries::new(),
            TimeSeries::from_points(vec![(0.0, 1.0)]),
            falling(),
            TimeSeries::from_points(vec![(-2.0, 5.0), (0.0, 3.0), (0.0, 2.0), (4.0, 1.0)]),
            TimeSeries::from_points(vec![(1.0, 9.0), (1.0, 8.0), (1.0, 7.0)]),
        ];
        for s in &fixtures {
            let mut probes: Vec<f64> = s.points().iter().map(|&(t, _)| t).collect();
            probes.extend(
                s.points()
                    .iter()
                    .flat_map(|&(t, _)| [t - 0.5, t + 0.5, t - f64::EPSILON]),
            );
            probes.extend([-10.0, 0.0, 0.25, 10.0]);
            for t in probes {
                assert_eq!(
                    s.value_at(t),
                    value_at_scan(s, t),
                    "divergence at t = {t} on {:?}",
                    s.points()
                );
            }
        }
    }

    #[test]
    fn resample_spans_series() {
        let s = falling();
        let r = s.resample(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], (0.0, 2.0));
        assert_eq!(r[4], (4.0, 0.1));
    }

    #[test]
    fn speedup_ratio() {
        let slow = TimeSeries::from_points(vec![(0.0, 1.0), (10.0, 0.1)]);
        let fast = TimeSeries::from_points(vec![(0.0, 1.0), (5.0, 0.1)]);
        assert_eq!(speedup_at(&slow, &fast, 0.1), Some(2.0));
        assert_eq!(speedup_at(&slow, &fast, 0.01), None);
    }

    #[test]
    fn smoothing_reduces_oscillation() {
        let noisy = TimeSeries::from_points(vec![(0.0, 1.0), (1.0, 3.0), (2.0, 1.0), (3.0, 3.0)]);
        let smooth = noisy.smoothed(0.5);
        let spread = |s: &TimeSeries| {
            let vs: Vec<f64> = s.points().iter().map(|&(_, v)| v).collect();
            vs.iter().cloned().fold(f64::MIN, f64::max)
                - vs.iter().cloned().fold(f64::MAX, f64::min)
        };
        assert!(spread(&smooth) < spread(&noisy));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn push_validates_monotonic_time() {
        let mut s = TimeSeries::new();
        s.push(1.0, 0.0);
        s.push(0.5, 0.0);
    }

    #[test]
    fn min_value_and_last() {
        let s = falling();
        assert_eq!(s.min_value(), Some(0.1));
        assert_eq!(s.last(), Some((4.0, 0.1)));
        assert_eq!(s.len(), 4);
    }
}
