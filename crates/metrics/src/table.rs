//! Plain-text table rendering and CSV export for benchmark output.

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use hop_metrics::Table;
/// let mut t = Table::new(vec!["protocol", "speedup"]);
/// t.add_row(vec!["standard".to_string(), "1.00".to_string()]);
/// t.add_row(vec!["backup".to_string(), "1.81".to_string()]);
/// let rendered = t.render();
/// assert!(rendered.contains("backup"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of `Display` values.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_display_row(&mut self, row: &[&dyn fmt::Display]) {
        self.add_row(row.iter().map(|d| d.to_string()).collect());
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let format_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&format_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Serializes as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Formats an `f64` with 4 significant digits, for table cells.
pub fn fmt_sig(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let magnitude = value.abs().log10().floor() as i32;
    let decimals = (3 - magnitude).clamp(0, 10) as usize;
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.add_row(vec!["xxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new(vec!["x"]);
        t.add_row(vec!["a,b".into()]);
        t.add_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn display_row_formats_values() {
        let mut t = Table::new(vec!["n", "gap"]);
        t.add_display_row(&[&16usize, &0.5f64]);
        assert!(t.render().contains("16"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn validates_row_width() {
        let mut t = Table::new(vec!["only"]);
        t.add_row(vec!["a".into(), "b".into()]);
    }

    #[test]
    fn fmt_sig_reasonable() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(1234.6), "1235");
        assert_eq!(fmt_sig(0.012345), "0.01235");
        assert_eq!(fmt_sig(1.5), "1.500");
    }
}
