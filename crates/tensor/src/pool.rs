//! Scratch-buffer recycling for the training hot paths.
//!
//! Per-event temporaries (gradient vectors, reduce outputs, pairwise
//! averages) used to be `vec![0.0; dim]` allocations; at thousands of
//! simulated events per run the allocator dominated wall-clock. A
//! [`BufferPool`] keeps returned buffers on a free list so steady state
//! allocates nothing: [`BufferPool::acquire`] hands out a zeroed buffer
//! (recycled when one is available), [`BufferPool::release`] returns it,
//! and [`BufferPool::reclaim`] recycles the allocation behind a
//! [`ParamBlock`] once it is no longer shared.
//!
//! Determinism contract: acquired buffers are always zero-filled, so a
//! recycled buffer is indistinguishable from a fresh `vec![0.0; len]` —
//! pooling cannot change any computed value.

use crate::param_block::ParamBlock;

/// A free list of reusable `Vec<f32>` scratch buffers.
///
/// # Examples
///
/// ```
/// use hop_tensor::BufferPool;
///
/// let mut pool = BufferPool::new();
/// let buf = pool.acquire(4);
/// assert_eq!(buf, vec![0.0; 4]);
/// pool.release(buf);
/// let again = pool.acquire(4); // recycled, not reallocated
/// assert_eq!(pool.reuses(), 1);
/// # drop(again);
/// ```
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<f32>>,
    acquires: u64,
    reuses: u64,
}

/// Free-list length cap; beyond this, released buffers are dropped. The
/// runtimes hold only a handful of scratch buffers at once, so a small
/// cap bounds memory without costing hits.
const MAX_FREE: usize = 64;

/// A point-in-time snapshot of a pool's allocation behavior, used by
/// benches to assert a hot path stopped allocating after warmup: if
/// [`PoolStats::fresh`] is unchanged between two snapshots, every
/// acquire in between was served from the free list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Total [`BufferPool::acquire`] calls so far.
    pub acquires: u64,
    /// Acquires served by recycling a released buffer.
    pub reuses: u64,
    /// Acquires that had to allocate a fresh zeroed buffer.
    pub fresh: u64,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Hands out a zero-filled buffer of length `len`, recycling a
    /// released one when available.
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        self.acquires += 1;
        match self.free.pop() {
            Some(mut buf) => {
                self.reuses += 1;
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the free list.
    pub fn release(&mut self, buf: Vec<f32>) {
        if self.free.len() < MAX_FREE && buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Recycles the allocation behind `block` if this was its last
    /// holder; shared blocks are simply dropped (their other holders keep
    /// the buffer alive).
    pub fn reclaim(&mut self, block: ParamBlock) {
        if let Some(buf) = block.try_into_unique_vec() {
            self.release(buf);
        }
    }

    /// Buffers currently on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Total [`Self::acquire`] calls.
    pub fn acquires(&self) -> u64 {
        self.acquires
    }

    /// Acquires served from the free list instead of the allocator.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Snapshot of the allocation counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquires: self.acquires,
            reuses: self.reuses,
            fresh: self.acquires - self.reuses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_is_zeroed_even_after_reuse() {
        let mut pool = BufferPool::new();
        let mut buf = pool.acquire(3);
        buf.copy_from_slice(&[1.0, 2.0, 3.0]);
        pool.release(buf);
        assert_eq!(pool.acquire(5), vec![0.0; 5]);
    }

    #[test]
    fn reuse_keeps_the_allocation() {
        let mut pool = BufferPool::new();
        let buf = pool.acquire(8);
        let ptr = buf.as_ptr();
        pool.release(buf);
        let again = pool.acquire(8);
        assert_eq!(again.as_ptr(), ptr);
        assert_eq!(pool.acquires(), 2);
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn reclaim_recycles_only_unique_blocks() {
        let mut pool = BufferPool::new();
        let block = ParamBlock::from_vec(vec![1.0; 4]);
        let snap = block.snapshot();
        pool.reclaim(block); // still shared with `snap`: dropped, not pooled
        assert_eq!(pool.free_buffers(), 0);
        pool.reclaim(snap); // last holder: recycled
        assert_eq!(pool.free_buffers(), 1);
    }

    #[test]
    fn stats_split_fresh_from_reused() {
        let mut pool = BufferPool::new();
        assert_eq!(pool.stats(), PoolStats::default());
        let a = pool.acquire(4);
        let b = pool.acquire(4);
        pool.release(a);
        pool.release(b);
        let _c = pool.acquire(4);
        let s = pool.stats();
        assert_eq!(s.acquires, 3);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.fresh, 2);
    }

    #[test]
    fn free_list_is_bounded() {
        let mut pool = BufferPool::new();
        for _ in 0..200 {
            pool.release(vec![0.0; 2]);
        }
        assert!(pool.free_buffers() <= 64);
    }
}
