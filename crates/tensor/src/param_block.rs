//! Shared, copy-on-write flat parameter buffers.
//!
//! Decentralized training is dominated by *reads* of whole parameter
//! vectors: every simulated message, every queue entry and every
//! staleness cache holds "the parameters worker `w` had at iteration
//! `k`". Cloning a `Vec<f32>` for each of those holders made allocator
//! traffic the hot path. A [`ParamBlock`] instead wraps the flat buffer
//! in an [`Arc`]:
//!
//! * [`ParamBlock::snapshot`] is a refcount bump — publishing the current
//!   parameters to a neighbor, a queue, or a staleness cache costs O(1)
//!   and zero bytes.
//! * [`ParamBlock::make_mut`] is copy-on-write: mutation reuses the
//!   allocation when no snapshot is alive, and copies exactly once when
//!   one is — so snapshots are immutable by construction.
//! * [`ParamBlock::overwrite_mut`] is the full-overwrite variant for
//!   `Reduce`-style writes that never read the old contents: when the
//!   block is shared it swaps in a zeroed buffer from a
//!   [`BufferPool`] instead of copying values that are
//!   about to be discarded.
//!
//! Determinism contract: a `ParamBlock` never changes *values* on its
//! own. All sharing is representation-only, so any computation over
//! blocks is bit-identical to the same computation over owned `Vec<f32>`
//! copies.

use crate::pool::BufferPool;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable-by-default, `Arc`-shared flat `f32` parameter buffer with
/// cheap snapshots and copy-on-write mutation.
///
/// # Examples
///
/// ```
/// use hop_tensor::ParamBlock;
///
/// let mut params = ParamBlock::from_vec(vec![1.0, 2.0]);
/// let sent = params.snapshot();            // refcount bump, no copy
/// assert!(params.ptr_eq(&sent));
/// params.make_mut()[0] = 9.0;              // copy-on-write: detaches
/// assert_eq!(sent.as_slice(), &[1.0, 2.0]); // snapshot is unaffected
/// assert_eq!(params.as_slice(), &[9.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct ParamBlock {
    data: Arc<Vec<f32>>,
}

impl ParamBlock {
    /// Wraps an owned buffer (no copy).
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self {
            data: Arc::new(data),
        }
    }

    /// A zero-filled block of the given length.
    pub fn zeros(len: usize) -> Self {
        Self::from_vec(vec![0.0; len])
    }

    /// Publishes the current contents: a refcount bump, never a copy.
    ///
    /// The snapshot observes the values at call time forever; later
    /// mutation of either block detaches it from the other first.
    #[must_use]
    pub fn snapshot(&self) -> Self {
        Self {
            data: Arc::clone(&self.data),
        }
    }

    /// Immutable view of the buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the block has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into an owned `Vec` (terminal reporting paths).
    pub fn to_vec(&self) -> Vec<f32> {
        self.data.as_ref().clone()
    }

    /// Whether two blocks share one allocation.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of blocks currently sharing this allocation (tests and
    /// diagnostics).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Copy-on-write mutable access for read-modify-write updates
    /// (optimizer steps, in-place mixing): reuses the allocation when the
    /// block is unshared, copies exactly once when a snapshot is alive.
    pub fn make_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Mutable access for *full overwrites* (`Reduce`-style writes that
    /// never read the old contents): like [`Self::make_mut`], but when
    /// the block is shared the old values are not copied — a zeroed
    /// same-length buffer from `pool` replaces them.
    ///
    /// The returned slice is zero-filled in the shared case and holds the
    /// previous contents in the unshared case; callers must overwrite
    /// every element.
    pub fn overwrite_mut(&mut self, pool: &mut BufferPool) -> &mut [f32] {
        if Arc::get_mut(&mut self.data).is_none() {
            self.data = Arc::new(pool.acquire(self.data.len()));
        }
        Arc::get_mut(&mut self.data)
            .expect("block was just made unique")
            .as_mut_slice()
    }

    /// Consumes the block, returning the buffer without a copy when this
    /// was the last holder (otherwise copies).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| shared.as_ref().clone())
    }

    pub(crate) fn try_into_unique_vec(self) -> Option<Vec<f32>> {
        Arc::try_unwrap(self.data).ok()
    }
}

impl Deref for ParamBlock {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl PartialEq for ParamBlock {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f32>> for ParamBlock {
    fn from(data: Vec<f32>) -> Self {
        Self::from_vec(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shares_instead_of_copying() {
        let block = ParamBlock::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(block.strong_count(), 1);
        let snap = block.snapshot();
        assert_eq!(block.strong_count(), 2);
        assert!(block.ptr_eq(&snap));
        assert_eq!(snap.as_slice().as_ptr(), block.as_slice().as_ptr());
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut block = ParamBlock::from_vec(vec![1.0, 2.0]);
        let before = block.as_slice().as_ptr();
        // Unshared: mutation reuses the allocation.
        block.make_mut()[0] = 5.0;
        assert_eq!(block.as_slice().as_ptr(), before);
        // Shared: mutation detaches; the snapshot keeps the old values.
        let snap = block.snapshot();
        block.make_mut()[1] = 7.0;
        assert!(!block.ptr_eq(&snap));
        assert_eq!(snap.as_slice(), &[5.0, 2.0]);
        assert_eq!(block.as_slice(), &[5.0, 7.0]);
    }

    #[test]
    fn overwrite_mut_skips_the_copy_when_shared() {
        let mut pool = BufferPool::new();
        let mut block = ParamBlock::from_vec(vec![3.0, 4.0]);
        let snap = block.snapshot();
        let out = block.overwrite_mut(&mut pool);
        // Shared case: fresh zeroed buffer, old values not copied.
        assert_eq!(out, &[0.0, 0.0]);
        out.copy_from_slice(&[8.0, 9.0]);
        assert_eq!(snap.as_slice(), &[3.0, 4.0]);
        assert_eq!(block.as_slice(), &[8.0, 9.0]);
        // Unshared case: the allocation is reused and keeps its contents.
        let ptr = block.as_slice().as_ptr();
        assert_eq!(block.overwrite_mut(&mut pool), &[8.0, 9.0]);
        assert_eq!(block.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn into_vec_avoids_the_copy_when_unique() {
        let block = ParamBlock::from_vec(vec![1.0; 4]);
        let ptr = block.as_slice().as_ptr();
        let v = block.into_vec();
        assert_eq!(v.as_ptr(), ptr);
    }

    #[test]
    fn equality_compares_contents() {
        let a = ParamBlock::from_vec(vec![1.0, 2.0]);
        let b = ParamBlock::from_vec(vec![1.0, 2.0]);
        let c = ParamBlock::from_vec(vec![1.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a, a.snapshot());
        assert_ne!(a, c);
    }
}
