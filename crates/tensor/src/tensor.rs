//! A small shape-carrying dense tensor.

use crate::ops;

/// Dense row-major `f32` tensor with an explicit shape.
///
/// Used by `hop-model` for layer activations and by tests; the hot training
/// paths operate directly on flat slices via [`crate::ops`].
///
/// # Examples
///
/// ```
/// use hop_tensor::Tensor;
/// let t = Tensor::zeros(vec![2, 3]);
/// assert_eq!(t.len(), 6);
/// assert_eq!(t.shape(), &[2, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps existing data with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the product of `shape` does not equal `data.len()`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(len, data.len(), "shape/data mismatch");
        Self { shape, data }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes in place.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&mut self, shape: Vec<usize>) {
        let len: usize = shape.iter().product();
        assert_eq!(len, self.data.len(), "reshape element count mismatch");
        self.shape = shape;
    }

    /// Element access for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or indices are out of bounds.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "at() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        assert!(row < m && col < n, "index ({row},{col}) out of {m}x{n}");
        self.data[row * n + col]
    }

    /// Matrix product of two 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if either tensor is not 2-D or the inner dimensions mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(vec![m, n]);
        ops::gemm(&self.data, &other.data, &mut out.data, m, k, n);
        out
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(vec![n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        out
    }

    /// Elementwise sum with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shape mismatch");
        let mut out = self.clone();
        ops::axpy(1.0, &other.data, &mut out.data);
        out
    }

    /// Frobenius / Euclidean norm.
    pub fn norm(&self) -> f32 {
        ops::norm2(&self.data)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(vec![0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(vec![3, 4]);
        assert_eq!(t.len(), 12);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose(), a);
        assert_eq!(t.at(2, 1), 6.0);
    }

    #[test]
    fn add_elementwise() {
        let a = Tensor::full(vec![2], 1.0);
        let b = Tensor::full(vec![2], 2.0);
        assert_eq!(a.add(&b).data(), &[3.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let mut a = Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]);
        a.reshape(vec![2, 2]);
        assert_eq!(a.at(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates() {
        Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_validates() {
        let a = Tensor::zeros(vec![2, 3]);
        let b = Tensor::zeros(vec![2, 3]);
        let _ = a.matmul(&b);
    }
}
