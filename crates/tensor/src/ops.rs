//! Flat-slice numeric kernels.
//!
//! These free functions operate on `&[f32]`/`&mut [f32]` so that model code
//! can apply them directly to slices of a worker's flat parameter vector
//! without copying into tensor objects.
//!
//! The elementwise vector kernels ([`axpy`], [`axpby`], [`scale`], and
//! [`mean_into`]/[`weighted_mean_into`] built on them) process the bulk of
//! each slice in 4-wide chunks so the compiler emits unrolled/vectorized
//! loops. Every element is still computed by exactly the same scalar
//! expression in the same order as the naive loop, so results are
//! *bit-identical* to the [`mod@reference`] implementations — chunking is a
//! speed, not a semantics, change (property-tested in
//! `tests/chunked_kernels.rs`).

/// Width of the unrolled inner loops.
const CHUNK: usize = 4;

/// `y += alpha * x` (AXPY), 4-way chunked.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let mut yc = y.chunks_exact_mut(CHUNK);
    let mut xc = x.chunks_exact(CHUNK);
    for (yy, xx) in yc.by_ref().zip(xc.by_ref()) {
        yy[0] += alpha * xx[0];
        yy[1] += alpha * xx[1];
        yy[2] += alpha * xx[2];
        yy[3] += alpha * xx[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * x + beta * y`, 4-way chunked.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    let mut yc = y.chunks_exact_mut(CHUNK);
    let mut xc = x.chunks_exact(CHUNK);
    for (yy, xx) in yc.by_ref().zip(xc.by_ref()) {
        yy[0] = alpha * xx[0] + beta * yy[0];
        yy[1] = alpha * xx[1] + beta * yy[1];
        yy[2] = alpha * xx[2] + beta * yy[2];
        yy[3] = alpha * xx[3] + beta * yy[3];
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Scales a slice in place: `x *= alpha`, 4-way chunked.
pub fn scale(alpha: f32, x: &mut [f32]) {
    let mut xc = x.chunks_exact_mut(CHUNK);
    for xx in xc.by_ref() {
        xx[0] *= alpha;
        xx[1] *= alpha;
        xx[2] *= alpha;
        xx[3] *= alpha;
    }
    for xi in xc.into_remainder() {
        *xi *= alpha;
    }
}

/// Fills a slice with a constant.
pub fn fill(value: f32, x: &mut [f32]) {
    for xi in x {
        *xi = value;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Elementwise mean of several equally sized slices into `out`.
///
/// This is the Reduce of Fig. 4 line 15: `temp = sum(x_recv) / n`.
/// Composed from the chunked [`axpy`]/[`scale`] kernels; the per-element
/// accumulation order over `inputs` matches the naive reference exactly.
///
/// # Panics
///
/// Panics if `inputs` is empty or any input length differs from `out`.
pub fn mean_into(inputs: &[&[f32]], out: &mut [f32]) {
    assert!(!inputs.is_empty(), "mean of zero slices");
    fill(0.0, out);
    for input in inputs {
        axpy(1.0, input, out);
    }
    scale(1.0 / inputs.len() as f32, out);
}

/// Weighted elementwise average: `out = sum(w_i * x_i) / sum(w_i)`.
///
/// This is the bounded-staleness Reduce of Eq. (2) in the paper.
///
/// # Panics
///
/// Panics if inputs/weights lengths mismatch, the weight sum is not
/// positive, or any input length differs from `out`.
pub fn weighted_mean_into(inputs: &[&[f32]], weights: &[f32], out: &mut [f32]) {
    assert_eq!(inputs.len(), weights.len(), "inputs/weights mismatch");
    assert!(!inputs.is_empty(), "weighted mean of zero slices");
    let wsum: f32 = weights.iter().sum();
    assert!(wsum > 0.0, "weight sum must be positive, got {wsum}");
    fill(0.0, out);
    for (input, &w) in inputs.iter().zip(weights) {
        axpy(w, input, out);
    }
    scale(1.0 / wsum, out);
}

/// Row-major GEMV: `y = A x` where `A` is `m x n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemv(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "gemv matrix size mismatch");
    assert_eq!(x.len(), n, "gemv x size mismatch");
    assert_eq!(y.len(), m, "gemv y size mismatch");
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(&a[i * n..(i + 1) * n], x);
    }
}

/// Row-major transposed GEMV: `y = A^T x` where `A` is `m x n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemv_t(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "gemv_t matrix size mismatch");
    assert_eq!(x.len(), m, "gemv_t x size mismatch");
    assert_eq!(y.len(), n, "gemv_t y size mismatch");
    fill(0.0, y);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        axpy(x[i], row, y);
    }
}

/// Row-major GEMM: `C = A B` where `A` is `m x k`, `B` is `k x n`.
///
/// Uses the ikj loop order for cache friendliness; adequate for the small
/// models in this workspace.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm A size mismatch");
    assert_eq!(b.len(), k * n, "gemm B size mismatch");
    assert_eq!(c.len(), m * n, "gemm C size mismatch");
    fill(0.0, c);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            axpy(aip, b_row, c_row);
        }
    }
}

/// In-place ReLU.
pub fn relu(x: &mut [f32]) {
    for xi in x {
        if *xi < 0.0 {
            *xi = 0.0;
        }
    }
}

/// Backward of ReLU: zeroes `grad` wherever the forward input was negative.
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn relu_backward(forward_input: &[f32], grad: &mut [f32]) {
    assert_eq!(forward_input.len(), grad.len(), "relu_backward mismatch");
    for (g, &x) in grad.iter_mut().zip(forward_input) {
        if x <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically stable in-place softmax over a single row.
pub fn softmax(x: &mut [f32]) {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for xi in x.iter_mut() {
        *xi = (*xi - max).exp();
        sum += *xi;
    }
    for xi in x.iter_mut() {
        *xi /= sum;
    }
}

/// Index of the maximum element (first occurrence).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Naive scalar implementations of the chunked vector kernels.
///
/// These are the bit-exactness oracles: the chunked [`axpy`], [`axpby`],
/// [`scale`] and [`mean_into`] must produce identical bits for every
/// input (see `tests/chunked_kernels.rs`). They are also the "scalar"
/// side of the `hot_path` benchmark.
pub mod reference {
    /// Scalar `y += alpha * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Scalar `y = alpha * x + beta * y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths.
    pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpby length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi + beta * *yi;
        }
    }

    /// Scalar `x *= alpha`.
    pub fn scale(alpha: f32, x: &mut [f32]) {
        for xi in x {
            *xi *= alpha;
        }
    }

    /// Scalar elementwise mean of several equally sized slices.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any input length differs from `out`.
    pub fn mean_into(inputs: &[&[f32]], out: &mut [f32]) {
        assert!(!inputs.is_empty(), "mean of zero slices");
        super::fill(0.0, out);
        for input in inputs {
            axpy(1.0, input, out);
        }
        scale(1.0 / inputs.len() as f32, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_works() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn axpby_works() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpby(2.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn mean_into_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [0.0; 2];
        mean_into(&[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    fn weighted_mean_matches_eq2_shape() {
        // Two updates with weights 3 and 1: out = (3a + b)/4.
        let a = [4.0, 0.0];
        let b = [0.0, 4.0];
        let mut out = [0.0; 2];
        weighted_mean_into(&[&a, &b], &[3.0, 1.0], &mut out);
        assert_eq!(out, [3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weight sum must be positive")]
    fn weighted_mean_rejects_zero_weights() {
        let a = [1.0];
        let mut out = [0.0];
        weighted_mean_into(&[&a[..]], &[0.0], &mut out);
    }

    #[test]
    fn gemv_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = [5.0, 7.0];
        let mut y = [0.0; 2];
        gemv(&a, 2, 2, &x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn gemv_t_matches_manual() {
        // A = [[1,2],[3,4]] (2x2), x = [1,1] => A^T x = [4, 6]
        let a = [1.0, 2.0, 3.0, 4.0];
        let x = [1.0, 1.0];
        let mut y = [0.0; 2];
        gemv_t(&a, 2, 2, &x, &mut y);
        assert_eq!(y, [4.0, 6.0]);
    }

    #[test]
    fn gemm_small() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] => C = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rectangular() {
        // A (1x3) * B (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0; 2];
        gemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn relu_and_backward() {
        let input = [-1.0, 0.0, 2.0];
        let mut x = input;
        relu(&mut x);
        assert_eq!(x, [0.0, 0.0, 2.0]);
        let mut g = [1.0, 1.0, 1.0];
        relu_backward(&input, &mut g);
        assert_eq!(g, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = [1000.0, 1001.0, 1002.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
