//! Flat-slice numeric kernels.
//!
//! These free functions operate on `&[f32]`/`&mut [f32]` so that model code
//! can apply them directly to slices of a worker's flat parameter vector
//! without copying into tensor objects.
//!
//! The elementwise vector kernels ([`axpy`], [`axpby`], [`scale`],
//! [`fill`], [`abs_into`], [`relu`], [`relu_backward`], and
//! [`mean_into`]/[`weighted_mean_into`] built on them) dispatch at runtime
//! to the widest SIMD backend the host supports (see [`simd`]): 256-bit
//! AVX2 intrinsics on capable x86-64, otherwise an 8-lane unrolled
//! portable path. Every element is still computed by exactly the same
//! scalar expression — multiply then add as two separate rounding steps,
//! never fused — in the same order as the naive loop, so results are
//! *bit-identical* to the [`mod@reference`] implementations on every
//! backend: vectorization is a speed, not a semantics, change
//! (property-tested per backend in `tests/chunked_kernels.rs`).
//!
//! The reductions ([`dot`], [`norm2`], and the per-row dots inside
//! [`gemv`]) deliberately stay scalar-sequential: a vectorized reduction
//! reassociates the floating-point sum, and those results feed the
//! experiment digests. [`gemv_t`], [`gemm`] and the mean kernels compose
//! [`axpy`]/[`scale`], so they ride the SIMD backends for free without
//! changing any accumulation order.

/// `y += alpha * x` (AXPY), SIMD-dispatched.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::axpy(alpha, x, y);
        return;
    }
    simd::portable::axpy(alpha, x, y);
}

/// `y = alpha * x + beta * y`, SIMD-dispatched.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::axpby(alpha, x, beta, y);
        return;
    }
    simd::portable::axpby(alpha, x, beta, y);
}

/// Dot product.
///
/// Deliberately a scalar sequential sum: the accumulation order is part
/// of the workspace's determinism contract (losses and gradients feed
/// experiment digests), and any SIMD reduction would reassociate it.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Scales a slice in place: `x *= alpha`, SIMD-dispatched.
pub fn scale(alpha: f32, x: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::scale(alpha, x);
        return;
    }
    simd::portable::scale(alpha, x);
}

/// Fills a slice with a constant, SIMD-dispatched.
pub fn fill(value: f32, x: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::fill(value, x);
        return;
    }
    simd::portable::fill(value, x);
}

/// Elementwise magnitude: `out[i] = |x[i]|`, SIMD-dispatched.
///
/// Clearing the sign bit is the same single bit operation on every
/// backend (`f32::abs` scalar, sign-mask AND under AVX2), so the scan is
/// bitwise deterministic — the property the top-k codec's selection
/// order relies on.
///
/// # Panics
///
/// Panics if `x` and `out` have different lengths.
pub fn abs_into(x: &[f32], out: &mut [f32]) {
    assert_eq!(x.len(), out.len(), "abs_into length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::abs_into(x, out);
        return;
    }
    simd::portable::abs_into(x, out);
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Elementwise mean of several equally sized slices into `out`.
///
/// This is the Reduce of Fig. 4 line 15: `temp = sum(x_recv) / n`.
/// Composed from the SIMD-dispatched [`axpy`]/[`scale`] kernels; the per-element
/// accumulation order over `inputs` matches the naive reference exactly.
///
/// # Panics
///
/// Panics if `inputs` is empty or any input length differs from `out`.
pub fn mean_into(inputs: &[&[f32]], out: &mut [f32]) {
    assert!(!inputs.is_empty(), "mean of zero slices");
    fill(0.0, out);
    for input in inputs {
        axpy(1.0, input, out);
    }
    scale(1.0 / inputs.len() as f32, out);
}

/// Weighted elementwise average: `out = sum(w_i * x_i) / sum(w_i)`.
///
/// This is the bounded-staleness Reduce of Eq. (2) in the paper.
///
/// # Panics
///
/// Panics if inputs/weights lengths mismatch, the weight sum is not
/// positive, or any input length differs from `out`.
pub fn weighted_mean_into(inputs: &[&[f32]], weights: &[f32], out: &mut [f32]) {
    assert_eq!(inputs.len(), weights.len(), "inputs/weights mismatch");
    assert!(!inputs.is_empty(), "weighted mean of zero slices");
    let wsum: f32 = weights.iter().sum();
    assert!(wsum > 0.0, "weight sum must be positive, got {wsum}");
    fill(0.0, out);
    for (input, &w) in inputs.iter().zip(weights) {
        axpy(w, input, out);
    }
    scale(1.0 / wsum, out);
}

/// Row-major GEMV: `y = A x` where `A` is `m x n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemv(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "gemv matrix size mismatch");
    assert_eq!(x.len(), n, "gemv x size mismatch");
    assert_eq!(y.len(), m, "gemv y size mismatch");
    for (i, yi) in y.iter_mut().enumerate() {
        *yi = dot(&a[i * n..(i + 1) * n], x);
    }
}

/// Row-major transposed GEMV: `y = A^T x` where `A` is `m x n`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemv_t(a: &[f32], m: usize, n: usize, x: &[f32], y: &mut [f32]) {
    assert_eq!(a.len(), m * n, "gemv_t matrix size mismatch");
    assert_eq!(x.len(), m, "gemv_t x size mismatch");
    assert_eq!(y.len(), n, "gemv_t y size mismatch");
    fill(0.0, y);
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        axpy(x[i], row, y);
    }
}

/// Row-major GEMM: `C = A B` where `A` is `m x k`, `B` is `k x n`.
///
/// Uses the ikj loop order for cache friendliness; adequate for the small
/// models in this workspace.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm A size mismatch");
    assert_eq!(b.len(), k * n, "gemm B size mismatch");
    assert_eq!(c.len(), m * n, "gemm C size mismatch");
    fill(0.0, c);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            axpy(aip, b_row, c_row);
        }
    }
}

/// In-place ReLU, SIMD-dispatched.
///
/// Exactly the scalar `if x < 0 { 0 }` on every backend: `-0.0` and NaN
/// pass through unchanged (which rules out a `max(x, 0)` formulation —
/// `max(-0.0, 0.0)` would flip the sign bit).
pub fn relu(x: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::relu(x);
        return;
    }
    simd::portable::relu(x);
}

/// Backward of ReLU: zeroes `grad` wherever the forward input was
/// non-positive. SIMD-dispatched, bit-identical to the scalar loop
/// (NaN forward inputs keep their gradient, matching `x <= 0.0` being
/// false for NaN).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn relu_backward(forward_input: &[f32], grad: &mut [f32]) {
    assert_eq!(forward_input.len(), grad.len(), "relu_backward mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::avx2_available() {
        simd::avx2::relu_backward(forward_input, grad);
        return;
    }
    simd::portable::relu_backward(forward_input, grad);
}

/// Numerically stable in-place softmax over a single row.
pub fn softmax(x: &mut [f32]) {
    let max = x.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for xi in x.iter_mut() {
        *xi = (*xi - max).exp();
        sum += *xi;
    }
    for xi in x.iter_mut() {
        *xi /= sum;
    }
}

/// Index of the maximum element (first occurrence).
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// SIMD backends for the elementwise kernels.
///
/// Two implementations of each kernel live here:
///
/// * [`simd::portable`] — 8-lane manually unrolled code that compiles on
///   every target and that the autovectorizer can widen to whatever
///   vector ISA the build targets.
/// * [`simd::avx2`] (x86-64 only) — hand-written 256-bit intrinsics,
///   selected by the public dispatchers at runtime via
///   [`simd::avx2_available`].
///
/// Both backends compute every element with exactly the scalar
/// expression of [`mod@reference`]: multiply then add as
/// two separate rounding steps (never FMA, which fuses them and changes
/// the low bits), elements visited in ascending order. The dispatchers
/// are therefore bit-identical no matter which backend runs; the suite
/// in `tests/chunked_kernels.rs` pins each backend against the scalar
/// oracle independently.
pub mod simd {
    /// Lane width of the portable unrolled kernels (also the f32 lane
    /// count of a 256-bit AVX2 register).
    pub const LANES: usize = 8;

    /// Whether the public kernels will take the AVX2 backend on this
    /// host. Always `false` off x86-64.
    #[inline]
    pub fn avx2_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Portable 8-lane unrolled kernels — the fallback backend.
    pub mod portable {
        use super::LANES;

        /// `y += alpha * x`, 8-lane unrolled.
        ///
        /// # Panics
        ///
        /// Panics if `x` and `y` have different lengths.
        pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
            assert_eq!(x.len(), y.len(), "axpy length mismatch");
            let mut yc = y.chunks_exact_mut(LANES);
            let mut xc = x.chunks_exact(LANES);
            for (yy, xx) in yc.by_ref().zip(xc.by_ref()) {
                for l in 0..LANES {
                    yy[l] += alpha * xx[l];
                }
            }
            for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
                *yi += alpha * xi;
            }
        }

        /// `y = alpha * x + beta * y`, 8-lane unrolled.
        ///
        /// # Panics
        ///
        /// Panics if `x` and `y` have different lengths.
        pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
            assert_eq!(x.len(), y.len(), "axpby length mismatch");
            let mut yc = y.chunks_exact_mut(LANES);
            let mut xc = x.chunks_exact(LANES);
            for (yy, xx) in yc.by_ref().zip(xc.by_ref()) {
                for l in 0..LANES {
                    yy[l] = alpha * xx[l] + beta * yy[l];
                }
            }
            for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
                *yi = alpha * xi + beta * *yi;
            }
        }

        /// `x *= alpha`, 8-lane unrolled.
        pub fn scale(alpha: f32, x: &mut [f32]) {
            let mut xc = x.chunks_exact_mut(LANES);
            for xx in xc.by_ref() {
                for l in 0..LANES {
                    xx[l] *= alpha;
                }
            }
            for xi in xc.into_remainder() {
                *xi *= alpha;
            }
        }

        /// `x[i] = value`, 8-lane unrolled.
        pub fn fill(value: f32, x: &mut [f32]) {
            let mut xc = x.chunks_exact_mut(LANES);
            for xx in xc.by_ref() {
                for l in 0..LANES {
                    xx[l] = value;
                }
            }
            for xi in xc.into_remainder() {
                *xi = value;
            }
        }

        /// `out[i] = |x[i]|`, 8-lane unrolled.
        ///
        /// # Panics
        ///
        /// Panics if `x` and `out` have different lengths.
        pub fn abs_into(x: &[f32], out: &mut [f32]) {
            assert_eq!(x.len(), out.len(), "abs_into length mismatch");
            let mut oc = out.chunks_exact_mut(LANES);
            let mut xc = x.chunks_exact(LANES);
            for (oo, xx) in oc.by_ref().zip(xc.by_ref()) {
                for l in 0..LANES {
                    oo[l] = xx[l].abs();
                }
            }
            for (oi, xi) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
                *oi = xi.abs();
            }
        }

        /// In-place ReLU, 8-lane unrolled (`-0.0` and NaN pass through).
        pub fn relu(x: &mut [f32]) {
            let mut xc = x.chunks_exact_mut(LANES);
            for xx in xc.by_ref() {
                for l in 0..LANES {
                    if xx[l] < 0.0 {
                        xx[l] = 0.0;
                    }
                }
            }
            for xi in xc.into_remainder() {
                if *xi < 0.0 {
                    *xi = 0.0;
                }
            }
        }

        /// ReLU backward, 8-lane unrolled.
        ///
        /// # Panics
        ///
        /// Panics if the lengths mismatch.
        pub fn relu_backward(forward_input: &[f32], grad: &mut [f32]) {
            assert_eq!(forward_input.len(), grad.len(), "relu_backward mismatch");
            let mut gc = grad.chunks_exact_mut(LANES);
            let mut xc = forward_input.chunks_exact(LANES);
            for (gg, xx) in gc.by_ref().zip(xc.by_ref()) {
                for l in 0..LANES {
                    if xx[l] <= 0.0 {
                        gg[l] = 0.0;
                    }
                }
            }
            for (gi, xi) in gc.into_remainder().iter_mut().zip(xc.remainder()) {
                if *xi <= 0.0 {
                    *gi = 0.0;
                }
            }
        }
    }

    /// Hand-written AVX2 kernels (256-bit, 8 × f32 per operation).
    ///
    /// Each vector lane evaluates the exact scalar expression — separate
    /// `_mm256_mul_ps` and `_mm256_add_ps`, never an FMA — so the result
    /// is bit-identical to [`portable`] and
    /// [`reference`](crate::ops::reference). The tail (< 8 elements) runs
    /// the scalar expression directly.
    #[cfg(target_arch = "x86_64")]
    pub mod avx2 {
        #![deny(unsafe_op_in_unsafe_fn)]

        use core::arch::x86_64::{
            _mm256_add_ps, _mm256_and_ps, _mm256_andnot_ps, _mm256_castsi256_ps, _mm256_cmp_ps,
            _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_storeu_ps,
            _CMP_LE_OQ, _CMP_LT_OQ,
        };

        use super::LANES;

        /// `y += alpha * x` via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the lengths mismatch or the host lacks AVX2.
        pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
            assert_eq!(x.len(), y.len(), "axpy length mismatch");
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { axpy_impl(alpha, x, y) }
        }

        /// `y = alpha * x + beta * y` via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the lengths mismatch or the host lacks AVX2.
        pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
            assert_eq!(x.len(), y.len(), "axpby length mismatch");
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { axpby_impl(alpha, x, beta, y) }
        }

        /// `x *= alpha` via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the host lacks AVX2.
        pub fn scale(alpha: f32, x: &mut [f32]) {
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { scale_impl(alpha, x) }
        }

        /// `x[i] = value` via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the host lacks AVX2.
        pub fn fill(value: f32, x: &mut [f32]) {
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { fill_impl(value, x) }
        }

        /// `out[i] = |x[i]|` via 256-bit lanes (sign-bit AND — the exact
        /// bit operation of scalar `f32::abs`, including on NaN).
        ///
        /// # Panics
        ///
        /// Panics if the lengths mismatch or the host lacks AVX2.
        pub fn abs_into(x: &[f32], out: &mut [f32]) {
            assert_eq!(x.len(), out.len(), "abs_into length mismatch");
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { abs_into_impl(x, out) }
        }

        /// In-place ReLU via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the host lacks AVX2.
        pub fn relu(x: &mut [f32]) {
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { relu_impl(x) }
        }

        /// ReLU backward via 256-bit lanes.
        ///
        /// # Panics
        ///
        /// Panics if the lengths mismatch or the host lacks AVX2.
        pub fn relu_backward(forward_input: &[f32], grad: &mut [f32]) {
            assert_eq!(forward_input.len(), grad.len(), "relu_backward mismatch");
            assert!(super::avx2_available(), "host CPU lacks AVX2");
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { relu_backward_impl(forward_input, grad) }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn axpy_impl(alpha: f32, x: &[f32], y: &mut [f32]) {
            let n = x.len();
            let va = _mm256_set1_ps(alpha);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds both loads and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                    let vy = _mm256_loadu_ps(y.as_ptr().add(i));
                    // mul then add, two rounding steps: matches scalar
                    // `y + alpha * x` bitwise (an FMA would not).
                    _mm256_storeu_ps(
                        y.as_mut_ptr().add(i),
                        _mm256_add_ps(vy, _mm256_mul_ps(va, vx)),
                    );
                }
                i += LANES;
            }
            while i < n {
                y[i] += alpha * x[i];
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn axpby_impl(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
            let n = x.len();
            let va = _mm256_set1_ps(alpha);
            let vb = _mm256_set1_ps(beta);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds both loads and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                    let vy = _mm256_loadu_ps(y.as_ptr().add(i));
                    // alpha*x and beta*y each round once, then one add:
                    // the exact scalar evaluation order of `axpby`.
                    let r = _mm256_add_ps(_mm256_mul_ps(va, vx), _mm256_mul_ps(vb, vy));
                    _mm256_storeu_ps(y.as_mut_ptr().add(i), r);
                }
                i += LANES;
            }
            while i < n {
                y[i] = alpha * x[i] + beta * y[i];
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn scale_impl(alpha: f32, x: &mut [f32]) {
            let n = x.len();
            let va = _mm256_set1_ps(alpha);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds the load and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_mul_ps(vx, va));
                }
                i += LANES;
            }
            while i < n {
                x[i] *= alpha;
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn fill_impl(value: f32, x: &mut [f32]) {
            let n = x.len();
            let vv = _mm256_set1_ps(value);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds the store.
                unsafe {
                    _mm256_storeu_ps(x.as_mut_ptr().add(i), vv);
                }
                i += LANES;
            }
            while i < n {
                x[i] = value;
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn abs_into_impl(x: &[f32], out: &mut [f32]) {
            let n = x.len();
            // Clearing the sign bit is exactly what scalar `f32::abs`
            // does, for every input including NaN payloads.
            let mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds the load and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                    _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_and_ps(vx, mask));
                }
                i += LANES;
            }
            while i < n {
                out[i] = x[i].abs();
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn relu_impl(x: &mut [f32]) {
            let n = x.len();
            let zero = _mm256_set1_ps(0.0);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds the load and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(x.as_ptr().add(i));
                    // Mask of lanes with x < 0 (ordered: NaN compares
                    // false, so NaN lanes pass through — the scalar
                    // semantics). andnot zeroes exactly those lanes,
                    // leaving -0.0 and NaN untouched where a max() would
                    // not.
                    let neg = _mm256_cmp_ps::<_CMP_LT_OQ>(vx, zero);
                    _mm256_storeu_ps(x.as_mut_ptr().add(i), _mm256_andnot_ps(neg, vx));
                }
                i += LANES;
            }
            while i < n {
                if x[i] < 0.0 {
                    x[i] = 0.0;
                }
                i += 1;
            }
        }

        #[target_feature(enable = "avx2")]
        unsafe fn relu_backward_impl(forward_input: &[f32], grad: &mut [f32]) {
            let n = grad.len();
            let zero = _mm256_set1_ps(0.0);
            let mut i = 0;
            while i + LANES <= n {
                // SAFETY: `i + LANES <= n` bounds both loads and the store.
                unsafe {
                    let vx = _mm256_loadu_ps(forward_input.as_ptr().add(i));
                    let vg = _mm256_loadu_ps(grad.as_ptr().add(i));
                    // x <= 0 (ordered) selects the lanes to zero; NaN
                    // forward inputs compare false and keep their
                    // gradient, matching the scalar loop.
                    let dead = _mm256_cmp_ps::<_CMP_LE_OQ>(vx, zero);
                    _mm256_storeu_ps(grad.as_mut_ptr().add(i), _mm256_andnot_ps(dead, vg));
                }
                i += LANES;
            }
            while i < n {
                if forward_input[i] <= 0.0 {
                    grad[i] = 0.0;
                }
                i += 1;
            }
        }
    }
}

/// Naive scalar implementations of the vectorized kernels.
///
/// These are the bit-exactness oracles: the dispatched [`axpy`],
/// [`axpby`], [`scale`] and [`mean_into`] — and both [`simd`] backends
/// individually — must produce identical bits for every input (see
/// `tests/chunked_kernels.rs`). They are also the "scalar" side of the
/// `hot_path` benchmark.
pub mod reference {
    /// Scalar `y += alpha * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Scalar `y = alpha * x + beta * y`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` have different lengths.
    pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "axpby length mismatch");
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = alpha * xi + beta * *yi;
        }
    }

    /// Scalar `x *= alpha`.
    pub fn scale(alpha: f32, x: &mut [f32]) {
        for xi in x {
            *xi *= alpha;
        }
    }

    /// Scalar `x[i] = value`.
    pub fn fill(value: f32, x: &mut [f32]) {
        for xi in x {
            *xi = value;
        }
    }

    /// Scalar `out[i] = |x[i]|`.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `out` have different lengths.
    pub fn abs_into(x: &[f32], out: &mut [f32]) {
        assert_eq!(x.len(), out.len(), "abs_into length mismatch");
        for (oi, xi) in out.iter_mut().zip(x) {
            *oi = xi.abs();
        }
    }

    /// Scalar in-place ReLU (`-0.0` and NaN pass through).
    pub fn relu(x: &mut [f32]) {
        for xi in x {
            if *xi < 0.0 {
                *xi = 0.0;
            }
        }
    }

    /// Scalar ReLU backward.
    ///
    /// # Panics
    ///
    /// Panics if the lengths mismatch.
    pub fn relu_backward(forward_input: &[f32], grad: &mut [f32]) {
        assert_eq!(forward_input.len(), grad.len(), "relu_backward mismatch");
        for (gi, &xi) in grad.iter_mut().zip(forward_input) {
            if xi <= 0.0 {
                *gi = 0.0;
            }
        }
    }

    /// Scalar elementwise mean of several equally sized slices.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty or any input length differs from `out`.
    pub fn mean_into(inputs: &[&[f32]], out: &mut [f32]) {
        assert!(!inputs.is_empty(), "mean of zero slices");
        fill(0.0, out);
        for input in inputs {
            axpy(1.0, input, out);
        }
        scale(1.0 / inputs.len() as f32, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_works() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn axpby_works() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpby(2.0, &x, 0.5, &mut y);
        assert_eq!(y, [7.0, 14.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[3.0, 4.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn mean_into_averages() {
        let a = [1.0, 2.0];
        let b = [3.0, 6.0];
        let mut out = [0.0; 2];
        mean_into(&[&a, &b], &mut out);
        assert_eq!(out, [2.0, 4.0]);
    }

    #[test]
    fn weighted_mean_matches_eq2_shape() {
        // Two updates with weights 3 and 1: out = (3a + b)/4.
        let a = [4.0, 0.0];
        let b = [0.0, 4.0];
        let mut out = [0.0; 2];
        weighted_mean_into(&[&a, &b], &[3.0, 1.0], &mut out);
        assert_eq!(out, [3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "weight sum must be positive")]
    fn weighted_mean_rejects_zero_weights() {
        let a = [1.0];
        let mut out = [0.0];
        weighted_mean_into(&[&a[..]], &[0.0], &mut out);
    }

    #[test]
    fn gemv_identity() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let x = [5.0, 7.0];
        let mut y = [0.0; 2];
        gemv(&a, 2, 2, &x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn gemv_t_matches_manual() {
        // A = [[1,2],[3,4]] (2x2), x = [1,1] => A^T x = [4, 6]
        let a = [1.0, 2.0, 3.0, 4.0];
        let x = [1.0, 1.0];
        let mut y = [0.0; 2];
        gemv_t(&a, 2, 2, &x, &mut y);
        assert_eq!(y, [4.0, 6.0]);
    }

    #[test]
    fn gemm_small() {
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]] => C = [[19,22],[43,50]]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_rectangular() {
        // A (1x3) * B (3x2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let mut c = [0.0; 2];
        gemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [4.0, 5.0]);
    }

    #[test]
    fn relu_and_backward() {
        let input = [-1.0, 0.0, 2.0];
        let mut x = input;
        relu(&mut x);
        assert_eq!(x, [0.0, 0.0, 2.0]);
        let mut g = [1.0, 1.0, 1.0];
        relu_backward(&input, &mut g);
        assert_eq!(g, [0.0, 0.0, 1.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut x = [1000.0, 1001.0, 1002.0];
        softmax(&mut x);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }
}
