//! Deterministic update compression: top-k sparsification, int8
//! quantization and the identity codec, with error feedback.
//!
//! Every message path in the workspace ships flat `f32` blocks; this
//! module makes those blocks *small* without giving up the workspace's
//! determinism contract. Three codecs implement [`Compressor`]:
//!
//! * [`Identity`] — bit-exact round trip, the default. Call sites guard
//!   on [`CompressionConfig::is_identity`] and skip the codec entirely,
//!   so the identity configuration cannot perturb a single bit of an
//!   uncompressed run.
//! * [`TopK`] — keeps exactly `k = ceil(ratio * len)` entries of largest
//!   magnitude. Selection uses a *total* order on `(|v|, index)` —
//!   magnitudes compared with `f32::total_cmp`, ties broken by the lower
//!   index — so the kept set is a pure function of the input, never of
//!   allocator or partitioning luck. The magnitude scan itself is the
//!   SIMD-dispatched [`ops::abs_into`], which is bitwise identical to
//!   scalar `f32::abs` on every backend.
//! * [`Int8Uniform`] — per-block uniform quantization to `i8` at
//!   `scale = max|v| / 127`, rounding half to even
//!   (`f32::round_ties_even`). The reconstruction error of each entry is
//!   at most half a quantization step.
//!
//! Lossy codecs compound with [`ErrorFeedback`] (EF-SGD style): the
//! encoder compresses `input + residual` and stores what the decoder
//! will *not* reconstruct back into the residual, so dropped mass
//! re-enters the next message instead of biasing convergence. The
//! invariant, tested property-style in `tests/compress_props.rs`:
//! after `encode_into`, `decoded + residual == input + old_residual`
//! for every element.
//!
//! Encode scratch comes from a [`BufferPool`] and the output
//! [`CompressedBlock`] reuses its buffers across calls, so the hot path
//! allocates nothing after warmup (asserted by `compress_bench` through
//! [`BufferPool::stats`](crate::pool::BufferPool::stats)).

use crate::ops;
use crate::pool::BufferPool;

/// Which codec a runtime should apply to its parameter/update messages.
///
/// Carried by the protocol configurations in `hop-core`; the default is
/// [`CompressionConfig::Identity`], under which every runtime takes its
/// pre-compression code path unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum CompressionConfig {
    /// Ship dense `f32` blocks unchanged (the default).
    #[default]
    Identity,
    /// Keep the `ceil(ratio * len)` largest-magnitude entries
    /// (`0 < ratio <= 1`), error feedback on the rest.
    TopK {
        /// Fraction of entries kept, in `(0, 1]`.
        ratio: f32,
    },
    /// Uniform per-block quantization to `i8`, error feedback on the
    /// rounding error.
    Int8Uniform,
}

impl CompressionConfig {
    /// Whether this is the identity configuration (no codec on the
    /// message path).
    pub fn is_identity(&self) -> bool {
        matches!(self, CompressionConfig::Identity)
    }

    /// Entries a [`TopK`] encoder keeps for a block of `len` elements:
    /// `ceil(ratio * len)` clamped to `1..=len` (0 for an empty block).
    /// Identity and int8 keep all `len`.
    pub fn k_for(&self, len: usize) -> usize {
        match *self {
            CompressionConfig::TopK { ratio } => {
                if len == 0 {
                    0
                } else {
                    ((len as f64 * ratio as f64).ceil() as usize).clamp(1, len)
                }
            }
            _ => len,
        }
    }

    /// Short human/machine label (`identity`, `topk_0.01`, `int8`), used
    /// by sweep axes and bench summary lines.
    pub fn label(&self) -> String {
        match *self {
            CompressionConfig::Identity => "identity".to_string(),
            CompressionConfig::TopK { ratio } => format!("topk_{ratio}"),
            CompressionConfig::Int8Uniform => "int8".to_string(),
        }
    }

    /// Validates the knobs (finite `ratio` in `(0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns a static description of the offending knob.
    pub fn validate(&self) -> Result<(), &'static str> {
        match *self {
            CompressionConfig::TopK { ratio } => {
                if !ratio.is_finite() || ratio <= 0.0 || ratio > 1.0 {
                    Err("top-k ratio must be finite and in (0, 1]")
                } else {
                    Ok(())
                }
            }
            _ => Ok(()),
        }
    }

    /// Builds the codec this configuration names.
    pub fn codec(&self) -> Codec {
        match *self {
            CompressionConfig::Identity => Codec::Identity(Identity),
            CompressionConfig::TopK { ratio } => Codec::TopK(TopK::new(ratio)),
            CompressionConfig::Int8Uniform => Codec::Int8(Int8Uniform),
        }
    }
}

/// One encoded message: the wire representation a codec produces.
///
/// The enum is reused across `encode_into` calls (each codec always
/// produces its own variant, so the inner buffers keep their capacity).
/// [`CompressedBlock::encoded_bytes`] is the size the virtual network
/// charges for shipping it.
#[derive(Debug, Clone, PartialEq)]
pub enum CompressedBlock {
    /// Dense `f32` values, 4 bytes each (the [`Identity`] wire format).
    Dense {
        /// The values, verbatim.
        values: Vec<f32>,
    },
    /// Sparse `(index, value)` pairs from [`TopK`]: a 4-byte length
    /// header plus 8 bytes per kept entry.
    Sparse {
        /// Decoded block length.
        len: u32,
        /// Kept positions, strictly ascending (the canonical order).
        indices: Vec<u32>,
        /// Kept values, parallel to `indices`.
        values: Vec<f32>,
    },
    /// [`Int8Uniform`] output: a 4-byte length word, the 4-byte f32
    /// scale, then one byte per entry.
    Quantized {
        /// Dequantization step: `value = q as f32 * scale`.
        scale: f32,
        /// The quantized entries.
        values: Vec<i8>,
    },
}

impl Default for CompressedBlock {
    fn default() -> Self {
        CompressedBlock::Dense { values: Vec::new() }
    }
}

impl CompressedBlock {
    /// Bytes this block occupies on the wire — virtual (the simulated
    /// network's transfer charge) and real (`hop_wire` frames a block in
    /// exactly this many payload bytes): dense `4·len`, sparse
    /// `4 + 8·k` (length word + `(index, value)` pairs), int8
    /// `4 + 4 + len` (length word + the f32 scale + one byte per entry).
    pub fn encoded_bytes(&self) -> u64 {
        match self {
            CompressedBlock::Dense { values } => 4 * values.len() as u64,
            CompressedBlock::Sparse { indices, .. } => 4 + 8 * indices.len() as u64,
            CompressedBlock::Quantized { values, .. } => 4 + 4 + values.len() as u64,
        }
    }

    /// Length of the dense block this decodes to.
    pub fn decoded_len(&self) -> usize {
        match self {
            CompressedBlock::Dense { values } => values.len(),
            CompressedBlock::Sparse { len, .. } => *len as usize,
            CompressedBlock::Quantized { values, .. } => values.len(),
        }
    }

    /// Reuses (or installs) the dense variant, returning its buffer.
    fn make_dense(&mut self) -> &mut Vec<f32> {
        if !matches!(self, CompressedBlock::Dense { .. }) {
            *self = CompressedBlock::Dense { values: Vec::new() };
        }
        match self {
            CompressedBlock::Dense { values } => values,
            _ => unreachable!(),
        }
    }

    /// Reuses (or installs) the sparse variant, returning its buffers.
    fn make_sparse(&mut self, new_len: u32) -> (&mut Vec<u32>, &mut Vec<f32>) {
        if !matches!(self, CompressedBlock::Sparse { .. }) {
            *self = CompressedBlock::Sparse {
                len: 0,
                indices: Vec::new(),
                values: Vec::new(),
            };
        }
        match self {
            CompressedBlock::Sparse {
                len,
                indices,
                values,
            } => {
                *len = new_len;
                (indices, values)
            }
            _ => unreachable!(),
        }
    }

    /// Reuses (or installs) the quantized variant, returning its buffer.
    fn make_quantized(&mut self, new_scale: f32) -> &mut Vec<i8> {
        if !matches!(self, CompressedBlock::Quantized { .. }) {
            *self = CompressedBlock::Quantized {
                scale: 0.0,
                values: Vec::new(),
            };
        }
        match self {
            CompressedBlock::Quantized { scale, values } => {
                *scale = new_scale;
                values
            }
            _ => unreachable!(),
        }
    }
}

/// Per-sender error-feedback residual: the mass the last lossy encode
/// dropped, re-injected into the next message.
#[derive(Debug, Clone, Default)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// A fresh zero residual (sized lazily on first encode).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current residual (empty before the first encode).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Zeroes the residual (keeping its allocation). Callers whose
    /// message stream already re-injects unsent mass on its own — e.g. a
    /// reference-tracking parameter stream encoding `x - x̂` — reset
    /// before each encode so the dropped mass is not counted twice.
    pub fn reset(&mut self) {
        self.residual.iter_mut().for_each(|r| *r = 0.0);
    }

    fn ensure(&mut self, len: usize) {
        if self.residual.len() != len {
            self.residual.clear();
            self.residual.resize(len, 0.0);
        }
    }
}

/// A deterministic message codec with error feedback.
///
/// `encode_into` compresses `input + ef.residual` into `out` and updates
/// `ef` with what `decode_into` will not reconstruct; scratch comes from
/// `pool` so steady state allocates nothing. `decode_into` writes the
/// reconstruction of `block` over `out` (which must have
/// [`CompressedBlock::decoded_len`] elements).
pub trait Compressor {
    /// Encodes one block, consuming and refreshing the error feedback.
    fn encode_into(
        &mut self,
        input: &[f32],
        ef: &mut ErrorFeedback,
        pool: &mut BufferPool,
        out: &mut CompressedBlock,
    );

    /// Reconstructs a block into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != block.decoded_len()`.
    fn decode_into(&self, block: &CompressedBlock, out: &mut [f32]);
}

/// The no-op codec: dense values, bitwise round trip, residual untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Compressor for Identity {
    fn encode_into(
        &mut self,
        input: &[f32],
        _ef: &mut ErrorFeedback,
        _pool: &mut BufferPool,
        out: &mut CompressedBlock,
    ) {
        let values = out.make_dense();
        values.clear();
        values.extend_from_slice(input);
    }

    fn decode_into(&self, block: &CompressedBlock, out: &mut [f32]) {
        match block {
            CompressedBlock::Dense { values } => {
                assert_eq!(values.len(), out.len(), "identity decode length mismatch");
                out.copy_from_slice(values);
            }
            _ => panic!("identity codec fed a non-dense block"),
        }
    }
}

/// Exact top-`k` magnitude sparsification with a stable `(|v|, index)`
/// tie-break and error feedback.
#[derive(Debug, Clone)]
pub struct TopK {
    ratio: f32,
    /// Index permutation scratch, reused across encodes.
    order: Vec<u32>,
}

impl TopK {
    /// A top-k encoder keeping `ceil(ratio * len)` entries per block.
    pub fn new(ratio: f32) -> Self {
        debug_assert!(
            ratio.is_finite() && ratio > 0.0 && ratio <= 1.0,
            "top-k ratio must be in (0, 1], got {ratio}"
        );
        Self {
            ratio,
            order: Vec::new(),
        }
    }
}

impl Compressor for TopK {
    fn encode_into(
        &mut self,
        input: &[f32],
        ef: &mut ErrorFeedback,
        pool: &mut BufferPool,
        out: &mut CompressedBlock,
    ) {
        let len = input.len();
        ef.ensure(len);
        let mut work = pool.acquire(len);
        work.copy_from_slice(input);
        ops::axpy(1.0, &ef.residual, &mut work);
        let mut abs = pool.acquire(len);
        ops::abs_into(&work, &mut abs);
        let k = CompressionConfig::TopK { ratio: self.ratio }.k_for(len);
        self.order.clear();
        self.order.extend(0..len as u32);
        if k < len {
            // Total order: larger magnitude first, lower index on ties —
            // the kept set is unique, so selection is deterministic even
            // though select_nth itself is "unstable".
            let a = &abs;
            self.order.select_nth_unstable_by(k, |&i, &j| {
                a[j as usize]
                    .total_cmp(&a[i as usize])
                    .then_with(|| i.cmp(&j))
            });
            self.order.truncate(k);
        }
        // Canonical wire order: ascending index.
        self.order.sort_unstable();
        let (indices, values) = out.make_sparse(len as u32);
        indices.clear();
        values.clear();
        for &i in &self.order {
            indices.push(i);
            values.push(work[i as usize]);
        }
        // Kept entries decode exactly, so their residual is zero; every
        // dropped entry carries its full (feedback-compounded) value.
        ef.residual.copy_from_slice(&work);
        for &i in &self.order {
            ef.residual[i as usize] = 0.0;
        }
        pool.release(abs);
        pool.release(work);
    }

    fn decode_into(&self, block: &CompressedBlock, out: &mut [f32]) {
        match block {
            CompressedBlock::Sparse {
                len,
                indices,
                values,
            } => {
                assert_eq!(*len as usize, out.len(), "top-k decode length mismatch");
                ops::fill(0.0, out);
                for (&i, &v) in indices.iter().zip(values) {
                    out[i as usize] = v;
                }
            }
            _ => panic!("top-k codec fed a non-sparse block"),
        }
    }
}

/// Uniform int8 quantization at `scale = max|v| / 127`, round half to
/// even, with error feedback on the rounding error.
#[derive(Debug, Clone, Copy, Default)]
pub struct Int8Uniform;

impl Compressor for Int8Uniform {
    fn encode_into(
        &mut self,
        input: &[f32],
        ef: &mut ErrorFeedback,
        pool: &mut BufferPool,
        out: &mut CompressedBlock,
    ) {
        let len = input.len();
        ef.ensure(len);
        let mut work = pool.acquire(len);
        work.copy_from_slice(input);
        ops::axpy(1.0, &ef.residual, &mut work);
        let mut abs = pool.acquire(len);
        ops::abs_into(&work, &mut abs);
        // Scalar sequential max: the reduction feeds the wire format, so
        // it must not reassociate (same rule as `ops::dot`).
        let max_abs = abs.iter().copied().fold(0.0f32, f32::max);
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 0.0 };
        let values = out.make_quantized(scale);
        values.clear();
        for (r, &w) in ef.residual.iter_mut().zip(work.iter()) {
            let q = if scale > 0.0 {
                (w / scale).round_ties_even().clamp(-127.0, 127.0) as i8
            } else {
                0
            };
            values.push(q);
            *r = w - q as f32 * scale;
        }
        pool.release(abs);
        pool.release(work);
    }

    fn decode_into(&self, block: &CompressedBlock, out: &mut [f32]) {
        match block {
            CompressedBlock::Quantized { scale, values } => {
                assert_eq!(values.len(), out.len(), "int8 decode length mismatch");
                for (o, &q) in out.iter_mut().zip(values) {
                    *o = q as f32 * scale;
                }
            }
            _ => panic!("int8 codec fed a non-quantized block"),
        }
    }
}

/// Enum dispatch over the three codecs — one concrete type a runtime can
/// hold without boxing a trait object.
#[derive(Debug, Clone)]
pub enum Codec {
    /// [`Identity`].
    Identity(Identity),
    /// [`TopK`].
    TopK(TopK),
    /// [`Int8Uniform`].
    Int8(Int8Uniform),
}

impl Codec {
    /// The codec for `cfg` (alias of [`CompressionConfig::codec`]).
    pub fn new(cfg: CompressionConfig) -> Self {
        cfg.codec()
    }
}

impl Compressor for Codec {
    fn encode_into(
        &mut self,
        input: &[f32],
        ef: &mut ErrorFeedback,
        pool: &mut BufferPool,
        out: &mut CompressedBlock,
    ) {
        match self {
            Codec::Identity(c) => c.encode_into(input, ef, pool, out),
            Codec::TopK(c) => c.encode_into(input, ef, pool, out),
            Codec::Int8(c) => c.encode_into(input, ef, pool, out),
        }
    }

    fn decode_into(&self, block: &CompressedBlock, out: &mut [f32]) {
        match self {
            Codec::Identity(c) => c.decode_into(block, out),
            Codec::TopK(c) => c.decode_into(block, out),
            Codec::Int8(c) => c.decode_into(block, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(cfg: CompressionConfig, input: &[f32]) -> (CompressedBlock, Vec<f32>, Vec<f32>) {
        let mut codec = cfg.codec();
        let mut ef = ErrorFeedback::new();
        let mut pool = BufferPool::new();
        let mut block = CompressedBlock::default();
        codec.encode_into(input, &mut ef, &mut pool, &mut block);
        let mut out = vec![0.0; block.decoded_len()];
        codec.decode_into(&block, &mut out);
        (block, out, ef.residual().to_vec())
    }

    #[test]
    fn identity_roundtrips_bitwise() {
        let input = [1.5f32, -0.0, 3.25, f32::MIN_POSITIVE];
        let (block, out, residual) = roundtrip(CompressionConfig::Identity, &input);
        assert_eq!(block.encoded_bytes(), 16);
        for (a, b) in input.iter().zip(&out) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(residual.is_empty(), "identity must not touch the residual");
    }

    #[test]
    fn topk_keeps_exactly_k_largest() {
        let input = [0.1f32, -5.0, 0.2, 4.0, -0.3, 3.0, 0.4, -2.0];
        let cfg = CompressionConfig::TopK { ratio: 0.5 };
        let (block, out, residual) = roundtrip(cfg, &input);
        match &block {
            CompressedBlock::Sparse {
                indices, values, ..
            } => {
                assert_eq!(indices, &[1, 3, 5, 7]);
                assert_eq!(values, &[-5.0, 4.0, 3.0, -2.0]);
            }
            other => panic!("expected sparse, got {other:?}"),
        }
        assert_eq!(block.encoded_bytes(), 4 + 8 * 4);
        // decoded + residual reconstructs the input exactly (fresh EF).
        for ((&x, &d), &r) in input.iter().zip(&out).zip(&residual) {
            assert_eq!(x, d + r);
        }
    }

    #[test]
    fn topk_tie_break_is_lowest_index() {
        let input = [2.0f32, -2.0, 2.0, 1.0];
        let (block, ..) = roundtrip(CompressionConfig::TopK { ratio: 0.5 }, &input);
        match block {
            CompressedBlock::Sparse { indices, .. } => assert_eq!(indices, &[0, 1]),
            other => panic!("expected sparse, got {other:?}"),
        }
    }

    #[test]
    fn int8_error_within_half_step() {
        let input = [1.0f32, -0.5, 0.30, 0.127, -1.27];
        let (block, out, _) = roundtrip(CompressionConfig::Int8Uniform, &input);
        let scale = match block {
            CompressedBlock::Quantized { scale, .. } => scale,
            other => panic!("expected quantized, got {other:?}"),
        };
        assert!(scale > 0.0);
        for (x, d) in input.iter().zip(&out) {
            assert!((x - d).abs() <= scale * 0.5000001, "{x} vs {d} at {scale}");
        }
    }

    #[test]
    fn int8_all_zero_block() {
        let input = [0.0f32; 5];
        let (block, out, residual) = roundtrip(CompressionConfig::Int8Uniform, &input);
        // Length word + f32 scale + one byte per entry: the scale must be
        // accounted even when zero — a real frame still carries it.
        assert_eq!(block.encoded_bytes(), 4 + 4 + 5);
        assert_eq!(out, vec![0.0; 5]);
        assert_eq!(residual, vec![0.0; 5]);
    }

    #[test]
    fn error_feedback_reinjects_dropped_mass() {
        // A value too small to ever win top-1 still accumulates in the
        // residual until... it keeps being carried (never silently lost).
        let mut codec = CompressionConfig::TopK { ratio: 0.01 }.codec();
        let mut ef = ErrorFeedback::new();
        let mut pool = BufferPool::new();
        let mut block = CompressedBlock::default();
        let input = [10.0f32, 0.25];
        codec.encode_into(&input, &mut ef, &mut pool, &mut block);
        assert_eq!(ef.residual(), &[0.0, 0.25]);
        codec.encode_into(&input, &mut ef, &mut pool, &mut block);
        assert_eq!(ef.residual(), &[0.0, 0.5]);
    }

    #[test]
    fn k_for_clamps() {
        let cfg = CompressionConfig::TopK { ratio: 0.01 };
        assert_eq!(cfg.k_for(0), 0);
        assert_eq!(cfg.k_for(1), 1);
        assert_eq!(cfg.k_for(50), 1);
        assert_eq!(cfg.k_for(64 * 1024), 656);
        assert_eq!(CompressionConfig::Identity.k_for(7), 7);
    }

    #[test]
    fn labels_and_validation() {
        assert_eq!(CompressionConfig::Identity.label(), "identity");
        assert_eq!(CompressionConfig::TopK { ratio: 0.1 }.label(), "topk_0.1");
        assert_eq!(CompressionConfig::Int8Uniform.label(), "int8");
        assert!(CompressionConfig::default().is_identity());
        assert!(CompressionConfig::TopK { ratio: 0.5 }.validate().is_ok());
        assert!(CompressionConfig::TopK { ratio: 0.0 }.validate().is_err());
        assert!(CompressionConfig::TopK { ratio: 1.5 }.validate().is_err());
        assert!(CompressionConfig::TopK { ratio: f32::NAN }
            .validate()
            .is_err());
    }

    #[test]
    fn encode_is_allocation_free_after_warmup() {
        for cfg in [
            CompressionConfig::Identity,
            CompressionConfig::TopK { ratio: 0.1 },
            CompressionConfig::Int8Uniform,
        ] {
            let mut codec = cfg.codec();
            let mut ef = ErrorFeedback::new();
            let mut pool = BufferPool::new();
            let mut block = CompressedBlock::default();
            let input: Vec<f32> = (0..257).map(|i| (i as f32).sin()).collect();
            let mut out = vec![0.0; input.len()];
            codec.encode_into(&input, &mut ef, &mut pool, &mut block);
            codec.decode_into(&block, &mut out);
            let warm = pool.stats();
            for _ in 0..10 {
                codec.encode_into(&input, &mut ef, &mut pool, &mut block);
                codec.decode_into(&block, &mut out);
            }
            let after = pool.stats();
            assert_eq!(
                after.fresh,
                warm.fresh,
                "{} hot path allocated after warmup",
                cfg.label()
            );
        }
    }
}
