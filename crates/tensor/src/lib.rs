//! Minimal dense tensor and linear-algebra kernels for the Hop reproduction.
//!
//! The models in `hop-model` (SVM, MLP, tiny CNN) and the spectral analysis
//! in `hop-graph` only need a small set of dense operations: GEMM/GEMV on
//! row-major `f32` buffers, elementwise vector arithmetic, and a simple
//! shape-carrying [`Tensor`]. Everything is implemented here from scratch;
//! no BLAS or external linear-algebra crate is used.
//!
//! The crate also provides the zero-copy parameter plane used by every
//! runtime in `hop-core`: [`ParamBlock`] (an `Arc`-shared flat buffer with
//! O(1) snapshots and copy-on-write mutation) and [`BufferPool`] (recycled
//! zeroed scratch buffers), plus SIMD-dispatched elementwise kernels in
//! [`ops`] (runtime-selected AVX2 on capable x86-64, 8-lane portable
//! otherwise) that are bit-identical to their scalar references, and the
//! deterministic update-compression codecs in [`compress`] (top-k
//! sparsification, int8 quantization, identity — all with error
//! feedback) that shrink every message path in the runtimes.
//!
//! # Examples
//!
//! ```
//! use hop_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

pub mod compress;
pub mod ops;
pub mod param_block;
pub mod pool;
pub mod tensor;

pub use compress::{Codec, CompressedBlock, CompressionConfig, Compressor, ErrorFeedback};
pub use param_block::ParamBlock;
pub use pool::{BufferPool, PoolStats};
pub use tensor::Tensor;
