//! Bit-exactness properties of the SIMD-dispatched vector kernels and
//! the sharing guarantees of [`ParamBlock`].
//!
//! The dispatched `axpy`/`axpby`/`scale`/`mean_into` — and both
//! `ops::simd` backends (portable 8-lane, AVX2 where the host supports
//! it) individually — must produce the *same bits* as the naive scalar
//! references in `ops::reference` for every length, in particular
//! across the remainder boundary (lengths that are not lane multiples).
//! Lengths 0–67 cover empty, sub-lane, exact-multiple and remainder
//! cases.

use hop_tensor::{ops, ParamBlock};
use proptest::prelude::*;

/// Deterministic pseudo-random values in roughly [-4, 4].
fn values(mut seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            let raw = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((raw >> 40) as f32 / (1u64 << 24) as f32) * 8.0 - 4.0
        })
        .collect()
}

fn bits(x: &[f32]) -> Vec<u32> {
    x.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn axpy_matches_reference_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        let alpha = values(seed ^ 0xA1, 1).first().copied().unwrap_or(0.0);
        let x = values(seed, len);
        let y0 = values(seed ^ 0xB2, len);
        let mut chunked = y0.clone();
        let mut scalar = y0;
        ops::axpy(alpha, &x, &mut chunked);
        ops::reference::axpy(alpha, &x, &mut scalar);
        prop_assert_eq!(bits(&chunked), bits(&scalar));
    }

    #[test]
    fn axpby_matches_reference_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        let coeffs = values(seed ^ 0xC3, 2);
        let (alpha, beta) = (coeffs.first().copied().unwrap_or(0.5), coeffs[1]);
        let x = values(seed, len);
        let y0 = values(seed ^ 0xD4, len);
        let mut chunked = y0.clone();
        let mut scalar = y0;
        ops::axpby(alpha, &x, beta, &mut chunked);
        ops::reference::axpby(alpha, &x, beta, &mut scalar);
        prop_assert_eq!(bits(&chunked), bits(&scalar));
    }

    #[test]
    fn scale_matches_reference_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        let alpha = values(seed ^ 0xE5, 1).first().copied().unwrap_or(0.0);
        let x0 = values(seed, len);
        let mut chunked = x0.clone();
        let mut scalar = x0;
        ops::scale(alpha, &mut chunked);
        ops::reference::scale(alpha, &mut scalar);
        prop_assert_eq!(bits(&chunked), bits(&scalar));
    }

    #[test]
    fn mean_into_matches_reference_bitwise(
        len in 0usize..68,
        n_inputs in 1usize..5,
        seed in 0u64..1_000_000_000,
    ) {
        let inputs: Vec<Vec<f32>> = (0..n_inputs)
            .map(|i| values(seed ^ (i as u64 + 1), len))
            .collect();
        let views: Vec<&[f32]> = inputs.iter().map(Vec::as_slice).collect();
        let mut chunked = vec![1.0f32; len];
        let mut scalar = vec![1.0f32; len];
        ops::mean_into(&views, &mut chunked);
        ops::reference::mean_into(&views, &mut scalar);
        prop_assert_eq!(bits(&chunked), bits(&scalar));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn portable_backend_matches_reference_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        let coeffs = values(seed ^ 0xF6, 2);
        let (alpha, beta) = (coeffs.first().copied().unwrap_or(0.5), coeffs.get(1).copied().unwrap_or(-0.5));
        let x = values(seed, len);
        let y0 = values(seed ^ 0x17, len);

        let mut simd = y0.clone();
        let mut scalar = y0.clone();
        ops::simd::portable::axpy(alpha, &x, &mut simd);
        ops::reference::axpy(alpha, &x, &mut scalar);
        prop_assert_eq!(bits(&simd), bits(&scalar));

        let mut simd = y0.clone();
        let mut scalar = y0.clone();
        ops::simd::portable::axpby(alpha, &x, beta, &mut simd);
        ops::reference::axpby(alpha, &x, beta, &mut scalar);
        prop_assert_eq!(bits(&simd), bits(&scalar));

        let mut simd = y0.clone();
        let mut scalar = y0;
        ops::simd::portable::scale(alpha, &mut simd);
        ops::reference::scale(alpha, &mut scalar);
        prop_assert_eq!(bits(&simd), bits(&scalar));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_backend_matches_reference_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        if ops::simd::avx2_available() {
            let coeffs = values(seed ^ 0x28, 2);
            let (alpha, beta) = (coeffs.first().copied().unwrap_or(0.5), coeffs.get(1).copied().unwrap_or(-0.5));
            let x = values(seed, len);
            let y0 = values(seed ^ 0x39, len);

            let mut simd = y0.clone();
            let mut scalar = y0.clone();
            ops::simd::avx2::axpy(alpha, &x, &mut simd);
            ops::reference::axpy(alpha, &x, &mut scalar);
            prop_assert_eq!(bits(&simd), bits(&scalar));

            let mut simd = y0.clone();
            let mut scalar = y0.clone();
            ops::simd::avx2::axpby(alpha, &x, beta, &mut simd);
            ops::reference::axpby(alpha, &x, beta, &mut scalar);
            prop_assert_eq!(bits(&simd), bits(&scalar));

            let mut simd = y0.clone();
            let mut scalar = y0;
            ops::simd::avx2::scale(alpha, &mut simd);
            ops::reference::scale(alpha, &mut scalar);
            prop_assert_eq!(bits(&simd), bits(&scalar));
        }
    }
}

/// The two explicit backends must agree with each other bitwise on an
/// AVX2 host (skipped, trivially, elsewhere) — including values where an
/// FMA-contracted kernel would diverge from mul-then-add.
#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_and_portable_backends_agree_bitwise() {
    if !ops::simd::avx2_available() {
        return;
    }
    for len in 0..=67usize {
        let x = values(len as u64 + 201, len);
        let y0 = values(len as u64 + 307, len);
        // 1/3 is inexact in binary: alpha * x rounds, so a fused
        // multiply-add would produce different low bits than mul + add.
        let alpha = 1.0f32 / 3.0;
        let beta = -2.0f32 / 3.0;

        let mut a = y0.clone();
        let mut b = y0.clone();
        ops::simd::avx2::axpy(alpha, &x, &mut a);
        ops::simd::portable::axpy(alpha, &x, &mut b);
        assert_eq!(bits(&a), bits(&b), "axpy len {len}");

        let mut a = y0.clone();
        let mut b = y0.clone();
        ops::simd::avx2::axpby(alpha, &x, beta, &mut a);
        ops::simd::portable::axpby(alpha, &x, beta, &mut b);
        assert_eq!(bits(&a), bits(&b), "axpby len {len}");

        let mut a = y0.clone();
        let mut b = y0;
        ops::simd::avx2::scale(alpha, &mut a);
        ops::simd::portable::scale(alpha, &mut b);
        assert_eq!(bits(&a), bits(&b), "scale len {len}");
    }
}

/// Exhaustive sweep over every length in 0..=67 (the property tests
/// sample; this pins the full remainder-boundary range).
#[test]
fn every_length_up_to_67_is_bit_identical() {
    for len in 0..=67usize {
        let x = values(len as u64 + 11, len);
        let y0 = values(len as u64 + 97, len);

        let mut chunked = y0.clone();
        let mut scalar = y0.clone();
        ops::axpy(1.5, &x, &mut chunked);
        ops::reference::axpy(1.5, &x, &mut scalar);
        assert_eq!(bits(&chunked), bits(&scalar), "axpy len {len}");

        let mut chunked = y0.clone();
        let mut scalar = y0.clone();
        ops::axpby(-0.25, &x, 0.75, &mut chunked);
        ops::reference::axpby(-0.25, &x, 0.75, &mut scalar);
        assert_eq!(bits(&chunked), bits(&scalar), "axpby len {len}");

        let mut chunked = y0.clone();
        let mut scalar = y0;
        ops::scale(std::f32::consts::PI, &mut chunked);
        ops::reference::scale(std::f32::consts::PI, &mut scalar);
        assert_eq!(bits(&chunked), bits(&scalar), "scale len {len}");
    }
}

/// Exhaustive 0..=67 sweep for the elementwise kernels added to the
/// dispatch layer (`fill`, `abs_into`, `relu`, `relu_backward`): the
/// dispatched entry point and both explicit backends must match the
/// scalar reference bit for bit, including at remainder lengths and on
/// negative zeros (where a naive `max(0, x)` and a sign-mask select can
/// legally disagree).
#[test]
fn elementwise_kernels_are_bit_identical_up_to_67() {
    for len in 0..=67usize {
        // Mix in exact zeros and negative zeros alongside random values.
        let mut x = values(len as u64 + 53, len);
        for (i, v) in x.iter_mut().enumerate() {
            match i % 7 {
                3 => *v = 0.0,
                5 => *v = -0.0,
                _ => {}
            }
        }
        let g0 = values(len as u64 + 131, len);

        type FillFn = fn(f32, &mut [f32]);
        let fill_impls: Vec<(&str, FillFn)> = vec![
            ("dispatch", ops::fill),
            ("portable", ops::simd::portable::fill),
            #[cfg(target_arch = "x86_64")]
            ("avx2", ops::simd::avx2::fill),
        ];
        for (name, f) in fill_impls {
            #[cfg(target_arch = "x86_64")]
            if name == "avx2" && !ops::simd::avx2_available() {
                continue;
            }
            let mut out = g0.clone();
            let mut expect = g0.clone();
            f(-1.25, &mut out);
            ops::reference::fill(-1.25, &mut expect);
            assert_eq!(bits(&out), bits(&expect), "fill/{name} len {len}");
        }

        type AbsFn = fn(&[f32], &mut [f32]);
        let abs_impls: Vec<(&str, AbsFn)> = vec![
            ("dispatch", ops::abs_into),
            ("portable", ops::simd::portable::abs_into),
            #[cfg(target_arch = "x86_64")]
            ("avx2", ops::simd::avx2::abs_into),
        ];
        for (name, f) in abs_impls {
            #[cfg(target_arch = "x86_64")]
            if name == "avx2" && !ops::simd::avx2_available() {
                continue;
            }
            let mut out = vec![9.0f32; len];
            let mut expect = vec![9.0f32; len];
            f(&x, &mut out);
            ops::reference::abs_into(&x, &mut expect);
            assert_eq!(bits(&out), bits(&expect), "abs_into/{name} len {len}");
        }

        type ReluFn = fn(&mut [f32]);
        let relu_impls: Vec<(&str, ReluFn)> = vec![
            ("dispatch", ops::relu),
            ("portable", ops::simd::portable::relu),
            #[cfg(target_arch = "x86_64")]
            ("avx2", ops::simd::avx2::relu),
        ];
        for (name, f) in relu_impls {
            #[cfg(target_arch = "x86_64")]
            if name == "avx2" && !ops::simd::avx2_available() {
                continue;
            }
            let mut out = x.clone();
            let mut expect = x.clone();
            f(&mut out);
            ops::reference::relu(&mut expect);
            assert_eq!(bits(&out), bits(&expect), "relu/{name} len {len}");
        }

        type ReluBackFn = fn(&[f32], &mut [f32]);
        let relu_back_impls: Vec<(&str, ReluBackFn)> = vec![
            ("dispatch", ops::relu_backward),
            ("portable", ops::simd::portable::relu_backward),
            #[cfg(target_arch = "x86_64")]
            ("avx2", ops::simd::avx2::relu_backward),
        ];
        for (name, f) in relu_back_impls {
            #[cfg(target_arch = "x86_64")]
            if name == "avx2" && !ops::simd::avx2_available() {
                continue;
            }
            let mut out = g0.clone();
            let mut expect = g0.clone();
            f(&x, &mut out);
            ops::reference::relu_backward(&x, &mut expect);
            assert_eq!(bits(&out), bits(&expect), "relu_backward/{name} len {len}");
        }
    }
}

/// The acceptance check for the zero-copy plane: a snapshot is a
/// refcount bump on the same allocation, not a copy.
#[test]
fn snapshot_shares_the_allocation() {
    let block = ParamBlock::from_vec(values(3, 256));
    assert_eq!(block.strong_count(), 1);
    let sent_to_neighbor = block.snapshot();
    let queued = block.snapshot();
    assert_eq!(block.strong_count(), 3);
    assert!(sent_to_neighbor.ptr_eq(&block) && queued.ptr_eq(&block));
    assert_eq!(
        sent_to_neighbor.as_slice().as_ptr(),
        block.as_slice().as_ptr()
    );
    drop(queued);
    assert_eq!(block.strong_count(), 2);
}
