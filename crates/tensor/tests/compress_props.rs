//! Property tests for the deterministic message codecs in
//! [`hop_tensor::compress`].
//!
//! The invariants pinned here are the ones the communication plane is
//! built on: the identity codec round-trips bitwise, top-k keeps exactly
//! `k_for(len)` entries with canonical ascending indices, error feedback
//! conserves mass (`decoded + new_residual == input + old_residual`),
//! int8 reconstruction stays within half a quantization step, and ties
//! break deterministically by index. Lengths 0..=67 exercise empty,
//! sub-lane, lane-multiple and remainder blocks.

use hop_tensor::{
    BufferPool, Codec, CompressedBlock, CompressionConfig, Compressor, ErrorFeedback,
};
use proptest::prelude::*;

/// Deterministic pseudo-random values in roughly [-4, 4], with exact
/// zeros mixed in.
fn values(mut seed: u64, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            seed ^= seed >> 12;
            seed ^= seed << 25;
            seed ^= seed >> 27;
            let raw = seed.wrapping_mul(0x2545_F491_4F6C_DD1D);
            if i % 11 == 7 {
                0.0
            } else {
                ((raw >> 40) as f32 / (1u64 << 24) as f32) * 8.0 - 4.0
            }
        })
        .collect()
}

fn encode(codec: &mut Codec, input: &[f32], ef: &mut ErrorFeedback) -> (CompressedBlock, Vec<f32>) {
    let mut pool = BufferPool::new();
    let mut block = CompressedBlock::default();
    codec.encode_into(input, ef, &mut pool, &mut block);
    let mut decoded = vec![0.0f32; block.decoded_len()];
    codec.decode_into(&block, &mut decoded);
    (block, decoded)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn identity_round_trips_bitwise(len in 0usize..68, seed in 0u64..1_000_000_000) {
        let input = values(seed, len);
        let mut codec = Codec::new(CompressionConfig::Identity);
        let mut ef = ErrorFeedback::new();
        let (block, decoded) = encode(&mut codec, &input, &mut ef);
        prop_assert_eq!(block.encoded_bytes(), 4 * len as u64);
        let in_bits: Vec<u32> = input.iter().map(|v| v.to_bits()).collect();
        let out_bits: Vec<u32> = decoded.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(in_bits, out_bits);
        prop_assert!(ef.residual().iter().all(|&r| r == 0.0), "identity must not leave residue");
    }

    #[test]
    fn topk_keeps_exactly_k_canonical_entries(
        len in 1usize..68,
        seed in 0u64..1_000_000_000,
        ratio_pct in 1u32..101,
    ) {
        let cfg = CompressionConfig::TopK { ratio: ratio_pct as f32 / 100.0 };
        let input = values(seed, len);
        let mut codec = Codec::new(cfg);
        let mut ef = ErrorFeedback::new();
        let (block, _) = encode(&mut codec, &input, &mut ef);
        let CompressedBlock::Sparse { len: blen, indices, values } = &block else {
            panic!("top-k must produce a sparse block");
        };
        prop_assert_eq!(*blen as usize, len);
        prop_assert_eq!(indices.len(), cfg.k_for(len));
        prop_assert_eq!(values.len(), indices.len());
        prop_assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly ascending"
        );
        // Exactness of the selection: every dropped magnitude is <= every
        // kept magnitude (the kept set is a true top-k by |value|).
        let kept: Vec<bool> = {
            let mut k = vec![false; len];
            for &i in indices {
                k[i as usize] = true;
            }
            k
        };
        let min_kept = indices
            .iter()
            .map(|&i| input[i as usize].abs())
            .fold(f32::INFINITY, f32::min);
        for (i, v) in input.iter().enumerate() {
            if !kept[i] {
                prop_assert!(v.abs() <= min_kept, "dropped |{v}| above kept minimum {min_kept}");
            }
        }
    }

    #[test]
    fn error_feedback_conserves_mass_for_topk(
        len in 1usize..68,
        seed in 0u64..1_000_000_000,
    ) {
        // decoded + new_residual == input + old_residual, exactly: top-k
        // either ships a compensated value verbatim (residual 0) or
        // drops it whole into the residual.
        let mut codec = Codec::new(CompressionConfig::TopK { ratio: 0.25 });
        let mut ef = ErrorFeedback::new();
        let input = values(seed, len);
        for round in 0..4u64 {
            let old: Vec<f32> = if ef.residual().is_empty() {
                vec![0.0; len]
            } else {
                ef.residual().to_vec()
            };
            let (_, decoded) = encode(&mut codec, &input, &mut ef);
            for i in 0..len {
                let conserved = decoded[i] + ef.residual()[i];
                let compensated = input[i] + old[i];
                prop_assert!(
                    conserved == compensated,
                    "round {round}: index {i} leaked mass ({conserved} vs {compensated})"
                );
            }
        }
    }

    #[test]
    fn int8_error_stays_within_half_a_step(len in 1usize..68, seed in 0u64..1_000_000_000) {
        let input = values(seed, len);
        let mut codec = Codec::new(CompressionConfig::Int8Uniform);
        let mut ef = ErrorFeedback::new();
        let (block, decoded) = encode(&mut codec, &input, &mut ef);
        prop_assert_eq!(block.encoded_bytes(), 4 + 4 + len as u64);
        let max = input.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let step = max / 127.0;
        for (i, (&x, &d)) in input.iter().zip(&decoded).enumerate() {
            prop_assert!(
                (x - d).abs() <= step * 0.500_001,
                "index {i}: |{x} - {d}| exceeds half step {step}"
            );
            // And the residual records exactly the rounding error.
            prop_assert!(ef.residual()[i] == x - d, "index {i} residual mismatch");
        }
    }

    #[test]
    fn encoding_is_deterministic(len in 0usize..68, seed in 0u64..1_000_000_000) {
        // Same input, fresh state: bit-identical wire blocks for every
        // codec (the property the pinned digest tables rest on).
        for cfg in [
            CompressionConfig::Identity,
            CompressionConfig::TopK { ratio: 0.1 },
            CompressionConfig::Int8Uniform,
        ] {
            let input = values(seed, len);
            let (a, _) = encode(&mut Codec::new(cfg), &input, &mut ErrorFeedback::new());
            let (b, _) = encode(&mut Codec::new(cfg), &input, &mut ErrorFeedback::new());
            prop_assert_eq!(a, b);
        }
    }
}

/// The adversarial tie case: every entry has the same magnitude, so the
/// stable `(|value|, index)` order must fall back to index and keep the
/// lowest `k` positions — on every run, regardless of the selection
/// algorithm's internal pivoting.
#[test]
fn all_equal_input_breaks_ties_by_index() {
    for len in 1..=67usize {
        for sign in [1.0f32, -1.0] {
            let cfg = CompressionConfig::TopK { ratio: 0.25 };
            let input = vec![sign * 1.5; len];
            let (block, decoded) = encode(&mut Codec::new(cfg), &input, &mut ErrorFeedback::new());
            let CompressedBlock::Sparse {
                indices, values, ..
            } = &block
            else {
                panic!("top-k must produce a sparse block");
            };
            let k = cfg.k_for(len);
            let expect: Vec<u32> = (0..k as u32).collect();
            assert_eq!(indices, &expect, "len {len} sign {sign}");
            assert!(values.iter().all(|&v| v == sign * 1.5));
            assert!(decoded[..k].iter().all(|&v| v == sign * 1.5));
            assert!(decoded[k..].iter().all(|&v| v == 0.0));
        }
    }
}

/// An empty block must encode and decode without panicking for every
/// codec (the engine never sends one, but the codecs are public API).
#[test]
fn empty_blocks_are_harmless() {
    for cfg in [
        CompressionConfig::Identity,
        CompressionConfig::TopK { ratio: 0.5 },
        CompressionConfig::Int8Uniform,
    ] {
        let (block, decoded) = encode(&mut Codec::new(cfg), &[], &mut ErrorFeedback::new());
        assert_eq!(block.decoded_len(), 0);
        assert!(decoded.is_empty());
    }
}
