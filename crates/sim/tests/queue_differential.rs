//! Differential suite: the calendar-queue [`EventQueue`] against the
//! retained binary-heap oracle [`HeapEventQueue`].
//!
//! The property is total behavioral equality: driven through the same
//! random push/pop interleaving — with heavy same-time ties, clustered
//! times and far-future outliers — both queues must produce the same
//! `(time, payload)` stream, the same lengths and the same clock. This
//! is what licenses swapping the scheduler under every digest table in
//! the workspace.

use hop_sim::{EventQueue, HeapEventQueue};
use proptest::prelude::*;

/// Drives both queues through one interleaving described by `ops` and
/// asserts lock-step equality. Each op is `(kind, dt)`:
/// `kind < 5` pushes at `now + dt * quantum` (a coarse quantum makes
/// same-time ties common), `kind == 5` pushes a far-future outlier
/// (exercises the full-rotation fallback), anything else pops.
fn run_interleaving(ops: &[(u8, u64)], quantum: f64) -> Result<(), TestCaseError> {
    let mut calendar = EventQueue::new();
    let mut oracle = HeapEventQueue::new();
    let mut id = 0u64;
    for &(kind, dt) in ops {
        match kind {
            0..=4 => {
                let at = calendar.now() + dt as f64 * quantum;
                calendar.push(at, id);
                oracle.push(at, id);
                id += 1;
            }
            5 => {
                let at = calendar.now() + 1e5 * (dt + 1) as f64;
                calendar.push(at, id);
                oracle.push(at, id);
                id += 1;
            }
            _ => {
                prop_assert_eq!(calendar.pop(), oracle.pop());
                prop_assert_eq!(calendar.now(), oracle.now());
            }
        }
        prop_assert_eq!(calendar.len(), oracle.len());
        prop_assert_eq!(calendar.peek_time(), oracle.peek_time());
    }
    // Drain: the full residual streams must match too.
    while let Some(expect) = oracle.pop() {
        prop_assert_eq!(calendar.pop(), Some(expect));
    }
    prop_assert_eq!(calendar.pop(), None);
    prop_assert!(calendar.is_empty());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_match_the_heap(ops in proptest::collection::vec((0u8..8, 0u64..6), 0..300)) {
        run_interleaving(&ops, 0.25)?;
    }

    #[test]
    fn tie_heavy_interleavings_match_the_heap(ops in proptest::collection::vec((0u8..8, 0u64..2), 0..300)) {
        // dt in {0, 1} at a tiny quantum: most events collide on the
        // same timestamp, so FIFO tie-breaking carries the whole order.
        run_interleaving(&ops, 1e-6)?;
    }

    #[test]
    fn push_storms_then_full_drains_match(sizes in (1usize..400, 1u64..9)) {
        let (n, spread) = sizes;
        let mut calendar = EventQueue::new();
        let mut oracle = HeapEventQueue::new();
        for i in 0..n as u64 {
            // A handful of distinct times shared by many events.
            let at = (i % spread) as f64 * 0.5;
            calendar.push(at, i);
            oracle.push(at, i);
        }
        while let Some(expect) = oracle.pop() {
            prop_assert_eq!(calendar.pop(), Some(expect));
        }
        prop_assert_eq!(calendar.pop(), None);
    }
}

#[test]
fn identical_times_pop_in_insertion_order_across_rebuilds() {
    // 5k ties at one timestamp force several grow rebuilds and a drain
    // through shrink rebuilds; insertion order must survive all of them.
    let mut q = EventQueue::new();
    for i in 0..5000u64 {
        q.push(1.0, i);
    }
    for i in 0..5000u64 {
        assert_eq!(q.pop(), Some((1.0, i)));
    }
    assert!(q.is_empty());
}
