//! A deterministic event queue over a virtual clock.
//!
//! [`EventQueue`] is a calendar queue (Brown 1988): pending events hash
//! into an array of time buckets by an integer *tick* (`time / width`),
//! and a pop scans forward from the current tick instead of sifting a
//! heap. With a well-estimated bucket width both operations are O(1)
//! amortized — the property that lets the simulation pump scale to
//! 10k+ workers — versus the O(log n) of the [`HeapEventQueue`] it
//! replaced.
//!
//! # Determinism
//!
//! The pop order is *exactly* the heap's order: earliest time first,
//! FIFO (insertion sequence) on ties. The calendar structure cannot
//! perturb it because ordering decisions never consult bucket geometry:
//!
//! * the tick is a monotone function of time (`(time * inv_width) as
//!   u64` — multiplication by a positive constant and the saturating
//!   float-to-int cast are both monotone), so an event at a strictly
//!   smaller tick has a strictly smaller time;
//! * the scan visits ticks in increasing order and, within a tick,
//!   selects the minimum `(time, seq)` pair — equal times always share
//!   a tick, so FIFO ties are resolved by `seq` exactly as the heap
//!   resolved them;
//! * bucket width and bucket count are re-estimated only between pops
//!   (rebuilds), and a rebuild permutes storage, never the `(time,
//!   seq)` selection order.
//!
//! `hop_sim`'s differential suite (`tests/queue_differential.rs`) drives
//! both implementations through random push/pop interleavings with heavy
//! same-time ties and asserts identical output streams.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

/// Smallest bucket count; also the table size of [`EventQueue::new`].
const MIN_BUCKETS: usize = 16;

/// Largest bucket count a constructor pre-allocates (rebuilds may grow
/// past it if the pending population really is that large).
const MAX_INITIAL_BUCKETS: usize = 1 << 16;

/// Consecutive full-rotation scan misses tolerated before the queue
/// re-estimates its bucket width (the pending events' time span has
/// drifted away from the estimate the table was built with).
const MAX_FALLBACKS: u32 = 8;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    /// `time / width` quantized at insert/rebuild time; the bucket index
    /// is `tick & mask`, and a scan matches on the exact tick so events
    /// a full rotation ahead are never popped early.
    tick: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so each bucket's `BinaryHeap` (a max-heap) pops its
        // minimum `(time, seq)` entry first. Because the tick is a
        // monotone function of time, the top of a bucket also carries
        // the bucket's minimal tick — which is what lets `pop` decide
        // bucket membership for the scanned tick from `peek()` alone.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Calendar queue of timestamped events with deterministic FIFO
/// tie-breaking.
///
/// # Contract
///
/// `push` requires a non-NaN time no earlier than [`now`](Self::now)
/// (the time of the last popped event). The requirement is enforced
/// with debug assertions: violations panic in debug/test builds and are
/// undefined *ordering* (never memory unsafety) in release builds.
///
/// # Examples
///
/// ```
/// use hop_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(1.0, "a");
/// q.push(1.0, "b"); // same time: FIFO order preserved
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// ```
pub struct EventQueue<E> {
    /// Power-of-two bucket table; an entry lives in `tick & mask`. Each
    /// bucket is a min-heap on `(time, seq)`, so the heavy same-time
    /// ties a synchronized cluster produces (10k workers finishing the
    /// same iteration at the same virtual instant land in one bucket)
    /// cost O(log ties) per operation instead of a linear bucket scan.
    buckets: Vec<BinaryHeap<Entry<E>>>,
    /// `buckets.len() - 1`.
    mask: u64,
    /// Bucket width in seconds.
    width: f64,
    /// `1.0 / width`, the quantization factor of `tick_of`.
    inv_width: f64,
    /// The scan cursor: no pending entry has a tick below it.
    cur_tick: u64,
    /// Pending event count.
    len: usize,
    /// Full-rotation scan misses since the last rebuild.
    fallbacks: u32,
    /// Rebuild watermark reported by [`capacity`](Self::capacity).
    cap: usize,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty queue at time 0 sized for `capacity` pending
    /// events, so pushes up to that watermark never trigger a bucket
    /// table rebuild. Simulation drivers size this from the number of
    /// workers and the protocol fan-out (pending events, not total
    /// events: the queue holds only in-flight work).
    pub fn with_capacity(capacity: usize) -> Self {
        let nbuckets = (capacity / 2)
            .clamp(MIN_BUCKETS, MAX_INITIAL_BUCKETS)
            .next_power_of_two();
        let mut buckets = Vec::new();
        buckets.resize_with(nbuckets, BinaryHeap::new);
        Self {
            buckets,
            mask: (nbuckets - 1) as u64,
            // 1 ms buckets suit the simulated compute/transfer times;
            // the first rebuild re-estimates from the live population.
            width: 1e-3,
            inv_width: 1e3,
            cur_tick: 0,
            len: 0,
            fallbacks: 0,
            cap: capacity.max(nbuckets * 2),
            seq: 0,
            now: 0.0,
        }
    }

    /// Number of pending events the queue accommodates before it next
    /// rebuilds (grows) its bucket table. Pushes within this watermark
    /// reorganize nothing.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, time: SimTime) -> u64 {
        // Saturating cast: monotone in `time`, so bucket order can never
        // disagree with time order.
        (time * self.inv_width) as u64
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is NaN or earlier than the
    /// current virtual time (see the type-level contract).
    pub fn push(&mut self, time: SimTime, payload: E) {
        debug_assert!(!time.is_nan(), "event time must not be NaN");
        debug_assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        if self.len + 1 > 2 * self.buckets.len() {
            self.rebuild(self.len + 1);
        }
        let tick = self.tick_of(time);
        if self.len == 0 || tick < self.cur_tick {
            self.cur_tick = tick;
        }
        let entry = Entry {
            time,
            seq: self.seq,
            tick,
            payload,
        };
        self.seq += 1;
        self.len += 1;
        self.buckets[(tick & self.mask) as usize].push(entry);
    }

    /// Pops the earliest event (FIFO on ties), advancing the virtual
    /// clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let nbuckets = self.buckets.len() as u64;
        // Scan forward one full rotation; matching on the exact tick
        // (not the bucket) keeps far-future events out of early pops.
        // Each bucket answers from its heap top alone: the top carries
        // the bucket's minimal time, hence (monotone quantization) its
        // minimal tick — if that tick is not the scanned one, nothing
        // in the bucket is.
        for tick in self.cur_tick..self.cur_tick.saturating_add(nbuckets) {
            let b = (tick & self.mask) as usize;
            if self.buckets[b].peek().is_some_and(|e| e.tick == tick) {
                self.cur_tick = tick;
                return Some(self.take(b));
            }
        }
        // A full rotation came up empty: the next event is more than
        // `nbuckets` ticks ahead. Fall back to a global minimum scan and
        // re-estimate the width once this happens persistently.
        self.fallbacks += 1;
        let b = self.global_min().expect("len > 0 guarantees a minimum");
        self.cur_tick = self.buckets[b]
            .peek()
            .expect("chosen bucket non-empty")
            .tick;
        let popped = self.take(b);
        if self.fallbacks >= MAX_FALLBACKS {
            self.rebuild(self.len.max(1));
        }
        Some(popped)
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        let b = self.global_min()?;
        Some(
            self.buckets[b]
                .peek()
                .expect("chosen bucket non-empty")
                .time,
        )
    }

    /// Bucket holding the global minimum `(time, seq)` entry (at its
    /// heap top, by the bucket ordering invariant).
    fn global_min(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            let Some(e) = bucket.peek() else { continue };
            let better = match best {
                None => true,
                Some(bb) => {
                    let cur = self.buckets[bb].peek().expect("tracked bucket non-empty");
                    (e.time, e.seq) < (cur.time, cur.seq)
                }
            };
            if better {
                best = Some(b);
            }
        }
        best
    }

    /// Pops the top of bucket `b`, advancing the clock.
    fn take(&mut self, b: usize) -> (SimTime, E) {
        let entry = self.buckets[b].pop().expect("caller checked non-empty");
        self.len -= 1;
        self.now = entry.time;
        if self.len < self.buckets.len() / 8 && self.buckets.len() > MIN_BUCKETS {
            self.rebuild(self.len.max(1));
        }
        (entry.time, entry.payload)
    }

    /// Rebuilds the bucket table for `target` pending events,
    /// re-estimating the bucket width from the live population's time
    /// span. Ordering is unaffected: ticks are recomputed with the same
    /// monotone quantization, and selection stays `(time, seq)`.
    fn rebuild(&mut self, target: usize) {
        let nbuckets = target
            .clamp(MIN_BUCKETS, usize::MAX / 2 + 1)
            .next_power_of_two();
        let mut entries: Vec<Entry<E>> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            entries.extend(std::mem::take(bucket));
        }
        if entries.len() >= 2 {
            let (mut min_t, mut max_t) = (f64::INFINITY, f64::NEG_INFINITY);
            for e in &entries {
                min_t = min_t.min(e.time);
                max_t = max_t.max(e.time);
            }
            if max_t > min_t {
                // Twice the mean inter-event gap: a pop's scan advances
                // ~half a tick per event on average.
                self.width = ((max_t - min_t) * 2.0 / entries.len() as f64).max(1e-12);
                self.inv_width = self.width.recip();
            }
        }
        self.buckets = Vec::new();
        self.buckets.resize_with(nbuckets, BinaryHeap::new);
        self.mask = (nbuckets - 1) as u64;
        self.cap = nbuckets * 2;
        self.fallbacks = 0;
        self.cur_tick = self.tick_of(self.now);
        for mut e in entries {
            e.tick = self.tick_of(e.time);
            self.cur_tick = self.cur_tick.min(e.tick);
            self.buckets[(e.tick & self.mask) as usize].push(e);
        }
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width", &self.width)
            .finish()
    }
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // breaking ties by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap`-backed event queue, retained as the
/// differential-testing oracle for [`EventQueue`] (and the baseline side
/// of the scheduler benchmarks). Same API, same deterministic order,
/// O(log n) per operation.
#[derive(Default)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time` (same contract as
    /// [`EventQueue::push`]).
    pub fn push(&mut self, time: SimTime, payload: E) {
        debug_assert!(!time.is_nan(), "event time must not be NaN");
        debug_assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(2.0, ());
        q.pop();
        q.push(1.0, ());
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn rejects_nan_times_at_push() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn oracle_rejects_past_events() {
        let mut q = HeapEventQueue::new();
        q.push(2.0, ());
        q.pop();
        q.push(1.0, ());
    }

    #[test]
    fn with_capacity_pre_sizes_the_heap() {
        let mut q = EventQueue::with_capacity(32);
        let cap = q.capacity();
        assert!(cap >= 32);
        for i in 0..32 {
            q.push(i as f64, i);
        }
        assert_eq!(q.capacity(), cap, "pushes within capacity reallocated");
        // Pre-sizing changes no behavior: pops still come in time order.
        assert_eq!(q.pop(), Some((0.0, 0)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn grows_and_shrinks_without_losing_order() {
        // Push enough to force several grow rebuilds, drain to force
        // shrink rebuilds; order stays exact throughout.
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            // Clustered times with heavy ties.
            q.push((i % 13) as f64 * 0.5, i);
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        for _ in 0..1000 {
            let (t, i) = q.pop().unwrap();
            assert!(
                t > last.0 || (t == last.0 && i > last.1),
                "order violated: {last:?} then ({t}, {i})"
            );
            last = (t, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_pop_via_fallback() {
        let mut q = EventQueue::new();
        q.push(0.0, 0);
        // Far enough ahead that its tick is beyond one full rotation.
        q.push(1e6, 1);
        assert_eq!(q.pop(), Some((0.0, 0)));
        assert_eq!(q.pop(), Some((1e6, 1)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_exact_order() {
        let mut q = EventQueue::new();
        let mut oracle = HeapEventQueue::new();
        let mut t = 0.0;
        let mut id = 0u64;
        for round in 0..200 {
            for j in 0..(round % 7 + 1) {
                let at = t + (j % 3) as f64 * 0.25;
                q.push(at, id);
                oracle.push(at, id);
                id += 1;
            }
            for _ in 0..(round % 5) {
                let got = q.pop();
                assert_eq!(got, oracle.pop());
                if let Some((at, _)) = got {
                    t = at;
                }
            }
        }
        while let Some(expect) = oracle.pop() {
            assert_eq!(q.pop(), Some(expect));
        }
        assert!(q.is_empty());
    }
}
