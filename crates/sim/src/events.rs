//! A deterministic event queue over a virtual clock.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time in seconds.
pub type SimTime = f64;

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time pops first,
        // breaking ties by insertion order for determinism.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times must not be NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of timestamped events with deterministic FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use hop_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(1.0, "a");
/// q.push(1.0, "b"); // same time: FIFO order preserved
/// assert_eq!(q.pop().unwrap().1, "a");
/// assert_eq!(q.pop().unwrap().1, "b");
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Creates an empty queue at time 0 with space for `capacity` pending
    /// events, so pushes up to that watermark never reallocate the heap.
    /// Simulation drivers size this from the number of workers and the
    /// protocol fan-out (pending events, not total events: the heap holds
    /// only in-flight work).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
            now: 0.0,
        }
    }

    /// Number of pending events the heap can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Current virtual time (the time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current virtual time.
    pub fn push(&mut self, time: SimTime, payload: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(HeapEntry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Pops the earliest event, advancing the virtual clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Time of the next event without popping.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, 3);
        q.push(1.0, 1);
        q.push(2.0, 2);
        assert_eq!(q.pop(), Some((1.0, 1)));
        assert_eq!(q.pop(), Some((2.0, 2)));
        assert_eq!(q.pop(), Some((3.0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(5.0, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(2.5, ());
        assert_eq!(q.now(), 0.0);
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(2.0, ());
        q.pop();
        q.push(1.0, ());
    }

    #[test]
    fn with_capacity_pre_sizes_the_heap() {
        let mut q = EventQueue::with_capacity(32);
        let cap = q.capacity();
        assert!(cap >= 32);
        for i in 0..32 {
            q.push(i as f64, i);
        }
        assert_eq!(q.capacity(), cap, "pushes within capacity reallocated");
        // Pre-sizing changes no behavior: pops still come in time order.
        assert_eq!(q.pop(), Some((0.0, 0)));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(4.0, ());
        assert_eq!(q.peek_time(), Some(4.0));
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
