//! Heterogeneity models (§2.3, §7.3).
//!
//! Random slowdown reproduces the paper's process — "randomly slowing down
//! every worker by 6 times at a probability of 1/n in each iteration" —
//! and deterministic slowdown pins a fixed multiplier on chosen workers
//! (the 4× straggler of §7.3.5). Sampling is a pure function of
//! `(seed, worker, iteration)`, so the same experiment produces identical
//! slowdowns no matter how simulator events interleave.

use hop_util::rng::splitmix64;

/// Per-iteration compute-time multiplier model.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SlowdownModel {
    /// Homogeneous cluster: factor 1 always.
    #[default]
    None,
    /// Each worker is slowed by `factor` with probability `prob`,
    /// independently per iteration (the paper uses `factor = 6`,
    /// `prob = 1/n`).
    Random {
        /// Slowdown multiplier applied when the event fires.
        factor: f64,
        /// Per-(worker, iteration) probability of the event.
        prob: f64,
    },
    /// Fixed per-worker multipliers (1.0 = full speed). Workers beyond the
    /// vector's length run at full speed.
    Deterministic(Vec<f64>),
    /// Product of two models (e.g. a deterministic straggler in a randomly
    /// noisy cluster).
    Compose(Box<SlowdownModel>, Box<SlowdownModel>),
}

impl SlowdownModel {
    /// The paper's random heterogeneity: 6× slowdown with probability
    /// `1/n` per worker per iteration.
    pub fn paper_random(n_workers: usize) -> Self {
        SlowdownModel::Random {
            factor: 6.0,
            prob: 1.0 / n_workers as f64,
        }
    }

    /// The paper's deterministic straggler: worker `straggler` runs
    /// `factor`× slower.
    pub fn paper_straggler(n_workers: usize, straggler: usize, factor: f64) -> Self {
        let mut factors = vec![1.0; n_workers];
        assert!(straggler < n_workers, "straggler index out of range");
        assert!(factor >= 1.0, "slowdown factor must be >= 1");
        factors[straggler] = factor;
        SlowdownModel::Deterministic(factors)
    }

    /// The compute-time multiplier for `worker` at `iteration` under
    /// `seed`. Always >= 1 for the built-in constructors.
    pub fn factor(&self, seed: u64, worker: usize, iteration: u64) -> f64 {
        match self {
            SlowdownModel::None => 1.0,
            SlowdownModel::Random { factor, prob } => {
                // Hash (seed, worker, iteration) into a uniform in [0,1).
                let mut state = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
                let _ = splitmix64(&mut state);
                state ^= (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let _ = splitmix64(&mut state);
                state ^= iteration.wrapping_mul(0xD1B5_4A32_D192_ED03);
                let draw = splitmix64(&mut state);
                let u = (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                if u < *prob {
                    *factor
                } else {
                    1.0
                }
            }
            SlowdownModel::Deterministic(factors) => factors.get(worker).copied().unwrap_or(1.0),
            SlowdownModel::Compose(a, b) => {
                a.factor(seed, worker, iteration) * b.factor(seed, worker, iteration)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unit() {
        assert_eq!(SlowdownModel::None.factor(1, 0, 0), 1.0);
    }

    #[test]
    fn random_hits_at_expected_rate() {
        let m = SlowdownModel::paper_random(16);
        let mut hits = 0;
        let trials = 64_000;
        for w in 0..16 {
            for k in 0..(trials / 16) {
                if m.factor(7, w, k as u64) > 1.0 {
                    hits += 1;
                }
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 1.0 / 16.0).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn random_is_deterministic_in_all_args() {
        let m = SlowdownModel::Random {
            factor: 6.0,
            prob: 0.5,
        };
        for w in 0..4 {
            for k in 0..50 {
                assert_eq!(m.factor(3, w, k), m.factor(3, w, k));
            }
        }
        // Different seeds give different patterns.
        let pattern = |seed: u64| {
            (0..64)
                .map(|k| m.factor(seed, 0, k) > 1.0)
                .collect::<Vec<_>>()
        };
        assert_ne!(pattern(1), pattern(2));
    }

    #[test]
    fn deterministic_straggler() {
        let m = SlowdownModel::paper_straggler(8, 3, 4.0);
        assert_eq!(m.factor(0, 3, 10), 4.0);
        assert_eq!(m.factor(0, 2, 10), 1.0);
        // Out-of-range workers default to full speed.
        assert_eq!(m.factor(0, 100, 0), 1.0);
    }

    #[test]
    fn compose_multiplies() {
        let m = SlowdownModel::Compose(
            Box::new(SlowdownModel::paper_straggler(4, 0, 4.0)),
            Box::new(SlowdownModel::Deterministic(vec![2.0, 1.0, 1.0, 1.0])),
        );
        assert_eq!(m.factor(0, 0, 5), 8.0);
        assert_eq!(m.factor(0, 1, 5), 1.0);
    }

    #[test]
    #[should_panic(expected = "straggler index")]
    fn validates_straggler_index() {
        SlowdownModel::paper_straggler(4, 9, 2.0);
    }
}
