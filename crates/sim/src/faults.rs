//! Deterministic fault injection: message loss, link cuts, partitions,
//! worker churn and byzantine updates.
//!
//! Hop's headline claims (backup workers, Fig. 8; skip/jump, §5) are
//! robustness claims, so the simulator needs disturbances stronger than
//! static slowdowns. A [`FaultPlan`] describes *what* goes wrong — a
//! global or per-link loss rate, scheduled link cut / partition windows,
//! worker crashes with later rejoin, byzantine workers corrupting their
//! outgoing updates — and a [`NetModel`] turns the plan into per-message
//! verdicts and per-event bookkeeping. Like
//! [`crate::hetero::SlowdownModel`], every probabilistic draw is a pure
//! function of `(seed, from, to, iteration)`, so the same experiment
//! produces the same faults no matter how simulator events interleave,
//! and same-seed chaos runs are bit-identical.
//!
//! The [`FaultLog`] sidecar records every fault that actually fired. The
//! conformance oracle replays it next to the protocol trace to decide
//! which invariant breaks are *licensed* by a fault (a lost update, a gap
//! opened by a crashed worker) and which are genuine protocol bugs.

use hop_util::rng::splitmix64;

/// Seed whitener for loss draws, keeping the fault stream independent of
/// the slowdown and jitter streams derived from the same master seed.
const LOSS_SALT: u64 = 0xFA01_7B1A_5EED_CA57;

/// How a byzantine worker corrupts its outgoing parameter updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ByzVariant {
    /// Negates every coordinate (gradient ascent from the receivers'
    /// point of view).
    SignFlip,
    /// Multiplies every coordinate by the factor (e.g. `10.0` for a
    /// blow-up attack, `0.0` for a zeroing attack).
    Scaled(f32),
    /// Freezes the update: from `from_iter` on, every outgoing message
    /// replays the first update sent after corruption began.
    StaleReplay,
}

impl ByzVariant {
    /// Stable name used in [`FaultLog`] text serialization.
    pub fn name(&self) -> &'static str {
        match self {
            ByzVariant::SignFlip => "sign_flip",
            ByzVariant::Scaled(_) => "scaled",
            ByzVariant::StaleReplay => "stale_replay",
        }
    }
}

/// A scheduled crash: `worker` dies on its first entry into an iteration
/// `>= at_iter` (a skip jump over `at_iter` does not dodge it) and
/// becomes eligible to rejoin once some live worker has progressed
/// `down_iters` iterations past the one the crash fired at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashSpec {
    /// Worker that crashes.
    pub worker: usize,
    /// The crash fires at the first iteration entry at or after this.
    pub at_iter: u64,
    /// Live-cluster progress (iterations past the crash) required before
    /// the worker rejoins.
    pub down_iters: u64,
}

/// A byzantine worker: from iteration `from_iter` on, its outgoing
/// updates are corrupted per `variant`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ByzSpec {
    /// The corrupting worker.
    pub worker: usize,
    /// First iteration whose outgoing updates are corrupted.
    pub from_iter: u64,
    /// Corruption applied.
    pub variant: ByzVariant,
}

/// A directed link outage: messages from `a` to `b` sent during
/// `[from, until)` are held back until the link heals at `until`
/// (delivered late), or dropped outright if `until` is infinite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCut {
    /// Sender side of the cut link.
    pub a: usize,
    /// Receiver side of the cut link.
    pub b: usize,
    /// Cut start (simulated seconds, inclusive).
    pub from: f64,
    /// Heal time (exclusive); `f64::INFINITY` never heals.
    pub until: f64,
}

/// A network partition: messages crossing the boundary of `side` during
/// `[from, until)` are held back until the partition heals (or dropped if
/// it never does). Traffic within `side`, and within its complement, is
/// unaffected.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Workers on one side of the partition.
    pub side: Vec<usize>,
    /// Partition start (simulated seconds, inclusive).
    pub from: f64,
    /// Heal time (exclusive); `f64::INFINITY` never heals.
    pub until: f64,
}

/// A deterministic, seedable schedule of faults. The default plan is
/// empty and injects nothing: with it, every experiment is bit-identical
/// to a run without the fault plane at all.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    loss: f64,
    link_loss: Vec<(usize, usize, f64)>,
    cuts: Vec<LinkCut>,
    partitions: Vec<Partition>,
    crashes: Vec<CrashSpec>,
    byzantine: Vec<ByzSpec>,
}

impl FaultPlan {
    /// An empty plan (same as `Default`).
    pub fn none() -> Self {
        Self::default()
    }

    /// Sets the global per-message loss probability. Validation (not this
    /// builder) rejects rates outside `[0, 1)` or NaN, so invalid rates
    /// surface as configuration errors rather than panics.
    pub fn with_loss(mut self, rate: f64) -> Self {
        self.loss = rate;
        self
    }

    /// Adds a per-link loss probability for messages from `a` to `b`,
    /// overriding the global rate on that link.
    pub fn with_link_loss(mut self, a: usize, b: usize, rate: f64) -> Self {
        self.link_loss.push((a, b, rate));
        self
    }

    /// Adds a directed link cut window.
    pub fn with_cut(mut self, cut: LinkCut) -> Self {
        self.cuts.push(cut);
        self
    }

    /// Adds a partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// Schedules a crash/rejoin cycle.
    pub fn with_crash(mut self, crash: CrashSpec) -> Self {
        self.crashes.push(crash);
        self
    }

    /// Marks a worker byzantine.
    pub fn with_byzantine(mut self, byz: ByzSpec) -> Self {
        self.byzantine.push(byz);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.loss == 0.0
            && self.link_loss.is_empty()
            && self.cuts.is_empty()
            && self.partitions.is_empty()
            && self.crashes.is_empty()
            && self.byzantine.is_empty()
    }

    /// The scheduled crashes.
    pub fn crashes(&self) -> &[CrashSpec] {
        &self.crashes
    }

    /// The byzantine workers.
    pub fn byzantine(&self) -> &[ByzSpec] {
        &self.byzantine
    }

    /// The global loss rate.
    pub fn loss(&self) -> f64 {
        self.loss
    }

    /// The effective loss rate on the directed link `from -> to`: the
    /// per-link override when present, else the global rate.
    pub fn loss_rate(&self, from: usize, to: usize) -> f64 {
        self.link_loss
            .iter()
            .find(|&&(a, b, _)| a == from && b == to)
            .map_or(self.loss, |&(_, _, r)| r)
    }

    /// Checks the plan for malformed knobs: loss rates must be finite and
    /// in `[0, 1)`, fault windows must not start after they end, and
    /// crash downtimes must be at least one iteration.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first problem found.
    pub fn validate(&self) -> Result<(), &'static str> {
        let rate_ok = |r: f64| r.is_finite() && (0.0..1.0).contains(&r);
        if !rate_ok(self.loss) {
            return Err("loss rate must be finite and in [0, 1)");
        }
        if self.link_loss.iter().any(|&(_, _, r)| !rate_ok(r)) {
            return Err("link loss rate must be finite and in [0, 1)");
        }
        if self
            .cuts
            .iter()
            .any(|c| c.from.is_nan() || c.until.is_nan() || c.from > c.until)
        {
            return Err("link cut window must satisfy from <= until");
        }
        if self
            .partitions
            .iter()
            .any(|p| p.from.is_nan() || p.until.is_nan() || p.from > p.until)
        {
            return Err("partition window must satisfy from <= until");
        }
        if self.crashes.iter().any(|c| c.down_iters == 0) {
            return Err("crash downtime must be at least one iteration");
        }
        if let Some(ByzSpec {
            variant: ByzVariant::Scaled(f),
            ..
        }) = self
            .byzantine
            .iter()
            .find(|b| matches!(b.variant, ByzVariant::Scaled(f) if !f.is_finite()))
        {
            let _ = f;
            return Err("byzantine scale factor must be finite");
        }
        Ok(())
    }
}

/// Per-message verdict from the [`NetModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// Deliver at the physical arrival time.
    Deliver,
    /// Deliver, but this many extra seconds late (the message waits out a
    /// link cut / partition window and is retransmitted at heal time).
    Delay(f64),
    /// The message is lost.
    Drop,
}

/// One fault that actually fired during a run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A payload message was lost.
    Loss {
        /// Sender.
        from: usize,
        /// Intended receiver.
        to: usize,
        /// Sender's iteration tag on the message.
        iter: u64,
    },
    /// A worker crashed on entering `iter`.
    Crash {
        /// Crashed worker.
        worker: usize,
        /// Iteration whose entry triggered the crash.
        iter: u64,
    },
    /// A crashed worker rejoined at `target`, rehydrated from `donor`.
    Rejoin {
        /// Rejoining worker.
        worker: usize,
        /// Iteration the worker re-enters.
        target: u64,
        /// Live worker whose parameter snapshot seeded the rejoin.
        donor: usize,
    },
    /// A byzantine worker corrupted its outgoing updates for `iter`.
    Byzantine {
        /// Corrupting worker.
        worker: usize,
        /// Iteration whose updates were corrupted.
        iter: u64,
        /// Stable name of the corruption variant.
        kind: &'static str,
    },
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultEvent::Loss { from, to, iter } => {
                write!(f, "loss from={from} to={to} iter={iter}")
            }
            FaultEvent::Crash { worker, iter } => write!(f, "crash w={worker} iter={iter}"),
            FaultEvent::Rejoin {
                worker,
                target,
                donor,
            } => write!(f, "rejoin w={worker} target={target} donor={donor}"),
            FaultEvent::Byzantine { worker, iter, kind } => {
                write!(f, "byzantine w={worker} iter={iter} kind={kind}")
            }
        }
    }
}

/// The record of every fault that fired during a run — the sidecar the
/// fault-aware oracle replays next to the protocol trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
    }

    /// The recorded events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no fault fired.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// One event per line — the artifact format written next to failing
    /// conformance traces.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses [`Self::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns the first unparseable line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut log = Self::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            log.push(parse_fault_line(line).ok_or_else(|| line.to_string())?);
        }
        Ok(log)
    }
}

fn parse_fault_line(line: &str) -> Option<FaultEvent> {
    let mut parts = line.split_whitespace();
    let head = parts.next()?;
    let mut field = |key: &str| -> Option<u64> {
        let tok = parts.next()?;
        tok.strip_prefix(key)?.strip_prefix('=')?.parse().ok()
    };
    match head {
        "loss" => Some(FaultEvent::Loss {
            from: field("from")? as usize,
            to: field("to")? as usize,
            iter: field("iter")?,
        }),
        "crash" => Some(FaultEvent::Crash {
            worker: field("w")? as usize,
            iter: field("iter")?,
        }),
        "rejoin" => Some(FaultEvent::Rejoin {
            worker: field("w")? as usize,
            target: field("target")?,
            donor: field("donor")? as usize,
        }),
        "byzantine" => {
            let worker = field("w")? as usize;
            let iter = field("iter")?;
            let kind = parts.next()?.strip_prefix("kind=")?;
            let kind = ["sign_flip", "scaled", "stale_replay"]
                .into_iter()
                .find(|k| *k == kind)?;
            Some(FaultEvent::Byzantine { worker, iter, kind })
        }
        _ => None,
    }
}

/// Uniform in `[0, 1)` keyed by `(seed, from, to, iter)` — the loss draw
/// behind [`NetModel::verdict`], exposed as a free function so the
/// threaded runtime's per-thread shim computes the identical draws from
/// the shared experiment seed without sharing a `NetModel`.
pub fn loss_draw(seed: u64, from: usize, to: usize, iter: u64) -> f64 {
    let mut state = seed ^ LOSS_SALT;
    let _ = splitmix64(&mut state);
    state ^= (((from as u64) << 32) | to as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let _ = splitmix64(&mut state);
    state ^= iter.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let draw = splitmix64(&mut state);
    (draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runtime fault state for one simulation: consumes a [`FaultPlan`],
/// issues per-message [`Verdict`]s, tracks which workers are dead, applies
/// byzantine corruption, and accumulates the [`FaultLog`].
#[derive(Debug, Clone)]
pub struct NetModel {
    plan: FaultPlan,
    seed: u64,
    dead: Vec<bool>,
    /// Per-crash-spec: the iteration the crash actually fired at (`None`
    /// until it does — a skip jump can push it past the spec's
    /// `at_iter`). The rejoin countdown runs from this, not the spec.
    crash_fired: Vec<Option<u64>>,
    crash_rejoined: Vec<bool>,
    replay: Vec<Option<Vec<f32>>>,
    byz_logged: Vec<Option<u64>>,
    log: FaultLog,
    empty: bool,
}

impl NetModel {
    /// Creates the runtime state for `plan` over `n` nodes under `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the plan references a worker index `>= n`.
    pub fn new(plan: FaultPlan, seed: u64, n: usize) -> Self {
        let in_range = |w: usize| w < n;
        assert!(
            plan.crashes.iter().all(|c| in_range(c.worker))
                && plan.byzantine.iter().all(|b| in_range(b.worker))
                && plan
                    .link_loss
                    .iter()
                    .all(|&(a, b, _)| in_range(a) && in_range(b))
                && plan.cuts.iter().all(|c| in_range(c.a) && in_range(c.b))
                && plan
                    .partitions
                    .iter()
                    .all(|p| p.side.iter().all(|&w| in_range(w))),
            "fault plan references a worker outside the cluster"
        );
        let empty = plan.is_empty();
        let n_crashes = plan.crashes.len();
        let n_byz = plan.byzantine.len();
        Self {
            plan,
            seed,
            dead: vec![false; n],
            crash_fired: vec![None; n_crashes],
            crash_rejoined: vec![false; n_crashes],
            replay: vec![None; n_byz],
            byz_logged: vec![None; n_byz],
            log: FaultLog::new(),
            empty,
        }
    }

    /// Whether the plan is empty — callers use this to short-circuit
    /// every fault hook so empty-plan runs stay bit-identical to runs
    /// without the fault plane.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `worker` is currently crashed.
    pub fn is_dead(&self, worker: usize) -> bool {
        !self.empty && self.dead[worker]
    }

    /// Number of currently crashed workers.
    pub fn n_dead(&self) -> usize {
        self.dead.iter().filter(|&&d| d).count()
    }

    /// The accumulated fault log.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Takes the accumulated fault log, leaving an empty one.
    pub fn take_log(&mut self) -> FaultLog {
        std::mem::take(&mut self.log)
    }

    /// The fate of a payload message from `from` to `to`, tagged with the
    /// sender's iteration `iter`, sent at `now`. Logs a
    /// [`FaultEvent::Loss`] when the verdict is [`Verdict::Drop`]. The
    /// draw is a pure function of `(seed, from, to, iter)` — event
    /// interleaving cannot perturb it.
    pub fn verdict(&mut self, now: f64, from: usize, to: usize, iter: u64) -> Verdict {
        if self.empty {
            return Verdict::Deliver;
        }
        let lost = |this: &mut Self| {
            this.log.push(FaultEvent::Loss { from, to, iter });
            Verdict::Drop
        };
        if self.dead[from] || self.dead[to] {
            return lost(self);
        }
        // Cut / partition windows: hold the message until heal, or drop
        // it when the outage never heals.
        let mut delay = 0.0f64;
        for c in &self.plan.cuts {
            if c.a == from && c.b == to && now >= c.from && now < c.until {
                if !c.until.is_finite() {
                    return lost(self);
                }
                delay = delay.max(c.until - now);
            }
        }
        for p in &self.plan.partitions {
            let inside = |w: usize| p.side.contains(&w);
            if inside(from) != inside(to) && now >= p.from && now < p.until {
                if !p.until.is_finite() {
                    return lost(self);
                }
                delay = delay.max(p.until - now);
            }
        }
        if delay > 0.0 {
            return Verdict::Delay(delay);
        }
        // Probabilistic loss: per-link override, else the global rate.
        let rate = self.plan.loss_rate(from, to);
        if rate > 0.0 && self.loss_draw(from, to, iter) < rate {
            return lost(self);
        }
        Verdict::Deliver
    }

    /// Uniform in `[0, 1)` keyed by `(seed, from, to, iter)`, following
    /// the [`crate::hetero::SlowdownModel::factor`] hashing idiom.
    fn loss_draw(&self, from: usize, to: usize, iter: u64) -> f64 {
        loss_draw(self.seed, from, to, iter)
    }

    /// Fires a scheduled crash for `worker` entering `iter`, if any. The
    /// crash triggers on the first entry at or after its `at_iter` —
    /// not equality — so a §5 skip jumping over `at_iter` cannot dodge
    /// it. Marks the worker dead and logs [`FaultEvent::Crash`]. Returns
    /// whether a crash fired.
    pub fn try_crash(&mut self, worker: usize, iter: u64) -> bool {
        if self.empty || self.dead[worker] {
            return false;
        }
        for (i, c) in self.plan.crashes.iter().enumerate() {
            if c.worker == worker && iter >= c.at_iter && self.crash_fired[i].is_none() {
                self.crash_fired[i] = Some(iter);
                self.dead[worker] = true;
                self.log.push(FaultEvent::Crash { worker, iter });
                return true;
            }
        }
        false
    }

    /// The next crashed worker whose rejoin condition is met: some live
    /// worker has progressed `down_iters` past the iteration the crash
    /// actually fired at. Returns the worker, or `None`.
    pub fn due_rejoin(&self, max_live_iter: u64) -> Option<usize> {
        self.plan
            .crashes
            .iter()
            .enumerate()
            .find(|&(i, c)| {
                self.crash_fired[i]
                    .is_some_and(|at| !self.crash_rejoined[i] && max_live_iter >= at + c.down_iters)
            })
            .map(|(_, c)| c.worker)
    }

    /// Revives `worker` at `target`, rehydrated from `donor`; logs
    /// [`FaultEvent::Rejoin`].
    ///
    /// # Panics
    ///
    /// Panics if `worker` has no fired, un-rejoined crash entry.
    pub fn revive(&mut self, worker: usize, target: u64, donor: usize) {
        let idx = self
            .plan
            .crashes
            .iter()
            .enumerate()
            .position(|(i, c)| {
                c.worker == worker && self.crash_fired[i].is_some() && !self.crash_rejoined[i]
            })
            .expect("revive without a fired crash");
        self.crash_rejoined[idx] = true;
        self.dead[worker] = false;
        self.log.push(FaultEvent::Rejoin {
            worker,
            target,
            donor,
        });
    }

    /// Applies byzantine corruption to an outgoing update from `worker`
    /// tagged `iter`, in place. Returns whether the update was corrupted.
    /// Logged once per `(worker, iteration)`, not per message.
    pub fn corrupt(&mut self, worker: usize, iter: u64, params: &mut [f32]) -> bool {
        if self.empty {
            return false;
        }
        let Some((i, b)) = self
            .plan
            .byzantine
            .iter()
            .enumerate()
            .find(|&(_, b)| b.worker == worker && iter >= b.from_iter)
        else {
            return false;
        };
        match b.variant {
            ByzVariant::SignFlip => params.iter_mut().for_each(|p| *p = -*p),
            ByzVariant::Scaled(f) => params.iter_mut().for_each(|p| *p *= f),
            ByzVariant::StaleReplay => {
                let stored = self.replay[i].get_or_insert_with(|| params.to_vec());
                if stored.len() == params.len() {
                    params.copy_from_slice(stored);
                } else {
                    *stored = params.to_vec();
                }
            }
        }
        if self.byz_logged[i] != Some(iter) {
            self.byz_logged[i] = Some(iter);
            self.log.push(FaultEvent::Byzantine {
                worker,
                iter,
                kind: b.variant.name(),
            });
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let mut nm = NetModel::new(FaultPlan::default(), 7, 4);
        assert!(nm.is_empty());
        assert_eq!(nm.verdict(0.0, 0, 1, 3), Verdict::Deliver);
        assert!(!nm.try_crash(0, 0));
        let mut p = [1.0f32, -2.0];
        assert!(!nm.corrupt(0, 0, &mut p));
        assert!(nm.log().is_empty());
    }

    #[test]
    fn loss_rate_hits_at_expected_frequency_and_is_deterministic() {
        let plan = FaultPlan::default().with_loss(0.25);
        let mut a = NetModel::new(plan.clone(), 11, 8);
        let mut b = NetModel::new(plan, 11, 8);
        let mut drops = 0u64;
        let trials = 16_000u64;
        for iter in 0..(trials / 4) {
            for to in 1..5usize {
                let va = a.verdict(0.0, 0, to, iter);
                assert_eq!(va, b.verdict(0.0, 0, to, iter));
                if va == Verdict::Drop {
                    drops += 1;
                }
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!(a.log().len(), drops as usize);
    }

    #[test]
    fn link_loss_overrides_global_rate() {
        let plan = FaultPlan::default().with_link_loss(0, 1, 1.0 - 1e-12);
        let mut nm = NetModel::new(plan, 3, 4);
        assert_eq!(nm.verdict(0.0, 0, 1, 0), Verdict::Drop);
        assert_eq!(nm.verdict(0.0, 1, 0, 0), Verdict::Deliver);
    }

    #[test]
    fn cut_window_delays_then_heals() {
        let plan = FaultPlan::default().with_cut(LinkCut {
            a: 0,
            b: 1,
            from: 1.0,
            until: 2.0,
        });
        let mut nm = NetModel::new(plan, 3, 2);
        assert_eq!(nm.verdict(0.5, 0, 1, 0), Verdict::Deliver);
        assert_eq!(nm.verdict(1.5, 0, 1, 1), Verdict::Delay(0.5));
        assert_eq!(nm.verdict(2.0, 0, 1, 2), Verdict::Deliver);
        // Reverse direction unaffected.
        assert_eq!(nm.verdict(1.5, 1, 0, 1), Verdict::Deliver);
    }

    #[test]
    fn permanent_partition_drops_cross_traffic_only() {
        let plan = FaultPlan::default().with_partition(Partition {
            side: vec![0, 1],
            from: 0.0,
            until: f64::INFINITY,
        });
        let mut nm = NetModel::new(plan, 3, 4);
        assert_eq!(nm.verdict(5.0, 0, 2, 0), Verdict::Drop);
        assert_eq!(nm.verdict(5.0, 3, 1, 0), Verdict::Drop);
        assert_eq!(nm.verdict(5.0, 0, 1, 0), Verdict::Deliver);
        assert_eq!(nm.verdict(5.0, 2, 3, 0), Verdict::Deliver);
    }

    #[test]
    fn crash_rejoin_lifecycle() {
        let plan = FaultPlan::default().with_crash(CrashSpec {
            worker: 2,
            at_iter: 3,
            down_iters: 4,
        });
        let mut nm = NetModel::new(plan, 3, 4);
        assert!(!nm.try_crash(2, 2));
        assert!(nm.try_crash(2, 3));
        assert!(nm.is_dead(2));
        assert!(!nm.try_crash(2, 3), "a crash fires once");
        // Dead endpoints lose traffic in both directions.
        assert_eq!(nm.verdict(0.0, 2, 0, 3), Verdict::Drop);
        assert_eq!(nm.verdict(0.0, 1, 2, 5), Verdict::Drop);
        assert_eq!(nm.due_rejoin(6), None);
        assert_eq!(nm.due_rejoin(7), Some(2));
        nm.revive(2, 8, 0);
        assert!(!nm.is_dead(2));
        assert_eq!(nm.due_rejoin(100), None);
        let kinds: Vec<String> = nm.log().events().iter().map(|e| e.to_string()).collect();
        assert_eq!(
            kinds,
            [
                "crash w=2 iter=3",
                "loss from=2 to=0 iter=3",
                "loss from=1 to=2 iter=5",
                "rejoin w=2 target=8 donor=0",
            ]
        );
    }

    #[test]
    fn byzantine_variants_corrupt_in_place() {
        let plan = FaultPlan::default()
            .with_byzantine(ByzSpec {
                worker: 0,
                from_iter: 2,
                variant: ByzVariant::SignFlip,
            })
            .with_byzantine(ByzSpec {
                worker: 1,
                from_iter: 0,
                variant: ByzVariant::Scaled(10.0),
            })
            .with_byzantine(ByzSpec {
                worker: 2,
                from_iter: 0,
                variant: ByzVariant::StaleReplay,
            });
        let mut nm = NetModel::new(plan, 3, 4);
        let mut p = [1.0f32, -2.0];
        assert!(!nm.corrupt(0, 1, &mut p), "before from_iter");
        assert!(nm.corrupt(0, 2, &mut p));
        assert_eq!(p, [-1.0, 2.0]);
        let mut q = [3.0f32];
        assert!(nm.corrupt(1, 5, &mut q));
        assert_eq!(q, [30.0]);
        let mut r = [1.0f32, 1.0];
        assert!(nm.corrupt(2, 0, &mut r));
        assert_eq!(r, [1.0, 1.0], "first replayed update is itself");
        let mut r2 = [9.0f32, 9.0];
        assert!(nm.corrupt(2, 1, &mut r2));
        assert_eq!(r2, [1.0, 1.0], "later updates replay the frozen one");
        // One log entry per (worker, iteration).
        let mut again = [0.0f32; 2];
        nm.corrupt(0, 2, &mut again);
        let byz_logs = nm
            .log()
            .events()
            .iter()
            .filter(|e| matches!(e, FaultEvent::Byzantine { worker: 0, .. }))
            .count();
        assert_eq!(byz_logs, 1);
    }

    #[test]
    fn validation_rejects_malformed_knobs() {
        assert!(FaultPlan::default().validate().is_ok());
        assert!(FaultPlan::default().with_loss(0.05).validate().is_ok());
        for bad in [-0.1, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            assert!(FaultPlan::default().with_loss(bad).validate().is_err());
        }
        assert!(FaultPlan::default()
            .with_link_loss(0, 1, f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::default()
            .with_cut(LinkCut {
                a: 0,
                b: 1,
                from: 2.0,
                until: 1.0
            })
            .validate()
            .is_err());
        assert!(FaultPlan::default()
            .with_crash(CrashSpec {
                worker: 0,
                at_iter: 1,
                down_iters: 0
            })
            .validate()
            .is_err());
        assert!(FaultPlan::default()
            .with_byzantine(ByzSpec {
                worker: 0,
                from_iter: 0,
                variant: ByzVariant::Scaled(f32::NAN)
            })
            .validate()
            .is_err());
    }

    #[test]
    fn plan_range_checked_against_cluster() {
        let plan = FaultPlan::default().with_crash(CrashSpec {
            worker: 9,
            at_iter: 0,
            down_iters: 1,
        });
        let result = std::panic::catch_unwind(|| NetModel::new(plan, 0, 4));
        assert!(result.is_err());
    }

    #[test]
    fn fault_log_round_trips_through_text() {
        let mut log = FaultLog::new();
        log.push(FaultEvent::Loss {
            from: 1,
            to: 2,
            iter: 7,
        });
        log.push(FaultEvent::Crash { worker: 3, iter: 4 });
        log.push(FaultEvent::Rejoin {
            worker: 3,
            target: 9,
            donor: 0,
        });
        log.push(FaultEvent::Byzantine {
            worker: 5,
            iter: 6,
            kind: "sign_flip",
        });
        let text = log.to_text();
        assert_eq!(FaultLog::from_text(&text).unwrap(), log);
        assert!(FaultLog::from_text("gibberish here").is_err());
    }
}
