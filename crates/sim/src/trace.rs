//! Per-iteration timing traces and iteration-gap accounting.
//!
//! Every simulated run records when each worker entered each iteration;
//! from that we derive iteration durations (Figs. 16, 18) and the maximum
//! observed iteration gap per worker pair, which the tests compare against
//! the theoretical bounds of Table 1.

use crate::events::SimTime;
use hop_util::Summary;

/// One completed iteration of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Worker index.
    pub worker: usize,
    /// Iteration index the worker *entered*.
    pub iter: u64,
    /// Virtual time at which the worker entered the iteration.
    pub time: SimTime,
}

/// An append-only log of iteration entries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<IterationRecord>,
    n_workers: usize,
}

impl Trace {
    /// Creates an empty trace for `n_workers` workers.
    pub fn new(n_workers: usize) -> Self {
        Self {
            records: Vec::new(),
            n_workers,
        }
    }

    /// Creates an empty trace pre-sized for `records` iteration entries.
    ///
    /// A complete run appends one record per worker per iteration (plus
    /// the entry into iteration 0), so callers that know both counts can
    /// reserve the log up front and keep the hot recording path free of
    /// reallocation at 10k-worker scale.
    pub fn with_capacity(n_workers: usize, records: usize) -> Self {
        Self {
            records: Vec::with_capacity(records),
            n_workers,
        }
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Records that `worker` entered `iter` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or `time` is not monotone over
    /// the whole log (the simulator appends in virtual-time order).
    pub fn record(&mut self, worker: usize, iter: u64, time: SimTime) {
        assert!(worker < self.n_workers, "worker out of range");
        if let Some(last) = self.records.last() {
            assert!(
                time >= last.time,
                "trace times must be non-decreasing: {time} < {}",
                last.time
            );
        }
        self.records.push(IterationRecord { worker, iter, time });
    }

    /// All records in time order.
    pub fn records(&self) -> &[IterationRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iteration durations of one worker (time between consecutive
    /// iteration entries).
    pub fn durations(&self, worker: usize) -> Vec<f64> {
        let mut times: Vec<SimTime> = self
            .records
            .iter()
            .filter(|r| r.worker == worker)
            .map(|r| r.time)
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN times"));
        times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Summary of iteration durations across all workers.
    ///
    /// Returns `None` when fewer than 2 records per worker exist.
    pub fn duration_summary(&self) -> Option<Summary> {
        let mut all = Vec::new();
        for w in 0..self.n_workers {
            all.extend(self.durations(w));
        }
        if all.is_empty() {
            None
        } else {
            Some(Summary::from_slice(&all))
        }
    }

    /// Mean iteration duration across workers, or 0.0 if unknown.
    pub fn mean_iteration_duration(&self) -> f64 {
        self.duration_summary().map_or(0.0, |s| s.mean())
    }

    /// Time at which the last worker entered iteration `iter` (i.e. when
    /// the whole system had reached it), or `None` if some worker never
    /// did.
    pub fn time_all_reached(&self, iter: u64) -> Option<SimTime> {
        let mut latest = f64::NEG_INFINITY;
        for w in 0..self.n_workers {
            let t = self
                .records
                .iter()
                .filter(|r| r.worker == w && r.iter >= iter)
                .map(|r| r.time)
                .fold(f64::INFINITY, f64::min);
            if !t.is_finite() {
                return None;
            }
            latest = latest.max(t);
        }
        Some(latest)
    }

    /// Sweeps the log in time order and returns the maximum observed value
    /// of `Iter(i) - Iter(j)` for every ordered pair `(i, j)`, as a
    /// row-major `n x n` matrix. Used to validate Table 1.
    pub fn max_pairwise_gap(&self) -> Vec<Vec<i64>> {
        let n = self.n_workers;
        let mut current = vec![0i64; n];
        let mut max_gap = vec![vec![i64::MIN; n]; n];
        // Before any record every worker is at iteration 0.
        for i in 0..n {
            for j in 0..n {
                max_gap[i][j] = 0;
            }
        }
        for r in &self.records {
            current[r.worker] = r.iter as i64;
            for other in 0..n {
                if other == r.worker {
                    continue;
                }
                let gap = current[r.worker] - current[other];
                if gap > max_gap[r.worker][other] {
                    max_gap[r.worker][other] = gap;
                }
                let rev = current[other] - current[r.worker];
                if rev > max_gap[other][r.worker] {
                    max_gap[other][r.worker] = rev;
                }
            }
        }
        max_gap
    }

    /// The largest entry of [`Trace::max_pairwise_gap`].
    pub fn max_gap(&self) -> i64 {
        self.max_pairwise_gap()
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_per_worker() {
        let mut t = Trace::new(2);
        t.record(0, 1, 1.0);
        t.record(1, 1, 1.5);
        t.record(0, 2, 3.0);
        assert_eq!(t.durations(0), vec![2.0]);
        assert!(t.durations(1).is_empty());
    }

    #[test]
    fn gap_tracking_simple() {
        let mut t = Trace::new(2);
        // Worker 0 sprints to iteration 3 while worker 1 sits at 0.
        t.record(0, 1, 1.0);
        t.record(0, 2, 2.0);
        t.record(0, 3, 3.0);
        t.record(1, 1, 4.0);
        let gaps = t.max_pairwise_gap();
        assert_eq!(gaps[0][1], 3);
        assert_eq!(gaps[1][0], 0);
        assert_eq!(t.max_gap(), 3);
    }

    #[test]
    fn time_all_reached() {
        let mut t = Trace::new(2);
        t.record(0, 1, 1.0);
        t.record(1, 1, 5.0);
        assert_eq!(t.time_all_reached(1), Some(5.0));
        assert_eq!(t.time_all_reached(2), None);
    }

    #[test]
    fn duration_summary_averages() {
        let mut t = Trace::new(1);
        t.record(0, 1, 1.0);
        t.record(0, 2, 2.0);
        t.record(0, 3, 4.0);
        let s = t.duration_summary().expect("has durations");
        assert!((s.mean() - 1.5).abs() < 1e-12);
        assert_eq!(t.mean_iteration_duration(), 1.5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_time_regression() {
        let mut t = Trace::new(1);
        t.record(0, 1, 2.0);
        t.record(0, 2, 1.0);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = Trace::new(3);
        assert!(t.is_empty());
        assert_eq!(t.max_gap(), 0);
        assert_eq!(t.mean_iteration_duration(), 0.0);
        assert!(t.duration_summary().is_none());
    }
}
