//! Cluster topology, link model and NIC contention.
//!
//! Matches the paper's testbed shape (§7.2): several machines, several
//! workers per machine, Ethernet between machines, fast local exchange
//! within a machine. Every node owns an egress NIC and an ingress NIC
//! modeled as FIFO servers: concurrent transfers through the same NIC
//! serialize. This is what makes a parameter server a *communication
//! hotspot* (all workers' traffic shares the PS's NICs) while decentralized
//! graphs spread load — the core systems effect behind Fig. 13.

use crate::events::SimTime;

/// Latency/bandwidth parameters for intra- and inter-machine transfers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way propagation latency within a machine (seconds).
    pub intra_latency: f64,
    /// One-way propagation latency between machines (seconds).
    pub inter_latency: f64,
    /// NIC bandwidth for intra-machine transfers (bytes/second).
    pub intra_bandwidth: f64,
    /// NIC bandwidth for inter-machine transfers (bytes/second).
    pub inter_bandwidth: f64,
    /// Latency of small control messages (tokens, ACKs, iteration
    /// inquiries), independent of size.
    pub control_latency: f64,
    /// Maximum extra random delivery delay per payload transfer (seconds),
    /// sampled deterministically per message. A non-zero jitter makes the
    /// network reorder messages — the failure mode §6.1 designs the
    /// rotating queues against ("we do not assume network preserves the
    /// message order").
    pub jitter: f64,
    /// Multiplier applied to payload sizes on the wire. The protocols ship
    /// the real (small) stand-in model; scaling the *simulated* transfer
    /// size reproduces the communication:compute ratio of the paper's
    /// full-size models (VGG11 is ~2e8 parameters) without paying their
    /// compute cost (the README's workload stand-in rationale).
    pub payload_scale: f64,
}

impl LinkModel {
    /// Parameters resembling the paper's cluster: 1 Gb/s Ethernet between
    /// machines, shared memory within a machine.
    pub fn ethernet_1gbps() -> Self {
        Self {
            intra_latency: 20e-6,
            inter_latency: 200e-6,
            intra_bandwidth: 8e9,   // ~shared-memory copy rate
            inter_bandwidth: 125e6, // 1 Gb/s
            control_latency: 100e-6,
            jitter: 0.0,
            payload_scale: 1.0,
        }
    }

    /// Returns a copy with the given per-message jitter bound.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or NaN (the assertion below rejects
    /// NaN too, since `NaN >= 0.0` is false). Code that builds a
    /// [`LinkModel`] literal directly can still smuggle in a NaN; the
    /// experiment-level configuration validation catches that case and
    /// reports it as a configuration error instead of a panic.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        assert!(jitter >= 0.0, "jitter must be non-negative");
        self.jitter = jitter;
        self
    }

    /// Returns a copy with the given payload-size multiplier.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn with_payload_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "payload scale must be positive");
        self.payload_scale = scale;
        self
    }

    /// Checks the knobs a struct literal can smuggle past the builder
    /// assertions: the jitter bound must be finite and non-negative.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first problem found.
    pub fn validate(&self) -> Result<(), &'static str> {
        if !self.jitter.is_finite() || self.jitter < 0.0 {
            return Err("jitter must be finite and non-negative");
        }
        Ok(())
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        Self::ethernet_1gbps()
    }
}

/// Placement and speed description of the simulated cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    machine_of: Vec<usize>,
    base_compute: Vec<f64>,
    link: LinkModel,
    faults: crate::faults::FaultPlan,
}

impl ClusterSpec {
    /// `n` nodes spread round-robin over `machines` machines, all with the
    /// same per-iteration compute time.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `machines == 0`, or `base_compute <= 0`.
    pub fn uniform(n: usize, machines: usize, base_compute: f64, link: LinkModel) -> Self {
        assert!(n > 0 && machines > 0, "need nodes and machines");
        assert!(base_compute > 0.0, "compute time must be positive");
        Self {
            machine_of: (0..n).map(|i| i * machines / n).collect(),
            base_compute: vec![base_compute; n],
            link,
            faults: crate::faults::FaultPlan::default(),
        }
    }

    /// Explicit placement: `machine_sizes[m]` consecutive workers on
    /// machine `m` (the Fig. 21 uneven placement).
    ///
    /// # Panics
    ///
    /// Panics if any machine is empty or `base_compute <= 0`.
    pub fn with_machine_sizes(machine_sizes: &[usize], base_compute: f64, link: LinkModel) -> Self {
        assert!(!machine_sizes.is_empty(), "need at least one machine");
        assert!(machine_sizes.iter().all(|&s| s > 0), "empty machine");
        assert!(base_compute > 0.0, "compute time must be positive");
        let mut machine_of = Vec::new();
        for (m, &size) in machine_sizes.iter().enumerate() {
            machine_of.extend(std::iter::repeat_n(m, size));
        }
        let n = machine_of.len();
        Self {
            machine_of,
            base_compute: vec![base_compute; n],
            link,
            faults: crate::faults::FaultPlan::default(),
        }
    }

    /// Returns a copy carrying the given fault plan. The default plan is
    /// empty (no faults); engines read the plan from the spec, so fault
    /// injection rides along wherever a `ClusterSpec` already travels.
    #[must_use]
    pub fn with_faults(mut self, faults: crate::faults::FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault plan (empty unless set via [`Self::with_faults`]).
    pub fn faults(&self) -> &crate::faults::FaultPlan {
        &self.faults
    }

    /// Overrides one node's base compute time.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range or `seconds <= 0`.
    pub fn set_compute_time(&mut self, node: usize, seconds: f64) {
        assert!(node < self.len(), "node out of range");
        assert!(seconds > 0.0, "compute time must be positive");
        self.base_compute[node] = seconds;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.machine_of.len()
    }

    /// Whether the cluster is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.machine_of.is_empty()
    }

    /// Machine hosting `node`.
    pub fn machine_of(&self, node: usize) -> usize {
        self.machine_of[node]
    }

    /// Number of machines.
    pub fn n_machines(&self) -> usize {
        self.machine_of.iter().copied().max().map_or(0, |m| m + 1)
    }

    /// Base compute seconds per iteration for `node`.
    pub fn base_compute(&self, node: usize) -> f64 {
        self.base_compute[node]
    }

    /// The link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Whether two nodes share a machine.
    pub fn same_machine(&self, a: usize, b: usize) -> bool {
        self.machine_of[a] == self.machine_of[b]
    }

    /// Duration of one ring all-reduce among `members` (in the given
    /// logical ring order) exchanging `total_bytes` of payload:
    /// `2(g-1)` pipeline steps of `total_bytes / g` each, every step
    /// simultaneous across members and gated by the slowest hop. This is
    /// the analytic model shared by the ring all-reduce baseline (over
    /// all workers) and Prague's intra-group partial all-reduce.
    ///
    /// # Panics
    ///
    /// Panics if `members` has fewer than 2 nodes (nothing to reduce).
    pub fn ring_allreduce_time(&self, members: &[usize], total_bytes: f64) -> f64 {
        let g = members.len();
        assert!(g >= 2, "a ring all-reduce needs at least 2 members");
        let chunk = total_bytes / g as f64;
        let mut step_time = 0.0f64;
        for (i, &w) in members.iter().enumerate() {
            let next = members[(i + 1) % g];
            let (lat, bw) = if self.same_machine(w, next) {
                (self.link.intra_latency, self.link.intra_bandwidth)
            } else {
                (self.link.inter_latency, self.link.inter_bandwidth)
            };
            step_time = step_time.max(lat + chunk / bw);
        }
        2.0 * (g as f64 - 1.0) * step_time
    }

    /// Appends one extra node on its own new machine (used to host a
    /// parameter server, as the paper adds one machine for the PS).
    /// Returns the new node's index.
    pub fn push_server_node(&mut self, base_compute: f64) -> usize {
        assert!(base_compute > 0.0, "compute time must be positive");
        let machine = self.n_machines();
        self.machine_of.push(machine);
        self.base_compute.push(base_compute);
        self.machine_of.len() - 1
    }
}

/// Tracks NIC occupancy and computes transfer arrival times.
///
/// Each node has an egress and an ingress FIFO NIC. A transfer of `bytes`
/// from `a` to `b` occupies `a`'s egress for `bytes/bw`, propagates for the
/// link latency, then occupies `b`'s ingress for `bytes/bw`; the arrival
/// time is when the ingress completes. Control messages skip the NICs and
/// only pay `control_latency`.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    spec: ClusterSpec,
    egress_free: Vec<SimTime>,
    ingress_free: Vec<SimTime>,
    machine_egress_free: Vec<SimTime>,
    machine_ingress_free: Vec<SimTime>,
    bytes_sent: u64,
    transfers: u64,
    jitter_state: u64,
}

impl Network {
    /// Creates an idle network for `spec`.
    pub fn new(spec: ClusterSpec) -> Self {
        let n = spec.len();
        let machines = spec.n_machines();
        Self {
            spec,
            egress_free: vec![0.0; n],
            ingress_free: vec![0.0; n],
            machine_egress_free: vec![0.0; machines],
            machine_ingress_free: vec![0.0; machines],
            bytes_sent: 0,
            transfers: 0,
            jitter_state: 0x4A17_7E4E_D1CE_5EED,
        }
    }

    /// The underlying cluster spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Total payload bytes transferred so far.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Number of payload transfers so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Schedules a payload transfer of `bytes` from `a` to `b` starting no
    /// earlier than `now`; returns the arrival time at `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-delivery is local and free) or indices are
    /// out of range.
    pub fn transfer(&mut self, now: SimTime, a: usize, b: usize, bytes: u64) -> SimTime {
        assert!(a != b, "self transfers are local");
        assert!(a < self.spec.len() && b < self.spec.len(), "node range");
        let link = *self.spec.link();
        // Intra-machine copies use the worker's own port; inter-machine
        // traffic shares the hosting *machine*'s Ethernet NIC, as in the
        // paper's testbed (several workers per machine, one 1 Gb/s link).
        let (latency, bw, egress, ingress) = if self.spec.same_machine(a, b) {
            (
                link.intra_latency,
                link.intra_bandwidth,
                &mut self.egress_free[a],
                &mut self.ingress_free[b],
            )
        } else {
            (
                link.inter_latency,
                link.inter_bandwidth,
                &mut self.machine_egress_free[self.spec.machine_of(a)],
                &mut self.machine_ingress_free[self.spec.machine_of(b)],
            )
        };
        let tx_time = bytes as f64 * link.payload_scale / bw;
        let egress_start = now.max(*egress);
        let egress_end = egress_start + tx_time;
        *egress = egress_end;
        let ingress_start = (egress_end + latency).max(*ingress);
        let ingress_end = ingress_start + tx_time;
        *ingress = ingress_end;
        self.bytes_sent += (bytes as f64 * link.payload_scale) as u64;
        self.transfers += 1;
        ingress_end + self.next_jitter(link.jitter)
    }

    /// Deterministic per-message jitter in `[0, bound)`.
    fn next_jitter(&mut self, bound: f64) -> f64 {
        if bound <= 0.0 {
            return 0.0;
        }
        let draw = hop_util::rng::splitmix64(&mut self.jitter_state);
        bound * ((draw >> 11) as f64 * (1.0 / (1u64 << 53) as f64))
    }

    /// Arrival time of a small control message sent at `now` (tokens,
    /// ACKs); bypasses NIC serialization.
    pub fn control(&self, now: SimTime, a: usize, b: usize) -> SimTime {
        if a == b || self.spec.same_machine(a, b) {
            now + self.spec.link().control_latency * 0.1
        } else {
            now + self.spec.link().control_latency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ClusterSpec {
        ClusterSpec::uniform(4, 2, 0.1, LinkModel::ethernet_1gbps())
    }

    #[test]
    fn round_robin_placement() {
        let s = spec();
        assert_eq!(s.machine_of(0), 0);
        assert_eq!(s.machine_of(1), 0);
        assert_eq!(s.machine_of(2), 1);
        assert_eq!(s.machine_of(3), 1);
        assert_eq!(s.n_machines(), 2);
        assert!(s.same_machine(0, 1));
        assert!(!s.same_machine(1, 2));
    }

    #[test]
    fn machine_sizes_placement() {
        let s = ClusterSpec::with_machine_sizes(&[3, 3, 2], 0.1, LinkModel::default());
        assert_eq!(s.len(), 8);
        assert_eq!(s.machine_of(2), 0);
        assert_eq!(s.machine_of(3), 1);
        assert_eq!(s.machine_of(7), 2);
    }

    #[test]
    fn intra_faster_than_inter() {
        let mut net = Network::new(spec());
        let intra = net.transfer(0.0, 0, 1, 1_000_000);
        let mut net2 = Network::new(spec());
        let inter = net2.transfer(0.0, 1, 2, 1_000_000);
        assert!(intra < inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn ingress_contention_serializes() {
        // Two senders to the same receiver: the second arrival is pushed
        // back by the first's ingress occupancy.
        let mut net = Network::new(spec());
        let bytes = 10_000_000;
        let a1 = net.transfer(0.0, 0, 2, bytes);
        let a2 = net.transfer(0.0, 1, 2, bytes);
        let solo = Network::new(spec()).transfer(0.0, 1, 2, bytes);
        assert!(a2 > a1);
        assert!(a2 > solo, "contended {a2} vs solo {solo}");
    }

    #[test]
    fn egress_contention_serializes_broadcast() {
        let mut net = Network::new(spec());
        let bytes = 10_000_000;
        let first = net.transfer(0.0, 2, 0, bytes);
        let second = net.transfer(0.0, 2, 1, bytes);
        assert!(second > first);
    }

    #[test]
    fn transfer_accounting() {
        let mut net = Network::new(spec());
        net.transfer(0.0, 0, 1, 100);
        net.transfer(0.0, 0, 2, 50);
        assert_eq!(net.bytes_sent(), 150);
        assert_eq!(net.transfers(), 2);
    }

    #[test]
    fn control_messages_are_cheap_and_unserialized() {
        let net = Network::new(spec());
        let t = net.control(1.0, 0, 2);
        assert!(t > 1.0 && t < 1.01);
        let local = net.control(1.0, 0, 1);
        assert!(local < t);
    }

    #[test]
    fn server_node_gets_own_machine() {
        let mut s = spec();
        let ps = s.push_server_node(0.01);
        assert_eq!(ps, 4);
        assert_eq!(s.machine_of(ps), 2);
        assert_eq!(s.n_machines(), 3);
    }

    #[test]
    #[should_panic(expected = "self transfers")]
    fn rejects_self_transfer() {
        let mut net = Network::new(spec());
        net.transfer(0.0, 1, 1, 10);
    }
}

#[cfg(test)]
mod jitter_tests {
    use super::*;

    #[test]
    fn zero_jitter_is_exact() {
        let spec = ClusterSpec::uniform(2, 1, 0.1, LinkModel::ethernet_1gbps());
        let mut a = Network::new(spec.clone());
        let mut b = Network::new(spec);
        assert_eq!(a.transfer(0.0, 0, 1, 1000), b.transfer(0.0, 0, 1, 1000));
    }

    #[test]
    fn jitter_delays_and_can_reorder() {
        let link = LinkModel::ethernet_1gbps().with_jitter(0.5);
        let spec = ClusterSpec::uniform(3, 1, 0.1, link);
        let mut net = Network::new(spec.clone());
        let base = Network::new(ClusterSpec::uniform(3, 1, 0.1, LinkModel::ethernet_1gbps()))
            .transfer(0.0, 0, 1, 1000);
        let mut reordered = false;
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..64 {
            let t = net.transfer(0.0, 0, 1, 8);
            assert!(t >= base - 1.0, "jitter must not deliver before physics");
            if t < prev {
                reordered = true;
            }
            prev = t;
        }
        assert!(reordered, "expected at least one reordering with jitter");
    }

    #[test]
    fn jitter_is_deterministic() {
        let link = LinkModel::ethernet_1gbps().with_jitter(0.2);
        let spec = ClusterSpec::uniform(2, 1, 0.1, link);
        let mut a = Network::new(spec.clone());
        let mut b = Network::new(spec);
        for _ in 0..10 {
            assert_eq!(a.transfer(0.0, 0, 1, 64), b.transfer(0.0, 0, 1, 64));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jitter_validates() {
        let _ = LinkModel::ethernet_1gbps().with_jitter(-0.1);
    }
}

#[cfg(test)]
mod payload_scale_tests {
    use super::*;

    #[test]
    fn scale_stretches_transfers() {
        let base = ClusterSpec::uniform(2, 2, 0.1, LinkModel::ethernet_1gbps());
        let scaled = ClusterSpec::uniform(
            2,
            2,
            0.1,
            LinkModel::ethernet_1gbps().with_payload_scale(100.0),
        );
        let t1 = Network::new(base).transfer(0.0, 0, 1, 1_000_000);
        let t100 = Network::new(scaled).transfer(0.0, 0, 1, 1_000_000);
        assert!(t100 > t1 * 50.0, "{t100} vs {t1}");
    }

    #[test]
    fn scale_counts_scaled_bytes() {
        let scaled = ClusterSpec::uniform(
            2,
            2,
            0.1,
            LinkModel::ethernet_1gbps().with_payload_scale(10.0),
        );
        let mut net = Network::new(scaled);
        net.transfer(0.0, 0, 1, 100);
        assert_eq!(net.bytes_sent(), 1000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_validates() {
        let _ = LinkModel::ethernet_1gbps().with_payload_scale(0.0);
    }

    #[test]
    fn ring_allreduce_time_scales_with_members_and_hops() {
        // 4 nodes on 2 machines (0,1 | 2,3).
        let spec = ClusterSpec::uniform(4, 2, 0.1, LinkModel::ethernet_1gbps());
        let link = *spec.link();
        let bytes = 1000.0;
        // Intra-machine pair: 2 steps of bytes/2 at intra speed.
        let intra = spec.ring_allreduce_time(&[0, 1], bytes);
        assert!((intra - 2.0 * (link.intra_latency + 500.0 / link.intra_bandwidth)).abs() < 1e-12);
        // Cross-machine pair is gated by the slower inter-machine hop.
        let inter = spec.ring_allreduce_time(&[0, 2], bytes);
        assert!((inter - 2.0 * (link.inter_latency + 500.0 / link.inter_bandwidth)).abs() < 1e-12);
        assert!(inter > intra);
        // A full 4-ring: 6 steps of bytes/4, slowest hop crosses machines.
        let full = spec.ring_allreduce_time(&[0, 1, 2, 3], bytes);
        assert!((full - 6.0 * (link.inter_latency + 250.0 / link.inter_bandwidth)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 2 members")]
    fn ring_allreduce_time_rejects_singletons() {
        let spec = ClusterSpec::uniform(2, 1, 0.1, LinkModel::ethernet_1gbps());
        spec.ring_allreduce_time(&[0], 100.0);
    }
}
