//! Deterministic discrete-event simulation substrate.
//!
//! The paper's testbed — 16 workers on 4 machines over 1 Gb/s Ethernet
//! with injected random (6×, probability 1/n) and deterministic (4×)
//! slowdowns — is reproduced here as a virtual-clock simulator:
//!
//! * [`events::EventQueue`] — a total-ordered calendar queue (time, then
//!   insertion sequence) over an arbitrary payload, with the original
//!   binary-heap implementation retained as a differential oracle
//!   ([`events::HeapEventQueue`]).
//! * [`cluster::ClusterSpec`] — worker→machine placement, per-worker
//!   compute times, link latency/bandwidth (intra vs inter machine), and
//!   per-node NIC serialization (the effect that makes a parameter server
//!   a hotspot: all ingress transfers at a node share its NIC).
//! * [`hetero::SlowdownModel`] — the paper's slowdown processes, sampled
//!   deterministically from `(seed, worker, iteration)` so event order
//!   cannot perturb the experiment.
//! * [`faults::FaultPlan`] — deterministic fault injection (message loss,
//!   link cuts, partitions, worker churn, byzantine updates) consumed by
//!   the engine through [`faults::NetModel`] verdicts, with a
//!   [`faults::FaultLog`] sidecar for the fault-aware conformance oracle.
//! * [`trace::Trace`] — per-iteration timing records with iteration-gap
//!   accounting used to validate Table 1 empirically.
//!
//! # Examples
//!
//! ```
//! use hop_sim::events::EventQueue;
//!
//! let mut q = EventQueue::new();
//! q.push(2.0, "later");
//! q.push(1.0, "sooner");
//! assert_eq!(q.pop(), Some((1.0, "sooner")));
//! ```

pub mod cluster;
pub mod events;
pub mod faults;
pub mod hetero;
pub mod trace;

pub use cluster::{ClusterSpec, LinkModel, Network};
pub use events::{EventQueue, HeapEventQueue};
pub use faults::{
    ByzSpec, ByzVariant, CrashSpec, FaultEvent, FaultLog, FaultPlan, LinkCut, NetModel, Partition,
    Verdict,
};
pub use hetero::SlowdownModel;
pub use trace::{IterationRecord, Trace};
