//! Parallel experiment sweeps: cartesian grids of [`SimExperiment`]s
//! executed across all cores, deterministically.
//!
//! The paper's evaluation is a grid — protocols × slowdown processes ×
//! cluster shapes × per-protocol knobs (Figs. 12–21) — and so is every
//! scenario-diversity study over the Prague/QGM variants. Running such a
//! grid point-by-point on one core makes a 200-point sweep cost 200× one
//! run's wall clock even though the points are completely independent.
//! This module makes the sweep itself the unit of execution:
//!
//! * [`SweepGrid`] is a builder over the grid axes: named protocols
//!   (including the [`prague_axis`](SweepGrid::prague_axis) /
//!   [`qgm_axis`](SweepGrid::qgm_axis) knob helpers), named
//!   topology+cluster shapes, named [`SlowdownModel`]s, and seeds. Its
//!   [`points`](SweepGrid::points) method materializes the cartesian
//!   product in a fixed **grid order** (protocol-major, then cluster,
//!   slowdown, seed).
//! * [`SweepRunner`] executes the grid across a scoped `std::thread`
//!   pool. Threads claim points from an atomic index; the one immutable
//!   `(model, dataset)` pair is shared by reference across all threads
//!   ([`Model`] is `Send + Sync` by design). Results come back **in grid
//!   order, bit-identical to a sequential run at any thread count**:
//!   each point's report is a pure function of its `SimExperiment`
//!   (the engine introduces no cross-run state), and thread assignment
//!   only decides *which core* computes a point, never *what* it
//!   computes. `tests/sweep_determinism.rs` asserts the digest table at
//!   1/2/4 threads against direct sequential [`SimExperiment::run`]
//!   calls.
//! * [`SweepSummary`] aggregates the results into a
//!   [`hop_metrics::Table`] (one row per point: virtual wall time, final
//!   eval loss, mean iteration, bytes on the wire, stale discards) with
//!   CSV and JSON emitters for machine consumption.
//!
//! # Examples
//!
//! ```
//! use hop_core::sweep::{SweepGrid, SweepRunner};
//! use hop_core::config::{HopConfig, Protocol};
//! use hop_core::trainer::Hyper;
//! use hop_data::webspam::SyntheticWebspam;
//! use hop_graph::Topology;
//! use hop_model::svm::Svm;
//! use hop_sim::{ClusterSpec, LinkModel, SlowdownModel};
//!
//! let dataset = SyntheticWebspam::generate(128, 0);
//! let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
//! let grid = SweepGrid::new(Hyper::svm(), 10)
//!     .protocol("hop", Protocol::Hop(HopConfig::standard()))
//!     .protocol("ring", Protocol::RingAllReduce)
//!     .cluster(
//!         "uniform",
//!         Topology::ring(4),
//!         ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
//!     )
//!     .slowdown("none", SlowdownModel::None)
//!     .seeds([1, 2]);
//! assert_eq!(grid.len(), 4);
//! let results = SweepRunner::new(2).run(&grid, &model, &dataset)?;
//! assert_eq!(results.len(), 4);
//! // Grid order: protocol-major, seeds innermost.
//! assert_eq!(results[0].point.protocol, "hop");
//! assert_eq!(results[1].point.seed, 2);
//! # Ok::<(), hop_core::sweep::SweepError>(())
//! ```

use crate::config::{ConfigError, PragueConfig, Protocol, QgmConfig};
use crate::report::TrainingReport;
use crate::trainer::{Hyper, SimExperiment};
use hop_data::InMemoryDataset;
use hop_graph::Topology;
use hop_metrics::Table;
use hop_model::Model;
use hop_sim::{ClusterSpec, SlowdownModel};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A cartesian experiment grid: protocols × clusters × slowdowns × seeds
/// over one workload's hyperparameters.
///
/// Every axis entry carries a short label used in summaries, CSV/JSON
/// output and error messages. See the [module docs](self) for the grid
/// order contract.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    protocols: Vec<(String, Protocol)>,
    clusters: Vec<(String, Topology, ClusterSpec)>,
    slowdowns: Vec<(String, SlowdownModel)>,
    seeds: Vec<u64>,
    hyper: Hyper,
    max_iters: u64,
    eval_every: u64,
    eval_examples: usize,
}

impl SweepGrid {
    /// An empty grid running `max_iters` iterations per point with the
    /// given optimizer hyperparameters. Evaluation defaults to twice per
    /// run on 64 examples; override with [`Self::eval`].
    pub fn new(hyper: Hyper, max_iters: u64) -> Self {
        Self {
            protocols: Vec::new(),
            clusters: Vec::new(),
            slowdowns: Vec::new(),
            seeds: Vec::new(),
            hyper,
            max_iters,
            eval_every: (max_iters / 2).max(1),
            eval_examples: 64,
        }
    }

    /// Adds one labeled protocol to the protocol axis.
    pub fn protocol(mut self, label: impl Into<String>, protocol: Protocol) -> Self {
        self.protocols.push((label.into(), protocol));
        self
    }

    /// Adds the Prague knob grid `group_sizes × regen_everys` to the
    /// protocol axis, one labeled [`Protocol::Prague`] entry per
    /// combination (the ROADMAP scenario-sweep axes).
    pub fn prague_axis(mut self, group_sizes: &[usize], regen_everys: &[u64]) -> Self {
        for &group_size in group_sizes {
            for &regen_every in regen_everys {
                self.protocols.push((
                    format!("prague(g={group_size},r={regen_every})"),
                    Protocol::Prague(PragueConfig {
                        group_size,
                        regen_every,
                        ..PragueConfig::default()
                    }),
                ));
            }
        }
        self
    }

    /// Adds one labeled [`Protocol::Qgm`] entry per momentum value `mu`,
    /// all sharing `beta`.
    pub fn qgm_axis(mut self, mus: &[f32], beta: f32) -> Self {
        for &mu in mus {
            self.protocols.push((
                format!("qgm(mu={mu})"),
                Protocol::Qgm(QgmConfig {
                    mu,
                    beta,
                    ..QgmConfig::default()
                }),
            ));
        }
        self
    }

    /// Adds one labeled [`Protocol::Hop`] entry per codec, each running
    /// the given base config with that codec applied (the
    /// communication-compression axis of the ROADMAP scenario sweeps).
    /// Labels are `hop(<codec label>)`, e.g. `hop(topk_0.01)`.
    pub fn compression_axis(
        mut self,
        base: &crate::config::HopConfig,
        codecs: &[hop_tensor::CompressionConfig],
    ) -> Self {
        for &codec in codecs {
            self.protocols.push((
                format!("hop({})", codec.label()),
                Protocol::Hop(base.clone().with_compression(codec)),
            ));
        }
        self
    }

    /// Adds one labeled topology + machine-placement shape to the cluster
    /// axis. The pair travels together so decentralized protocols always
    /// see a topology consistent with the cluster size.
    pub fn cluster(
        mut self,
        label: impl Into<String>,
        topology: Topology,
        cluster: ClusterSpec,
    ) -> Self {
        self.clusters.push((label.into(), topology, cluster));
        self
    }

    /// Adds one labeled heterogeneity process to the slowdown axis.
    pub fn slowdown(mut self, label: impl Into<String>, slowdown: SlowdownModel) -> Self {
        self.slowdowns.push((label.into(), slowdown));
        self
    }

    /// Expands the cluster axis with fault-injection variants: for every
    /// cluster already on the axis and every `loss_rates` × `churns`
    /// combination that injects something, adds a copy whose
    /// [`ClusterSpec`] carries the corresponding [`hop_sim::FaultPlan`].
    /// Churn means one crash/rejoin cycle of worker 0 a quarter of the way
    /// into the run. Labels compose as `<cluster>+loss<rate>` and/or
    /// `+churn`; the all-zero combination is skipped (it would duplicate
    /// the pristine cluster entry).
    ///
    /// Call **after** the base [`cluster`](Self::cluster) entries are on
    /// the axis — only clusters already added are expanded.
    pub fn fault_axis(mut self, loss_rates: &[f64], churns: &[bool]) -> Self {
        let crash = hop_sim::CrashSpec {
            worker: 0,
            at_iter: self.max_iters / 4 + 1,
            down_iters: (self.max_iters / 8).max(2),
        };
        let base = self.clusters.clone();
        for &loss in loss_rates {
            for &churn in churns {
                if loss == 0.0 && !churn {
                    continue;
                }
                let mut plan = hop_sim::FaultPlan::none();
                let mut suffix = String::new();
                if loss > 0.0 {
                    plan = plan.with_loss(loss);
                    suffix.push_str(&format!("+loss{loss}"));
                }
                if churn {
                    plan = plan.with_crash(crash);
                    suffix.push_str("+churn");
                }
                for (label, topology, cluster) in &base {
                    self.clusters.push((
                        format!("{label}{suffix}"),
                        topology.clone(),
                        cluster.clone().with_faults(plan.clone()),
                    ));
                }
            }
        }
        self
    }

    /// Adds one master seed to the seed axis.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seeds.push(seed);
        self
    }

    /// Adds several master seeds to the seed axis.
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds.extend(seeds);
        self
    }

    /// Overrides the evaluation cadence (`every` iterations of worker 0,
    /// 0 disables) and the fixed eval-batch size.
    pub fn eval(mut self, every: u64, examples: usize) -> Self {
        self.eval_every = every;
        self.eval_examples = examples;
        self
    }

    /// Number of grid points (the product of the four axis lengths).
    pub fn len(&self) -> usize {
        self.protocols.len() * self.clusters.len() * self.slowdowns.len() * self.seeds.len()
    }

    /// Whether the grid has no points (some axis is empty).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materializes the grid points in grid order: protocols outermost,
    /// then clusters, then slowdowns, seeds innermost. The `index` of each
    /// point is its position in this order — the order results come back
    /// in, no matter how many threads run them.
    pub fn points(&self) -> Vec<SweepPoint> {
        let mut points = Vec::with_capacity(self.len());
        for (protocol_label, protocol) in &self.protocols {
            for (cluster_label, topology, cluster) in &self.clusters {
                for (slowdown_label, slowdown) in &self.slowdowns {
                    for &seed in &self.seeds {
                        points.push(SweepPoint {
                            index: points.len(),
                            protocol: protocol_label.clone(),
                            cluster: cluster_label.clone(),
                            slowdown: slowdown_label.clone(),
                            seed,
                            experiment: SimExperiment {
                                topology: topology.clone(),
                                cluster: cluster.clone(),
                                slowdown: slowdown.clone(),
                                protocol: protocol.clone(),
                                hyper: self.hyper,
                                max_iters: self.max_iters,
                                seed,
                                eval_every: self.eval_every,
                                eval_examples: self.eval_examples,
                            },
                        });
                    }
                }
            }
        }
        points
    }
}

/// One fully specified point of a [`SweepGrid`]: its grid position, the
/// axis labels it was built from, and the runnable experiment.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Position in grid order (see [`SweepGrid::points`]).
    pub index: usize,
    /// Protocol-axis label.
    pub protocol: String,
    /// Cluster-axis label.
    pub cluster: String,
    /// Slowdown-axis label.
    pub slowdown: String,
    /// Master seed.
    pub seed: u64,
    /// The experiment this point runs.
    pub experiment: SimExperiment,
}

impl SweepPoint {
    /// `protocol/cluster/slowdown/s<seed>` — the point's display label.
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/s{}",
            self.protocol, self.cluster, self.slowdown, self.seed
        )
    }
}

/// One completed grid point: the point and its training report.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The grid point that produced this result.
    pub point: SweepPoint,
    /// The report [`SimExperiment::run`] returned for it.
    pub report: TrainingReport,
}

impl SweepResult {
    /// The report's bit-exact digest ([`TrainingReport::digest`]) — the
    /// unit of the cross-thread-count determinism table.
    pub fn digest(&self) -> u64 {
        self.report.digest()
    }
}

/// A sweep point whose configuration was invalid for its topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Grid index of the failing point.
    pub index: usize,
    /// Display label of the failing point.
    pub label: String,
    /// The underlying configuration error.
    pub source: ConfigError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep point {} ({}): {}",
            self.index, self.label, self.source
        )
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Executes a [`SweepGrid`] across a scoped thread pool.
///
/// Work is claimed from an atomic grid index (no per-point spawn, no
/// channel), every thread runs points against the same shared
/// `(model, dataset)` borrow, and results are returned in grid order.
/// Determinism: each point's report is a pure function of its
/// [`SimExperiment`], so the result (and error) set is bit-identical at
/// any thread count — including `threads == 1`, which matches direct
/// sequential [`SimExperiment::run`] calls exactly.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    /// Worker threads to run grid points on. `0` means "all cores"
    /// (`std::thread::available_parallelism`). The pool never exceeds the
    /// number of grid points.
    pub threads: usize,
}

impl SweepRunner {
    /// A runner over `threads` threads (0 = all cores).
    pub fn new(threads: usize) -> Self {
        Self { threads }
    }

    /// A runner over all available cores.
    pub fn all_cores() -> Self {
        Self { threads: 0 }
    }

    /// The thread count [`Self::run`] will use for a grid of `points`
    /// points.
    pub fn effective_threads(&self, points: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        requested.clamp(1, points.max(1))
    }

    /// Runs every grid point and returns the results in grid order.
    ///
    /// # Errors
    ///
    /// Every point is validated up front ([`SimExperiment::validate`]),
    /// **before any simulation runs or thread spawns**; an invalid grid
    /// returns the [`SweepError`] of the lowest-index bad point — not the
    /// first one a thread happened to hit — so the error, like the
    /// results, is independent of the thread count (and costs no wasted
    /// compute).
    pub fn run(
        &self,
        grid: &SweepGrid,
        model: &dyn Model,
        dataset: &InMemoryDataset,
    ) -> Result<Vec<SweepResult>, SweepError> {
        let points = grid.points();
        if points.is_empty() {
            return Ok(Vec::new());
        }
        // Validation is microseconds per point; reject a bad grid before
        // spending any simulation compute (and before spawning threads),
        // rather than discovering the error after 199 valid points ran.
        for point in &points {
            if let Err(source) = point.experiment.validate() {
                return Err(SweepError {
                    index: point.index,
                    label: point.label(),
                    source,
                });
            }
        }
        let n_threads = self.effective_threads(points.len());
        let next = AtomicUsize::new(0);
        let mut outcomes: Vec<(usize, Result<TrainingReport, ConfigError>)> =
            Vec::with_capacity(points.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_threads)
                .map(|_| {
                    let next = &next;
                    let points = &points;
                    scope.spawn(move || {
                        let mut claimed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(point) = points.get(i) else {
                                break;
                            };
                            claimed.push((i, point.experiment.run(model, dataset)));
                        }
                        claimed
                    })
                })
                .collect();
            for handle in handles {
                outcomes.extend(handle.join().expect("sweep worker thread panicked"));
            }
        });
        outcomes.sort_unstable_by_key(|&(i, _)| i);
        debug_assert_eq!(outcomes.len(), points.len());
        let mut results = Vec::with_capacity(points.len());
        for (point, (_, outcome)) in points.into_iter().zip(outcomes) {
            // Pre-validation makes run() infallible here (its errors are
            // exactly validate()'s), so a failure now is a broken engine
            // invariant — surface it loudly rather than discarding the
            // completed grid behind a late Err.
            let report = match outcome {
                Ok(report) => report,
                Err(source) => unreachable!(
                    "sweep point {} ({}) failed after pre-validation: {source}",
                    point.index,
                    point.label()
                ),
            };
            results.push(SweepResult { point, report });
        }
        Ok(results)
    }
}

impl Default for SweepRunner {
    /// All cores.
    fn default() -> Self {
        Self::all_cores()
    }
}

/// Per-point aggregates of a completed sweep, renderable as a
/// [`hop_metrics::Table`], CSV or JSON.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    rows: Vec<SummaryRow>,
}

/// One sweep point's aggregate metrics.
#[derive(Debug, Clone)]
pub struct SummaryRow {
    /// Protocol-axis label.
    pub protocol: String,
    /// Cluster-axis label.
    pub cluster: String,
    /// Slowdown-axis label.
    pub slowdown: String,
    /// Master seed.
    pub seed: u64,
    /// Virtual wall time of the run (seconds).
    pub wall_time: f64,
    /// Last recorded eval loss (NaN when evaluation was disabled).
    pub final_eval_loss: f64,
    /// Mean iteration duration across workers (seconds).
    pub mean_iteration: f64,
    /// Payload bytes on the wire.
    pub bytes_sent: u64,
    /// Stale updates discarded by rotating queues.
    pub stale_discarded: u64,
    /// Whether the run deadlocked (or exhausted its event budget).
    pub deadlocked: bool,
}

impl SweepSummary {
    /// Aggregates `results` (kept in their grid order).
    pub fn from_results(results: &[SweepResult]) -> Self {
        let rows = results
            .iter()
            .map(|r| SummaryRow {
                protocol: r.point.protocol.clone(),
                cluster: r.point.cluster.clone(),
                slowdown: r.point.slowdown.clone(),
                seed: r.point.seed,
                wall_time: r.report.wall_time,
                final_eval_loss: r.report.eval_time.last().map_or(f64::NAN, |(_, v)| v),
                mean_iteration: r.report.mean_iteration_duration(),
                bytes_sent: r.report.bytes_sent,
                stale_discarded: r.report.stale_discarded,
                deadlocked: r.report.deadlocked,
            })
            .collect();
        Self { rows }
    }

    /// The per-point rows, in grid order.
    pub fn rows(&self) -> &[SummaryRow] {
        &self.rows
    }

    /// Number of summarized points.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the sweep had no points.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sum of the virtual wall times — the sequential virtual cost the
    /// parallel sweep amortizes over cores.
    pub fn total_wall_time(&self) -> f64 {
        self.rows.iter().map(|r| r.wall_time).sum()
    }

    /// Sum of the payload bytes across all points.
    pub fn total_bytes_sent(&self) -> u64 {
        self.rows.iter().map(|r| r.bytes_sent).sum()
    }

    /// Renders one aligned row per point.
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "protocol",
            "cluster",
            "slowdown",
            "seed",
            "wall_s",
            "eval_loss",
            "mean_iter_s",
            "bytes",
            "stale",
        ]);
        for row in &self.rows {
            table.add_row(vec![
                row.protocol.clone(),
                row.cluster.clone(),
                row.slowdown.clone(),
                row.seed.to_string(),
                format!("{:.4}", row.wall_time),
                if row.final_eval_loss.is_finite() {
                    format!("{:.4}", row.final_eval_loss)
                } else {
                    "-".to_string()
                },
                format!("{:.6}", row.mean_iteration),
                row.bytes_sent.to_string(),
                row.stale_discarded.to_string(),
            ]);
        }
        table
    }

    /// The table as RFC-4180-style CSV.
    pub fn to_csv(&self) -> String {
        self.table().to_csv()
    }

    /// A JSON array with one object per point (non-finite losses become
    /// `null`, so the output is always valid JSON).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let loss = if row.final_eval_loss.is_finite() {
                format!("{:.6}", row.final_eval_loss)
            } else {
                "null".to_string()
            };
            out.push_str(&format!(
                "{{\"protocol\":{},\"cluster\":{},\"slowdown\":{},\"seed\":{},\
                 \"wall_time_s\":{:.6},\"final_eval_loss\":{loss},\"mean_iter_s\":{:.6},\
                 \"bytes_sent\":{},\"stale_discarded\":{},\"deadlocked\":{}}}",
                json_string(&row.protocol),
                json_string(&row.cluster),
                json_string(&row.slowdown),
                row.seed,
                row.wall_time,
                row.mean_iteration,
                row.bytes_sent,
                row.stale_discarded,
                row.deadlocked,
            ));
        }
        out.push(']');
        out
    }
}

/// Minimal JSON string escaping for axis labels (quotes, backslashes and
/// control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HopConfig, PsConfig, PsMode};
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    fn workload() -> (Svm, InMemoryDataset) {
        let dataset = SyntheticWebspam::generate(96, 11);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        (model, dataset)
    }

    fn small_grid() -> SweepGrid {
        SweepGrid::new(Hyper::svm(), 8)
            .protocol("hop", Protocol::Hop(HopConfig::standard()))
            .protocol("ps_bsp", Protocol::Ps(PsConfig::new(PsMode::Bsp)))
            .prague_axis(&[2], &[1])
            .qgm_axis(&[0.9], 0.1)
            .cluster(
                "uniform",
                Topology::ring(4),
                ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
            )
            .slowdown("none", SlowdownModel::None)
            .seeds([3, 4])
    }

    #[test]
    fn grid_order_is_protocol_major_seed_minor() {
        let grid = small_grid();
        assert_eq!(grid.len(), 8);
        let points = grid.points();
        assert_eq!(points.len(), 8);
        assert_eq!(points[0].protocol, "hop");
        assert_eq!(points[0].seed, 3);
        assert_eq!(points[1].protocol, "hop");
        assert_eq!(points[1].seed, 4);
        assert_eq!(points[2].protocol, "ps_bsp");
        assert_eq!(points[4].protocol, "prague(g=2,r=1)");
        assert_eq!(points[6].protocol, "qgm(mu=0.9)");
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
        }
        assert_eq!(points[5].label(), "prague(g=2,r=1)/uniform/none/s4");
    }

    #[test]
    fn compression_axis_labels_one_point_per_codec() {
        use hop_tensor::CompressionConfig;
        let grid = SweepGrid::new(Hyper::svm(), 8)
            .compression_axis(
                &HopConfig::standard(),
                &[
                    CompressionConfig::Identity,
                    CompressionConfig::TopK { ratio: 0.01 },
                    CompressionConfig::Int8Uniform,
                ],
            )
            .cluster(
                "uniform",
                Topology::ring(4),
                ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
            )
            .slowdown("none", SlowdownModel::None)
            .seeds([3]);
        let points = grid.points();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].protocol, "hop(identity)");
        assert_eq!(points[1].protocol, "hop(topk_0.01)");
        assert_eq!(points[2].protocol, "hop(int8)");
        for p in &points {
            let Protocol::Hop(cfg) = &p.experiment.protocol else {
                panic!("compression axis must produce Hop points");
            };
            assert!(cfg.validate(&p.experiment.topology).is_ok());
        }
    }

    #[test]
    fn fault_axis_labels_and_plans() {
        let grid = SweepGrid::new(Hyper::svm(), 16)
            .protocol("hop", Protocol::Hop(HopConfig::backup(1, 4)))
            .cluster(
                "uniform",
                Topology::ring(4),
                ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
            )
            .fault_axis(&[0.0, 0.05], &[false, true])
            .slowdown("none", SlowdownModel::None)
            .seeds([3]);
        // 1 pristine + 3 faulted variants (the 0.0/false combo is skipped).
        let points = grid.points();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].cluster, "uniform");
        assert!(points[0].experiment.cluster.faults().is_empty());
        assert_eq!(points[1].cluster, "uniform+churn");
        assert_eq!(points[1].experiment.cluster.faults().crashes().len(), 1);
        assert_eq!(points[2].cluster, "uniform+loss0.05");
        assert_eq!(points[2].experiment.cluster.faults().loss(), 0.05);
        assert_eq!(points[3].cluster, "uniform+loss0.05+churn");
        for p in &points {
            assert!(p.experiment.validate().is_ok(), "{}", p.label());
        }
    }

    #[test]
    fn empty_axis_means_empty_grid() {
        let grid =
            SweepGrid::new(Hyper::svm(), 8).protocol("hop", Protocol::Hop(HopConfig::standard()));
        assert!(grid.is_empty());
        assert_eq!(grid.points().len(), 0);
        let (model, dataset) = workload();
        let results = SweepRunner::new(2).run(&grid, &model, &dataset).unwrap();
        assert!(results.is_empty());
    }

    #[test]
    fn parallel_results_match_sequential_run_calls() {
        let (model, dataset) = workload();
        let grid = small_grid();
        let sequential: Vec<u64> = grid
            .points()
            .iter()
            .map(|p| p.experiment.run(&model, &dataset).unwrap().digest())
            .collect();
        for threads in [1, 2, 4] {
            let results = SweepRunner::new(threads)
                .run(&grid, &model, &dataset)
                .unwrap();
            let digests: Vec<u64> = results.iter().map(SweepResult::digest).collect();
            assert_eq!(
                digests, sequential,
                "{threads}-thread sweep diverged from sequential runs"
            );
        }
    }

    #[test]
    fn invalid_point_error_is_thread_count_independent() {
        // Two invalid points (indices 2..=3: Prague group_size 0 for both
        // seeds); the reported error must be the lowest-index one at any
        // thread count.
        let (model, dataset) = workload();
        let grid = SweepGrid::new(Hyper::svm(), 8)
            .protocol("hop", Protocol::Hop(HopConfig::standard()))
            .protocol(
                "bad_prague",
                Protocol::Prague(PragueConfig {
                    group_size: 0,
                    ..PragueConfig::default()
                }),
            )
            .cluster(
                "uniform",
                Topology::ring(4),
                ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
            )
            .slowdown("none", SlowdownModel::None)
            .seeds([3, 4]);
        for threads in [1, 2, 4] {
            let err = SweepRunner::new(threads)
                .run(&grid, &model, &dataset)
                .unwrap_err();
            assert_eq!(err.index, 2, "wrong error point at {threads} threads");
            assert_eq!(
                err.source,
                ConfigError::InvalidPrague("group_size must be >= 1")
            );
            assert!(err.to_string().contains("bad_prague"));
        }
    }

    #[test]
    fn runner_thread_accounting() {
        assert_eq!(SweepRunner::new(4).effective_threads(100), 4);
        assert_eq!(SweepRunner::new(8).effective_threads(3), 3);
        assert_eq!(SweepRunner::new(3).effective_threads(0), 1);
        assert!(SweepRunner::all_cores().effective_threads(64) >= 1);
        assert_eq!(SweepRunner::default().threads, 0);
    }

    #[test]
    fn summary_renders_table_csv_json() {
        let (model, dataset) = workload();
        let grid = small_grid();
        let results = SweepRunner::new(2).run(&grid, &model, &dataset).unwrap();
        let summary = SweepSummary::from_results(&results);
        assert_eq!(summary.len(), 8);
        assert!(!summary.is_empty());
        assert!(summary.total_wall_time() > 0.0);
        assert!(summary.total_bytes_sent() > 0);
        let table = summary.table();
        assert_eq!(table.len(), 8);
        let rendered = table.render();
        assert!(rendered.contains("prague(g=2,r=1)"));
        assert!(rendered.contains("eval_loss"));
        let csv = summary.to_csv();
        assert_eq!(csv.lines().count(), 9, "header + one line per point");
        // CSV must quote the comma inside the Prague label.
        assert!(csv.contains("\"prague(g=2,r=1)\""));
        let json = summary.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert_eq!(json.matches("\"protocol\"").count(), 8);
        assert!(json.contains("\"wall_time_s\""));
        assert!(!json.contains("NaN"), "JSON must stay parseable");
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    }
}
