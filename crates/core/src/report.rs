//! Training reports: what an experiment returns.

use hop_metrics::TimeSeries;
use hop_sim::Trace;

/// The outcome of one simulated (or threaded) training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Iteration-entry trace (timing, gaps).
    pub trace: Trace,
    /// Per-worker minibatch training loss vs virtual time.
    pub train_loss_time: Vec<TimeSeries>,
    /// Per-worker minibatch training loss vs iteration index.
    pub train_loss_steps: Vec<TimeSeries>,
    /// Held-out loss of the parameter average across workers, vs time.
    pub eval_time: TimeSeries,
    /// Held-out loss of the parameter average across workers, vs steps
    /// (iteration of worker 0 at evaluation points).
    pub eval_steps: TimeSeries,
    /// Final parameters of every worker.
    pub final_params: Vec<Vec<f32>>,
    /// Virtual time at which the last worker finished.
    pub wall_time: f64,
    /// Stale updates discarded by rotating queues (§6.2).
    pub stale_discarded: u64,
    /// Payload bytes moved over the network.
    pub bytes_sent: u64,
    /// Whether the run ended in deadlock (event queue drained before all
    /// workers finished) — expected for AD-PSGD on non-bipartite graphs.
    pub deadlocked: bool,
    /// Whether the engine stopped because its event budget ran out (a
    /// runaway event storm) rather than a genuine stall. When set,
    /// `deadlocked` is also set: the run did not complete.
    pub budget_exhausted: bool,
}

impl TrainingReport {
    /// Mean of the per-worker training-loss curves, resampled onto the
    /// union of their time stamps (step interpolation). Useful as the
    /// single "loss vs time" line the paper plots per protocol.
    pub fn mean_train_loss_time(&self) -> TimeSeries {
        merge_mean(&self.train_loss_time)
    }

    /// Mean of the per-worker loss-vs-steps curves.
    pub fn mean_train_loss_steps(&self) -> TimeSeries {
        merge_mean(&self.train_loss_steps)
    }

    /// Virtual time to bring the evaluation loss down to `threshold`.
    pub fn time_to_eval_loss(&self, threshold: f64) -> Option<f64> {
        self.eval_time.time_to_reach(threshold)
    }

    /// Average iteration duration across workers.
    pub fn mean_iteration_duration(&self) -> f64 {
        self.trace.mean_iteration_duration()
    }

    /// Elementwise average of all workers' final parameters.
    pub fn averaged_params(&self) -> Vec<f32> {
        assert!(!self.final_params.is_empty(), "no final parameters");
        let mut out = vec![0.0f32; self.final_params[0].len()];
        let views: Vec<&[f32]> = self.final_params.iter().map(Vec::as_slice).collect();
        hop_tensor::ops::mean_into(&views, &mut out);
        out
    }
}

/// Pointwise mean of several step-interpolated series over the union of
/// their sample times.
fn merge_mean(series: &[TimeSeries]) -> TimeSeries {
    let mut times: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|&(t, _)| t))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN times"));
    times.dedup();
    let mut out = TimeSeries::new();
    for t in times {
        let mut sum = 0.0;
        let mut count = 0usize;
        for s in series {
            if let Some(v) = s.value_at(t) {
                sum += v;
                count += 1;
            }
        }
        if count > 0 {
            out.push(t, sum / count as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_mean_averages_overlapping() {
        let a = TimeSeries::from_points(vec![(0.0, 2.0), (2.0, 0.0)]);
        let b = TimeSeries::from_points(vec![(0.0, 4.0), (2.0, 2.0)]);
        let m = merge_mean(&[a, b]);
        assert_eq!(m.points(), &[(0.0, 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn merge_mean_steps_between_samples() {
        let a = TimeSeries::from_points(vec![(0.0, 2.0)]);
        let b = TimeSeries::from_points(vec![(1.0, 0.0)]);
        let m = merge_mean(&[a, b]);
        // At t=0 only `a` exists; at t=1 both (a holds at 2.0).
        assert_eq!(m.points(), &[(0.0, 2.0), (1.0, 1.0)]);
    }

    #[test]
    fn averaged_params_mean() {
        let report = TrainingReport {
            final_params: vec![vec![1.0, 3.0], vec![3.0, 5.0]],
            ..Default::default()
        };
        assert_eq!(report.averaged_params(), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "no final parameters")]
    fn averaged_params_requires_workers() {
        TrainingReport::default().averaged_params();
    }
}
