//! Training reports: what an experiment returns.

use crate::conformance::ProtocolTrace;
use hop_metrics::TimeSeries;
use hop_sim::{FaultLog, Trace};

/// The outcome of one simulated (or threaded) training run.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Structured protocol-event trace, present when the run was executed
    /// with conformance recording enabled (see
    /// [`crate::trainer::SimExperiment::run_conformance`]). Deliberately
    /// excluded from [`TrainingReport::digest`]: recording must never
    /// change what the figures consume.
    pub conformance: Option<ProtocolTrace>,
    /// Iteration-entry trace (timing, gaps).
    pub trace: Trace,
    /// Per-worker minibatch training loss vs virtual time.
    pub train_loss_time: Vec<TimeSeries>,
    /// Per-worker minibatch training loss vs iteration index.
    pub train_loss_steps: Vec<TimeSeries>,
    /// Held-out loss of the parameter average across workers, vs time.
    pub eval_time: TimeSeries,
    /// Held-out loss of the parameter average across workers, vs steps
    /// (iteration of worker 0 at evaluation points).
    pub eval_steps: TimeSeries,
    /// Final parameters of every worker.
    pub final_params: Vec<Vec<f32>>,
    /// Virtual time at which the last worker finished.
    pub wall_time: f64,
    /// Stale updates discarded by rotating queues (§6.2).
    pub stale_discarded: u64,
    /// Payload bytes moved over the network. When a compression codec is
    /// configured this counts *encoded* bytes — what actually crossed the
    /// wire — not the dense size of the updates.
    pub bytes_sent: u64,
    /// Bytes the configured compression codec avoided sending: dense
    /// size minus encoded size, summed over every compressed message.
    /// Zero for the identity codec. Deliberately excluded from
    /// [`TrainingReport::digest`]: like `events_processed` it is
    /// diagnostic accounting, not something the paper's figures consume,
    /// and adding it to the stream would break every pinned digest for a
    /// pure bookkeeping counter.
    pub bytes_saved: u64,
    /// Whether the run ended in deadlock (event queue drained before all
    /// workers finished) — expected for AD-PSGD on non-bipartite graphs.
    pub deadlocked: bool,
    /// Whether the engine stopped because its event budget ran out (a
    /// runaway event storm) rather than a genuine stall. When set,
    /// `deadlocked` is also set: the run did not complete.
    pub budget_exhausted: bool,
    /// Total events the pump processed — throughput denominator for
    /// scaling benchmarks. Deliberately excluded from
    /// [`TrainingReport::digest`]: it is a property of the engine's
    /// scheduling, not of anything the paper's figures consume, and
    /// digests must stay comparable across engine-internal changes that
    /// alter event counts without altering results.
    pub events_processed: u64,
    /// Payload messages dropped by the fault plane (loss draws, cut/dead
    /// links). Diagnostic accounting, excluded from
    /// [`TrainingReport::digest`]: with an empty [`hop_sim::FaultPlan`]
    /// it is always zero, and chaos sweeps compare digests across fault
    /// configurations.
    pub messages_dropped: u64,
    /// Worker crashes the fault plane fired. Digest-excluded diagnostic,
    /// like [`TrainingReport::messages_dropped`].
    pub crashes: u64,
    /// Crashed workers that rehydrated and rejoined. Digest-excluded
    /// diagnostic, like [`TrainingReport::messages_dropped`].
    pub rejoins: u64,
    /// Ordered sidecar of every fault the plane injected — the licensing
    /// record [`crate::conformance::Oracle::check_with_faults`] replays
    /// next to the protocol trace. Digest-excluded diagnostic, like
    /// [`TrainingReport::conformance`].
    pub fault_log: FaultLog,
}

impl TrainingReport {
    /// Mean of the per-worker training-loss curves, resampled onto the
    /// union of their time stamps (step interpolation). Useful as the
    /// single "loss vs time" line the paper plots per protocol.
    pub fn mean_train_loss_time(&self) -> TimeSeries {
        merge_mean(&self.train_loss_time)
    }

    /// Mean of the per-worker loss-vs-steps curves.
    pub fn mean_train_loss_steps(&self) -> TimeSeries {
        merge_mean(&self.train_loss_steps)
    }

    /// Virtual time to bring the evaluation loss down to `threshold`.
    pub fn time_to_eval_loss(&self, threshold: f64) -> Option<f64> {
        self.eval_time.time_to_reach(threshold)
    }

    /// Average iteration duration across workers.
    pub fn mean_iteration_duration(&self) -> f64 {
        self.trace.mean_iteration_duration()
    }

    /// FNV-1a digest over every bit-exact field of the report: final
    /// parameters, wall time, byte/stale counts, the outcome flags, the
    /// full trace, and all loss curves (per-worker train loss vs time and
    /// steps, eval loss vs time and steps). Two runs produce the same
    /// digest iff they are bit-identical in everything the paper's
    /// figures consume — the determinism invariant the engine promises
    /// and the sweep runner must preserve at any thread count.
    pub fn digest(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        // Every variable-size field is length-delimited before its
        // contents, so differently-shaped reports (e.g. one concatenated
        // final_params vector vs one per worker — exactly the
        // report-convention bug class PR 3 fixed) can never feed the
        // stream identical bytes.
        eat(&(self.final_params.len() as u64).to_le_bytes());
        for params in &self.final_params {
            eat(&(params.len() as u64).to_le_bytes());
            for v in params {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        eat(&self.wall_time.to_bits().to_le_bytes());
        eat(&self.bytes_sent.to_le_bytes());
        eat(&self.stale_discarded.to_le_bytes());
        eat(&[u8::from(self.deadlocked), u8::from(self.budget_exhausted)]);
        eat(&(self.trace.records().len() as u64).to_le_bytes());
        for r in self.trace.records() {
            eat(&(r.worker as u64).to_le_bytes());
            eat(&r.iter.to_le_bytes());
            eat(&r.time.to_bits().to_le_bytes());
        }
        eat(&(self.train_loss_time.len() as u64).to_le_bytes());
        eat(&(self.train_loss_steps.len() as u64).to_le_bytes());
        let curves = self
            .train_loss_time
            .iter()
            .chain(&self.train_loss_steps)
            .chain([&self.eval_time, &self.eval_steps]);
        for series in curves {
            eat(&(series.points().len() as u64).to_le_bytes());
            for &(t, v) in series.points() {
                eat(&t.to_bits().to_le_bytes());
                eat(&v.to_bits().to_le_bytes());
            }
        }
        h
    }

    /// Elementwise average of all workers' final parameters.
    pub fn averaged_params(&self) -> Vec<f32> {
        assert!(!self.final_params.is_empty(), "no final parameters");
        let mut out = vec![0.0f32; self.final_params[0].len()];
        let views: Vec<&[f32]> = self.final_params.iter().map(Vec::as_slice).collect();
        hop_tensor::ops::mean_into(&views, &mut out);
        out
    }
}

/// Pointwise mean of several step-interpolated series over the union of
/// their sample times.
fn merge_mean(series: &[TimeSeries]) -> TimeSeries {
    let mut times: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points().iter().map(|&(t, _)| t))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN times"));
    times.dedup();
    let mut out = TimeSeries::new();
    for t in times {
        let mut sum = 0.0;
        let mut count = 0usize;
        for s in series {
            if let Some(v) = s.value_at(t) {
                sum += v;
                count += 1;
            }
        }
        if count > 0 {
            out.push(t, sum / count as f64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_mean_averages_overlapping() {
        let a = TimeSeries::from_points(vec![(0.0, 2.0), (2.0, 0.0)]);
        let b = TimeSeries::from_points(vec![(0.0, 4.0), (2.0, 2.0)]);
        let m = merge_mean(&[a, b]);
        assert_eq!(m.points(), &[(0.0, 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn merge_mean_steps_between_samples() {
        let a = TimeSeries::from_points(vec![(0.0, 2.0)]);
        let b = TimeSeries::from_points(vec![(1.0, 0.0)]);
        let m = merge_mean(&[a, b]);
        // At t=0 only `a` exists; at t=1 both (a holds at 2.0).
        assert_eq!(m.points(), &[(0.0, 2.0), (1.0, 1.0)]);
    }

    #[test]
    fn averaged_params_mean() {
        let report = TrainingReport {
            final_params: vec![vec![1.0, 3.0], vec![3.0, 5.0]],
            ..Default::default()
        };
        assert_eq!(report.averaged_params(), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "no final parameters")]
    fn averaged_params_requires_workers() {
        TrainingReport::default().averaged_params();
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let report = TrainingReport {
            final_params: vec![vec![1.0, 2.0]],
            wall_time: 3.5,
            bytes_sent: 128,
            ..Default::default()
        };
        assert_eq!(report.digest(), report.digest());
        let mut tweaked = report.clone();
        tweaked.final_params[0][1] = f32::from_bits(tweaked.final_params[0][1].to_bits() + 1);
        assert_ne!(report.digest(), tweaked.digest());
        let mut flagged = report.clone();
        flagged.deadlocked = true;
        assert_ne!(report.digest(), flagged.digest());
        // Length delimiting: the same scalars split differently across
        // workers must not collide (the report-convention bug class).
        let mut reshaped = report.clone();
        reshaped.final_params = vec![vec![1.0], vec![2.0]];
        assert_ne!(report.digest(), reshaped.digest());
    }

    /// Audits exactly which fields [`TrainingReport::digest`] excludes.
    /// The excluded set is a contract: diagnostic accounting must never
    /// shift pinned digests, while every outcome flag must. If a field is
    /// added to the struct, this test is the checklist to extend.
    #[test]
    fn digest_exclusions_are_exactly_the_diagnostic_fields() {
        let report = TrainingReport {
            final_params: vec![vec![1.0, 2.0]],
            wall_time: 3.5,
            bytes_sent: 128,
            ..Default::default()
        };
        let base = report.digest();
        // Excluded: conformance recording must never change what the
        // figures consume. (The trace is built through the choreography
        // handles — the only API allowed to emit events.)
        let mut traced = report.clone();
        let mut trace = ProtocolTrace::new();
        crate::choreography::advance_only(&mut trace, 0, 0);
        traced.conformance = Some(trace);
        assert_eq!(base, traced.digest(), "conformance must be excluded");
        // Excluded: engine scheduling internals.
        let mut pumped = report.clone();
        pumped.events_processed = 12_345;
        assert_eq!(base, pumped.digest(), "events_processed must be excluded");
        // Excluded: compression bookkeeping.
        let mut saved = report.clone();
        saved.bytes_saved = 9_876;
        assert_eq!(base, saved.digest(), "bytes_saved must be excluded");
        // Excluded: fault-plane accounting — chaos sweeps compare digests
        // across fault configurations, and the empty-plan default keeps
        // all of these at zero/empty anyway.
        let mut dropped = report.clone();
        dropped.messages_dropped = 42;
        assert_eq!(base, dropped.digest(), "messages_dropped must be excluded");
        let mut crashed = report.clone();
        crashed.crashes = 2;
        assert_eq!(base, crashed.digest(), "crashes must be excluded");
        let mut rejoined = report.clone();
        rejoined.rejoins = 2;
        assert_eq!(base, rejoined.digest(), "rejoins must be excluded");
        let mut logged = report.clone();
        logged
            .fault_log
            .push(hop_sim::FaultEvent::Crash { worker: 0, iter: 3 });
        assert_eq!(base, logged.digest(), "fault_log must be excluded");
        // Included: both outcome flags are figure-visible results.
        let mut exhausted = report.clone();
        exhausted.budget_exhausted = true;
        assert_ne!(
            base,
            exhausted.digest(),
            "budget_exhausted must be digested"
        );
        let mut dead = report.clone();
        dead.deadlocked = true;
        assert_ne!(base, dead.digest(), "deadlocked must be digested");
    }
}
