//! The real multi-threaded runtime: Hop's queue-based protocol on OS
//! threads with genuinely blocking queues.
//!
//! This runtime demonstrates that the protocol as specified — tagged
//! update queues, token queues, backup workers, bounded staleness and
//! skipping iterations — runs correctly with true concurrency,
//! complementing the deterministic simulator used for the timing figures.
//! Workers are `std::thread`s; update queues are
//! [`hop_queue::blocking::SharedTaggedQueue`]s and token queues are
//! [`hop_queue::blocking::SharedTokenQueue`]s. All blocking calls carry a
//! timeout so protocol bugs show up as errors, not hangs.
//!
//! # Conformance
//!
//! [`ThreadedExperiment::run_traced`] records the same structured
//! [`ProtocolTrace`] the simulator emits, so both runtimes feed the same
//! [`crate::conformance::Oracle`]. Each worker logs its events locally
//! with a shared atomic sequence number; *grant* events (sends, token
//! passes) take their number **before** the queue operation and *observe*
//! events (consumes, token takes) **after** it, which makes the merged
//! order consistent with real-time causality (see the
//! [`crate::conformance`] module docs).
//!
//! # Fault injection
//!
//! [`ThreadedExperiment::faults`] installs a thread-local shim of the
//! simulator's fault plane: probabilistic message loss (same keyed
//! [`hop_sim::faults::loss_draw`] as the simulator, so draws are a pure
//! function of `(seed, from, to, iter)` across both runtimes) and crashes
//! modeled as *send omission* — a crashed worker's thread keeps running
//! but its external sends are dropped for the `down_iters` window, which
//! is how a dead peer looks from the outside. Every omission is
//! choreographed as a Send + Lost pair and logged to the report's
//! [`FaultLog`], so the fault-aware oracle can license each loss.
//! Time-window faults (cuts, partitions) and byzantine corruption are
//! simulator-only and ignored here.

use crate::choreography::{self, Arrival, ChoreographySpec, Consuming, EventSink, Renew, SeqSink};
use crate::config::{ComputeOrder, ConfigError, HopConfig, SyncMode};
use crate::conformance::{ProtocolEvent, ProtocolTrace};
use crate::semantics;
use crate::sim_runtime::compression::CompressionPlane;
use crate::trainer::Hyper;
use hop_data::{BatchSampler, Dataset, InMemoryDataset};
use hop_graph::Topology;
use hop_model::{GradScratch, Model, Sgd};
use hop_queue::blocking::{SharedTaggedQueue, SharedTokenQueue};
use hop_queue::tagged::{Tag, TagFilter};
use hop_sim::{FaultEvent, FaultLog, FaultPlan};
use hop_tensor::{BufferPool, ParamBlock};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The declared choreography of the threaded runtime: the full grammar,
/// identical to the simulator's decentralized plug-in — both are checked
/// against [`choreography::GRAMMAR`] by the `choreo_check` binary.
pub const CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "threaded",
    states: choreography::STATES,
    transitions: choreography::FULL_SPEC_TRANSITIONS,
    tokens: true,
    staleness: true,
    jumps: true,
    churn: true,
};

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Final parameters per worker.
    pub final_params: Vec<Vec<f32>>,
    /// Per-worker minibatch losses by iteration (skipped iterations have
    /// no loss entry).
    pub losses: Vec<Vec<f32>>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Every fault the shim injected, merged across worker threads; feed
    /// it to [`crate::conformance::Oracle::check_with_faults`] alongside
    /// the trace from [`ThreadedExperiment::run_traced`].
    pub fault_log: FaultLog,
}

impl ThreadedReport {
    /// Elementwise average of the final parameters. Empty when the report
    /// holds no workers (an empty worker set cannot come out of
    /// [`ThreadedExperiment::run`] — configs validate against a non-empty
    /// topology — but a hand-built report must not panic).
    pub fn averaged_params(&self) -> Vec<f32> {
        let views: Vec<&[f32]> = self.final_params.iter().map(Vec::as_slice).collect();
        let Some(first) = views.first() else {
            return Vec::new();
        };
        let mut out = vec![0.0f32; first.len()];
        hop_tensor::ops::mean_into(&views, &mut out);
        out
    }
}

/// The queue state a stalled worker reports: the snapshot of whichever
/// queue the timed-out wait was actually blocked on. A token stall shows
/// token availability, not the (irrelevant) update queue's pending tags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallDiag {
    /// The wait was on the worker's tagged update queue.
    Updates {
        /// Entries sitting in the update queue at stall time.
        queue_depth: usize,
        /// The first few pending tags in the queue (FIFO order,
        /// truncated).
        pending: Vec<Tag>,
        /// Tag of the last update this worker consumed, if any.
        last_consumed: Option<Tag>,
    },
    /// The wait was on the token queues of the worker's external
    /// out-going neighbors.
    Tokens {
        /// `(owner, tokens currently available)` for every
        /// `TokenQ(owner -> this worker)`, in
        /// [`Topology::external_out_neighbors`] order.
        available: Vec<(usize, u64)>,
    },
}

impl std::fmt::Display for StallDiag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallDiag::Updates {
                queue_depth,
                pending,
                last_consumed,
            } => {
                write!(f, "update-queue depth {queue_depth}, pending")?;
                if pending.is_empty() {
                    write!(f, " none")?;
                } else {
                    for tag in pending {
                        write!(f, " (iter {}, w {})", tag.iter, tag.w_id)?;
                    }
                }
                match last_consumed {
                    Some(tag) => write!(
                        f,
                        ", last consumed iter {} from worker {}",
                        tag.iter, tag.w_id
                    ),
                    None => write!(f, ", nothing consumed yet"),
                }
            }
            StallDiag::Tokens { available } => {
                write!(f, "token queues")?;
                for (owner, n) in available {
                    write!(f, " TokenQ({owner}): {n}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error from the threaded runtime.
#[derive(Debug)]
pub enum ThreadedError {
    /// The configuration is invalid for the topology.
    Config(ConfigError),
    /// A blocking queue operation timed out (protocol stall), with enough
    /// queue state to debug the failure from the error alone.
    Stalled {
        /// Worker that stalled.
        worker: usize,
        /// Iteration at which it stalled.
        iter: u64,
        /// What it was waiting for.
        waiting_for: &'static str,
        /// Snapshot of the queue the wait was blocked on.
        diag: StallDiag,
    },
    /// The serial order / NOTIFY-ACK path is only exercised in the
    /// simulator runtime.
    SerialUnsupported,
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::Config(e) => write!(f, "invalid config: {e}"),
            ThreadedError::Stalled {
                worker,
                iter,
                waiting_for,
                diag,
            } => write!(
                f,
                "worker {worker} stalled at iteration {iter} waiting for {waiting_for} ({diag})"
            ),
            ThreadedError::SerialUnsupported => {
                write!(f, "threaded runtime implements the parallel order only")
            }
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<ConfigError> for ThreadedError {
    fn from(e: ConfigError) -> Self {
        ThreadedError::Config(e)
    }
}

/// A threaded decentralized training run.
#[derive(Debug, Clone)]
pub struct ThreadedExperiment {
    /// Protocol configuration (parallel order, queue-based sync; skip mode
    /// runs over the real blocking token queues).
    pub config: HopConfig,
    /// Communication graph.
    pub topology: Topology,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Master seed.
    pub seed: u64,
    /// Optimizer hyperparameters.
    pub hyper: Hyper,
    /// Artificial per-iteration sleep (simulating compute) — keep small in
    /// tests; `Duration::ZERO` disables.
    pub compute_sleep: Duration,
    /// Makes one worker a deterministic straggler: `(worker, factor)`
    /// multiplies its `compute_sleep`. The threaded analogue of the
    /// simulator's `paper_straggler` model; what makes skip-mode jumps
    /// actually fire on real threads.
    pub slow_worker: Option<(usize, u32)>,
    /// Timeout for any single blocking operation before declaring a stall.
    pub stall_timeout: Duration,
    /// Fault-injection plan (loss + crash-as-send-omission; see the
    /// module docs). The default empty plan injects nothing.
    pub faults: FaultPlan,
}

/// Final `(params, train-loss curve, conformance events, injected
/// faults)` of one worker thread.
type WorkerOutcome = Result<
    (
        Vec<f32>,
        Vec<f32>,
        Vec<(u64, ProtocolEvent)>,
        Vec<FaultEvent>,
    ),
    ThreadedError,
>;

impl ThreadedExperiment {
    /// Runs the experiment with one OS thread per worker.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadedError::Config`] for invalid configurations,
    /// [`ThreadedError::SerialUnsupported`] for the simulator-only serial
    /// order / NOTIFY-ACK path, and [`ThreadedError::Stalled`] if any
    /// blocking step exceeds `stall_timeout`.
    pub fn run(
        &self,
        model: Arc<dyn Model>,
        dataset: Arc<InMemoryDataset>,
    ) -> Result<ThreadedReport, ThreadedError> {
        Ok(self.run_inner(model, dataset, false)?.0)
    }

    /// [`Self::run`] with conformance recording: also returns the merged
    /// [`ProtocolTrace`], ready for [`crate::conformance::Oracle::check`].
    ///
    /// # Errors
    ///
    /// Exactly [`Self::run`]'s errors.
    pub fn run_traced(
        &self,
        model: Arc<dyn Model>,
        dataset: Arc<InMemoryDataset>,
    ) -> Result<(ThreadedReport, ProtocolTrace), ThreadedError> {
        let (report, trace) = self.run_inner(model, dataset, true)?;
        Ok((report, trace.expect("tracing was enabled")))
    }

    fn run_inner(
        &self,
        model: Arc<dyn Model>,
        dataset: Arc<InMemoryDataset>,
        traced: bool,
    ) -> Result<(ThreadedReport, Option<ProtocolTrace>), ThreadedError> {
        self.config.validate(&self.topology)?;
        self.faults
            .validate()
            .map_err(|why| ThreadedError::Config(ConfigError::InvalidFaultPlan(why)))?;
        if self.config.order != ComputeOrder::Parallel || self.config.sync == SyncMode::NotifyAck {
            return Err(ThreadedError::SerialUnsupported);
        }
        let n = self.topology.len();
        // Update queues carry zero-copy parameter snapshots: an enqueue is
        // a refcount bump on the sender's current block.
        let update_queues: Vec<SharedTaggedQueue<ParamBlock>> =
            (0..n).map(|_| SharedTaggedQueue::new()).collect();
        // TokenQ(owner -> consumer) for every external edge: worker `i`
        // owns TokenQ(i -> j) for each in-coming neighbor `j`; `j` removes
        // from it to advance.
        let max_ig = self.config.max_ig();
        let mut token_queues: HashMap<(usize, usize), SharedTokenQueue> = HashMap::new();
        if let Some(ig) = max_ig {
            for i in 0..n {
                for &j in self.topology.external_in_neighbors(i) {
                    token_queues.insert((i, j), SharedTokenQueue::new(ig));
                }
            }
        }
        let token_queues = Arc::new(token_queues);
        let seq = AtomicU64::new(0);
        let mut init_rng = hop_util::Xoshiro256::seed_from_u64(self.seed);
        let init_params = ParamBlock::from_vec(model.init_params(&mut init_rng));
        let start = Instant::now();
        let results: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..n {
                let update_queues = &update_queues;
                let token_queues = Arc::clone(&token_queues);
                let model = Arc::clone(&model);
                let dataset = Arc::clone(&dataset);
                let init = init_params.snapshot();
                let cfg = self.config.clone();
                let topo = self.topology.clone();
                let hyper = self.hyper;
                let max_iters = self.max_iters;
                let seed = self.seed;
                let sleep = match self.slow_worker {
                    Some((slow, factor)) if slow == w => self.compute_sleep * factor,
                    _ => self.compute_sleep,
                };
                let timeout = self.stall_timeout;
                let faults = &self.faults;
                let conf = traced.then(|| SeqSink::new(&seq));
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w,
                        cfg,
                        topo,
                        model.as_ref(),
                        dataset.as_ref(),
                        hyper,
                        max_iters,
                        seed,
                        sleep,
                        timeout,
                        &init,
                        update_queues,
                        &token_queues,
                        faults,
                        conf,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut final_params = Vec::with_capacity(n);
        let mut losses = Vec::with_capacity(n);
        let mut all_events = Vec::new();
        let mut fault_log = FaultLog::new();
        for r in results {
            let (p, l, ev, faults) = r?;
            final_params.push(p);
            losses.push(l);
            all_events.extend(ev);
            for fault in faults {
                fault_log.push(fault);
            }
        }
        let trace = traced.then(|| {
            all_events.sort_by_key(|&(s, _)| s);
            let mut trace = ProtocolTrace::new();
            for (_, ev) in all_events {
                trace.push(ev);
            }
            trace
        });
        Ok((
            ThreadedReport {
                final_params,
                losses,
                elapsed: start.elapsed(),
                fault_log,
            },
            trace,
        ))
    }
}

/// Keeps only the newest update per sender: superseded or stale-on-arrival
/// blocks are recycled into the worker's pool so the staleness path stays
/// allocation-free in steady state. Returns whether the entry was
/// admitted as the new newest.
fn note_newest(
    newest_from: &mut HashMap<usize, (u64, ParamBlock)>,
    pool: &mut BufferPool,
    entry: hop_queue::tagged::TaggedEntry<ParamBlock>,
) -> bool {
    let newer = newest_from
        .get(&entry.tag.w_id)
        .is_none_or(|&(have, _)| entry.tag.iter > have);
    if newer {
        if let Some((_, old)) = newest_from.insert(entry.tag.w_id, (entry.tag.iter, entry.value)) {
            pool.reclaim(old);
        }
    } else {
        pool.reclaim(entry.value);
    }
    newer
}

/// Shared per-worker loop state passed between the recv/renew helpers
/// (also driven by the process runtime, whose worker half runs the same
/// loop over socket-fed queues).
pub(crate) struct WorkerCtx<'a> {
    pub(crate) w: usize,
    pub(crate) cfg: &'a HopConfig,
    pub(crate) timeout: Duration,
    pub(crate) pool: BufferPool,
    pub(crate) newest_from: HashMap<usize, (u64, ParamBlock)>,
    pub(crate) last_consumed: Option<Tag>,
}

impl WorkerCtx<'_> {
    /// Builds the enriched stall error from the update queue the wait was
    /// blocked on.
    pub(crate) fn stall(
        &self,
        iter: u64,
        waiting_for: &'static str,
        queue: &SharedTaggedQueue<ParamBlock>,
    ) -> ThreadedError {
        let mut pending = queue.tags();
        pending.truncate(8);
        ThreadedError::Stalled {
            worker: self.w,
            iter,
            waiting_for,
            diag: StallDiag::Updates {
                queue_depth: queue.len(),
                pending,
                last_consumed: self.last_consumed,
            },
        }
    }

    /// Builds the stall error for a token wait: reports the availability
    /// of every `TokenQ(owner -> w)` the worker advances through, not the
    /// update queue (whose pending tags are irrelevant to a token stall).
    pub(crate) fn stall_tokens(&self, iter: u64, available: Vec<(usize, u64)>) -> ThreadedError {
        ThreadedError::Stalled {
            worker: self.w,
            iter,
            waiting_for: "tokens",
            diag: StallDiag::Tokens { available },
        }
    }

    /// Folds one queue arrival into `newest_from`; the staleness verdict
    /// is choreographed as a delivery-plane [`Arrival`] judgement.
    fn admit_entry(
        &mut self,
        entry: hop_queue::tagged::TaggedEntry<ParamBlock>,
        at_iter: u64,
        sink: &mut impl EventSink,
    ) {
        let arrival = Arrival {
            worker: self.w,
            from: entry.tag.w_id,
            iter: entry.tag.iter,
        };
        let admitted = note_newest(&mut self.newest_from, &mut self.pool, entry);
        arrival.judge(sink, admitted, at_iter);
    }

    /// Drains every queued arrival into `newest_from`, judging each.
    fn drain_arrivals(
        &mut self,
        queue: &SharedTaggedQueue<ParamBlock>,
        at_iter: u64,
        sink: &mut impl EventSink,
    ) {
        for entry in queue.dequeue_up_to(usize::MAX, TagFilter::any()) {
            self.admit_entry(entry, at_iter, sink);
        }
    }

    /// The staleness-mode snapshot collection for the newest updates of
    /// `neighbors`; each is consumed through `step` (an exchanging
    /// [`Step`](choreography::Step) or a [`Renew`]), which is what pins
    /// the Consume events to the handle's iteration.
    pub(crate) fn collect_newest(
        &mut self,
        neighbors: &[usize],
        step: &mut impl Consuming,
        sink: &mut impl EventSink,
    ) -> Vec<(u64, ParamBlock)> {
        neighbors
            .iter()
            .map(|j| {
                let (iter, p) = &self.newest_from[j];
                let (iter, snap) = (*iter, p.snapshot());
                self.last_consumed = Some(Tag { iter, w_id: *j });
                step.consume(sink, *j, iter);
                (iter, snap)
            })
            .collect()
    }
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn worker_loop(
    w: usize,
    cfg: HopConfig,
    topo: Topology,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: Hyper,
    max_iters: u64,
    seed: u64,
    compute_sleep: Duration,
    timeout: Duration,
    init_params: &ParamBlock,
    update_queues: &[SharedTaggedQueue<ParamBlock>],
    token_queues: &HashMap<(usize, usize), SharedTokenQueue>,
    faults: &FaultPlan,
    mut conf: Option<SeqSink<'_>>,
) -> WorkerOutcome {
    // All workers start on one shared allocation; the first write
    // detaches copy-on-write.
    let mut params = init_params.snapshot();
    let mut opt = Sgd::new(hyper.lr, hyper.momentum, hyper.weight_decay, params.len());
    let mut sampler = BatchSampler::for_worker(dataset.len(), hyper.batch_size, seed, w);
    let mut grad = vec![0.0f32; params.len()];
    let mut delta = vec![0.0f32; params.len()];
    let mut scratch = GradScratch::new();
    let mut losses = Vec::with_capacity(max_iters as usize);
    let in_deg = topo.in_degree(w);
    let in_neighbors = topo.in_neighbors(w);
    let externals_in = topo.external_in_neighbors(w);
    let externals_out = topo.external_out_neighbors(w);
    let max_ig = cfg.max_ig();
    // One outgoing parameter stream per worker: every external receiver
    // of `w` gets the identical reconstruction, so the codec state is
    // thread-local and lock-free. The own-queue self-send stays exact.
    let mut plane = CompressionPlane::new(cfg.compression);
    plane.add_param_streams(1, init_params.as_slice());
    let mut ctx = WorkerCtx {
        w,
        cfg: &cfg,
        timeout,
        pool: BufferPool::new(),
        newest_from: HashMap::new(),
        last_consumed: None,
    };
    let mut fault_events: Vec<FaultEvent> = Vec::new();
    let mut k: u64 = 0;
    // Tokens granted to in-neighbors at the next iteration entry: the
    // k = 0 allotment is pre-loaded in the queues, a normal advance grants
    // 1, and a jump grants its whole distance immediately (so neighbors
    // are never starved during the renew) and zeroes this.
    let mut entry_tokens: u64 = 0;
    while k < max_iters {
        let step = choreography::begin_step(&mut conf, w, k);
        if max_ig.is_some() && entry_tokens > 0 {
            for j in externals_in {
                choreography::token_grant(&mut conf, w, *j, entry_tokens);
                token_queues[&(w, *j)].insert(entry_tokens);
            }
        }
        // Send (parallel order): own queue and all out-neighbors. Each
        // enqueue shares the current block — zero parameter bytes copied.
        step.send(&mut conf, w);
        update_queues[w].enqueue(params.snapshot(), Tag { iter: k, w_id: w });
        // Under a lossy codec the external sends carry the stream's
        // reconstruction (encoded once per iteration, shared across
        // receivers); identity sends share the exact block.
        let wire = if plane.is_active() && !externals_out.is_empty() {
            let (recon, _) = plane.encode_params(0, params.as_slice(), &mut ctx.pool);
            Some(recon)
        } else {
            None
        };
        for &o in externals_out {
            step.send(&mut conf, o);
            // Fault shim: a crash window omits every external send (the
            // thread keeps running — from the outside that is what a dead
            // worker looks like); otherwise the keyed loss draw decides.
            // Each omission stays in the ledger as a Send + Lost pair and
            // is logged so the oracle can license it.
            if !faults.is_empty() {
                let crashed = faults
                    .crashes()
                    .iter()
                    .any(|c| c.worker == w && k >= c.at_iter && k < c.at_iter + c.down_iters);
                let rate = faults.loss_rate(w, o);
                if crashed || (rate > 0.0 && hop_sim::faults::loss_draw(seed, w, o, k) < rate) {
                    choreography::lost_update(&mut conf, o, w, k);
                    fault_events.push(FaultEvent::Loss {
                        from: w,
                        to: o,
                        iter: k,
                    });
                    continue;
                }
            }
            let payload = match &wire {
                Some(recon) => recon.snapshot(),
                None => params.snapshot(),
            };
            update_queues[o].enqueue(payload, Tag { iter: k, w_id: w });
        }
        if let Some(recon) = wire {
            ctx.pool.reclaim(recon);
        }
        // Compute.
        let step = step.begin_compute(&mut conf);
        if !compute_sleep.is_zero() {
            std::thread::sleep(compute_sleep);
        }
        let batch = sampler.next_batch(dataset);
        let loss = model.loss_grad_with(params.as_slice(), &batch, &mut grad, &mut scratch);
        let mut step = step.end_compute(&mut conf);
        losses.push(loss);
        opt.delta(params.as_slice(), &grad, &mut delta);
        // Recv + Reduce: both paths funnel through the handle, whose
        // `reduce` is the only way to emit the Reduce event.
        let step = if let Some(s) = cfg.staleness {
            stale_recv(
                &mut ctx,
                &update_queues[w],
                in_neighbors,
                k,
                s,
                "a satisfactory update",
                &mut conf,
            )?;
            let collected = ctx.collect_newest(in_neighbors, &mut step, &mut conf);
            let step = step.reduce(&mut conf);
            let views: Vec<(u64, &[f32])> = collected
                .iter()
                .map(|(iter, p)| (*iter, p.as_slice()))
                .collect();
            // Full overwrite: shared blocks detach without copying.
            semantics::reduce_staleness_with(
                cfg.staleness_weighting,
                &views,
                k,
                s,
                params.overwrite_mut(&mut ctx.pool),
            );
            step
        } else {
            let quota = semantics::backup_quota(in_deg, cfg.n_backup);
            let mut entries = update_queues[w]
                .dequeue(quota, TagFilter::iter(k), timeout)
                .map_err(|_| ctx.stall(k, "updates", &update_queues[w]))?;
            // Fig. 8 line 5: grab extras that happen to be here already.
            entries.extend(update_queues[w].dequeue_up_to(in_deg - quota, TagFilter::iter(k)));
            for entry in &entries {
                ctx.last_consumed = Some(entry.tag);
                step.consume(&mut conf, entry.tag.w_id, entry.tag.iter);
            }
            let step = step.reduce(&mut conf);
            let views: Vec<&[f32]> = entries.iter().map(|e| e.value.as_slice()).collect();
            semantics::reduce_mean(&views, params.overwrite_mut(&mut ctx.pool));
            drop(views);
            for entry in entries {
                ctx.pool.reclaim(entry.value);
            }
            step
        };
        semantics::apply_parallel(params.make_mut(), &delta);
        // Advance: the §5 skip decision over the real token queues, else
        // one token from every out-going neighbor's queue.
        let mut next = k + 1;
        entry_tokens = 1;
        if let (Some(ig), false) = (max_ig, externals_out.is_empty()) {
            let decision = cfg.skip.as_ref().and_then(|skip| {
                let counts: Vec<u64> = externals_out
                    .iter()
                    .map(|o| token_queues[&(*o, w)].available())
                    .collect();
                // Never jump past the end of training: finished neighbors
                // flood their token queues (see below), which would
                // otherwise inflate the jump distance.
                semantics::jump_decision(&counts, ig, skip)
                    .map(|j| j.min(max_iters - k))
                    .filter(|&j| j >= 2)
                    .map(|jump| (jump, counts))
            });
            if let Some((jump, counts)) = decision {
                let renew = step.jump(&mut conf, k + jump, &counts);
                for &o in externals_out {
                    // Only this worker removes from TokenQ(o -> w), so
                    // the observed count cannot shrink under us.
                    assert!(
                        token_queues[&(o, w)].try_remove(jump),
                        "observed tokens vanished from TokenQ({o} -> {w})"
                    );
                    renew.take_tokens(&mut conf, o);
                }
                // Grant the same number to in-neighbors right away so
                // they are never starved while we renew parameters.
                for j in externals_in {
                    choreography::token_grant(&mut conf, w, *j, jump);
                    token_queues[&(w, *j)].insert(jump);
                }
                entry_tokens = 0;
                next = k + jump;
                jump_renew(
                    &mut ctx,
                    &update_queues[w],
                    externals_in,
                    &mut params,
                    &mut opt,
                    k,
                    renew,
                    &mut conf,
                )?;
            } else {
                for &o in externals_out {
                    token_queues[&(o, w)].remove(1, timeout).map_err(|_| {
                        // Snapshot every out-edge token queue, not the
                        // update queue: this wait is on tokens.
                        let available = externals_out
                            .iter()
                            .map(|&q| (q, token_queues[&(q, w)].available()))
                            .collect();
                        ctx.stall_tokens(k, available)
                    })?;
                    step.take_token(&mut conf, o);
                }
                step.complete();
            }
        } else {
            step.complete();
        }
        k = next;
    }
    choreography::advance_only(&mut conf, w, max_iters);
    // Final courtesy: release tokens so lagging neighbors can finish their
    // last iterations without waiting on a finished worker.
    if max_ig.is_some() {
        for j in externals_in {
            choreography::token_grant(&mut conf, w, *j, max_iters);
            token_queues[&(w, *j)].insert(max_iters);
        }
    }
    Ok((
        params.to_vec(),
        losses,
        conf.map(SeqSink::into_events).unwrap_or_default(),
        fault_events,
    ))
}

/// The staleness-mode Recv: block until every listed neighbor's newest
/// update satisfies the window at `k` (the Recv's iteration, or
/// `target - 1` for a jump renew — `waiting_for` labels the stall).
pub(crate) fn stale_recv(
    ctx: &mut WorkerCtx<'_>,
    queue: &SharedTaggedQueue<ParamBlock>,
    neighbors: &[usize],
    k: u64,
    s: u64,
    waiting_for: &'static str,
    sink: &mut impl EventSink,
) -> Result<(), ThreadedError> {
    loop {
        ctx.drain_arrivals(queue, k, sink);
        let satisfied = neighbors.iter().all(|j| {
            ctx.newest_from
                .get(j)
                .is_some_and(|&(iter, _)| semantics::staleness_satisfied(iter, k, s))
        });
        if satisfied {
            return Ok(());
        }
        // Wait for at least one new arrival, then re-scan.
        match queue.dequeue(1, TagFilter::any(), ctx.timeout) {
            Ok(entries) => {
                for entry in entries {
                    ctx.admit_entry(entry, k, sink);
                }
            }
            Err(_) => return Err(ctx.stall(k, waiting_for, queue)),
        }
    }
}

/// The §5 pre-jump renewal: `Recv(target - 1)` + Reduce so the
/// straggler's future updates are not hopelessly stale, then reset the
/// momentum (its history refers to an abandoned trajectory) and discard
/// queued updates for the skipped iterations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn jump_renew(
    ctx: &mut WorkerCtx<'_>,
    queue: &SharedTaggedQueue<ParamBlock>,
    externals_in: &[usize],
    params: &mut ParamBlock,
    opt: &mut Sgd,
    k: u64,
    mut renew: Renew,
    sink: &mut impl EventSink,
) -> Result<(), ThreadedError> {
    let w = ctx.w;
    let target = renew.target();
    let renew_iter = target - 1;
    if let Some(s) = ctx.cfg.staleness {
        stale_recv(
            ctx,
            queue,
            externals_in,
            renew_iter,
            s,
            "jump-renew updates",
            sink,
        )?;
        let mut collected = ctx.collect_newest(externals_in, &mut renew, sink);
        // Own (stale) parameters participate with clamped weight; the
        // snapshot keeps them readable while the replica is rewritten
        // (the renewing handle counts them into the Reduce itself).
        collected.push((k, params.snapshot()));
        renew.renew_reduce(sink);
        let views: Vec<(u64, &[f32])> = collected
            .iter()
            .map(|(iter, p)| (*iter, p.as_slice()))
            .collect();
        semantics::reduce_staleness_with(
            ctx.cfg.staleness_weighting,
            &views,
            renew_iter,
            s,
            params.overwrite_mut(&mut ctx.pool),
        );
    } else {
        // Backup mode: collect the quota of iteration `target - 1` updates
        // from external in-neighbors (self never sent one).
        let ext = externals_in.len();
        let quota = semantics::backup_quota(ext + 1, ctx.cfg.n_backup)
            .saturating_sub(1)
            .max(1);
        let mut entries = queue
            .dequeue(quota, TagFilter::iter(renew_iter), ctx.timeout)
            .map_err(|_| ctx.stall(k, "jump-renew updates", queue))?;
        entries.extend(queue.dequeue_up_to(ext - quota, TagFilter::iter(renew_iter)));
        for entry in &entries {
            ctx.last_consumed = Some(entry.tag);
            renew.consume(sink, entry.tag.w_id, entry.tag.iter);
        }
        renew.renew_reduce(sink);
        let own = params.snapshot();
        let mut views: Vec<&[f32]> = entries.iter().map(|e| e.value.as_slice()).collect();
        views.push(own.as_slice());
        semantics::reduce_mean(&views, params.overwrite_mut(&mut ctx.pool));
        drop(views);
        ctx.pool.reclaim(own);
        for entry in entries {
            ctx.pool.reclaim(entry.value);
        }
        // Updates for the skipped iterations will never be consumed;
        // recycle them (conformance records the drops).
        for entry in queue.drain_older_than(target) {
            choreography::drop_update(sink, w, entry.tag.w_id, entry.tag.iter);
            ctx.pool.reclaim(entry.value);
        }
    }
    // Momentum history refers to a trajectory this worker abandoned.
    opt.reset_velocity();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkipConfig;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;

    fn experiment(config: HopConfig) -> ThreadedExperiment {
        ThreadedExperiment {
            config,
            topology: Topology::ring(4),
            max_iters: 30,
            seed: 9,
            hyper: Hyper::svm(),
            compute_sleep: Duration::ZERO,
            slow_worker: None,
            stall_timeout: Duration::from_secs(20),
            faults: FaultPlan::none(),
        }
    }

    fn run(config: HopConfig) -> ThreadedReport {
        let dataset = Arc::new(SyntheticWebspam::generate(256, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        experiment(config)
            .run(model, dataset)
            .expect("run succeeds")
    }

    #[test]
    fn standard_converges_on_threads() {
        let report = run(HopConfig::standard());
        let dataset = SyntheticWebspam::generate(256, 3);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let avg = report.averaged_params();
        let eval: Vec<usize> = (0..128).collect();
        let loss = hop_model::Model::loss(&model, &avg, &hop_data::Dataset::batch(&dataset, &eval));
        assert!(loss < 0.6, "final averaged loss {loss}");
        for w in 0..4 {
            assert_eq!(report.losses[w].len(), 30);
        }
    }

    #[test]
    fn compressed_sends_converge_on_threads() {
        // Top-25% gossip on real threads: the protocol still completes
        // and the averaged replica still learns (the reference stream
        // re-injects dropped mass message by message).
        let cfg = HopConfig::standard()
            .with_compression(hop_tensor::CompressionConfig::TopK { ratio: 0.25 });
        let report = run(cfg);
        let dataset = SyntheticWebspam::generate(256, 3);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let avg = report.averaged_params();
        let eval: Vec<usize> = (0..128).collect();
        let loss = hop_model::Model::loss(&model, &avg, &hop_data::Dataset::batch(&dataset, &eval));
        assert!(loss < 0.65, "final averaged loss {loss}");
    }

    #[test]
    fn tokens_backup_and_staleness_run() {
        for cfg in [
            HopConfig::standard_with_tokens(4),
            HopConfig::backup(1, 4),
            HopConfig::staleness(3, 4),
            HopConfig::hybrid(1, 3, 4),
        ] {
            let report = run(cfg.clone());
            assert_eq!(report.final_params.len(), 4, "{cfg:?}");
        }
    }

    #[test]
    fn skip_jumps_on_real_threads() {
        // A 20x straggler under backup + skip: the straggler must jump
        // (fewer loss entries than max_iters) and every worker finishes.
        // Jumping depends on real thread timing, so allow a few attempts
        // on a loaded machine before declaring skip mode broken.
        let dataset = Arc::new(SyntheticWebspam::generate(256, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        let mut exp = experiment(HopConfig::backup(1, 4).with_skip(SkipConfig {
            max_jump: 6,
            trigger_behind: 2,
        }));
        exp.compute_sleep = Duration::from_micros(500);
        exp.slow_worker = Some((0, 20));
        exp.max_iters = 40;
        let mut straggler_iters = usize::MAX;
        for _ in 0..3 {
            let report = exp
                .run(Arc::clone(&model) as Arc<dyn Model>, Arc::clone(&dataset))
                .expect("skip-mode run succeeds");
            assert_eq!(report.final_params.len(), 4);
            for w in 1..4 {
                assert_eq!(report.losses[w].len(), 40, "worker {w}");
            }
            straggler_iters = straggler_iters.min(report.losses[0].len());
            if straggler_iters < 40 {
                break;
            }
        }
        assert!(
            straggler_iters < 40,
            "straggler computed all {straggler_iters} iterations despite skipping"
        );
    }

    #[test]
    fn notify_ack_is_rejected() {
        let dataset = Arc::new(SyntheticWebspam::generate(64, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        let err = experiment(HopConfig::notify_ack())
            .run(model, dataset)
            .unwrap_err();
        assert!(matches!(err, ThreadedError::SerialUnsupported));
    }

    #[test]
    fn averaged_params_of_empty_report_is_empty() {
        // Regression: this used to index `views[0]` and panic.
        let report = ThreadedReport {
            final_params: Vec::new(),
            losses: Vec::new(),
            elapsed: Duration::ZERO,
            fault_log: FaultLog::new(),
        };
        assert!(report.averaged_params().is_empty());
    }

    #[test]
    fn stalled_error_is_debuggable() {
        let e = ThreadedError::Stalled {
            worker: 2,
            iter: 7,
            waiting_for: "updates",
            diag: StallDiag::Updates {
                queue_depth: 3,
                pending: vec![Tag { iter: 6, w_id: 1 }],
                last_consumed: Some(Tag { iter: 6, w_id: 3 }),
            },
        };
        let s = format!("{e}");
        assert!(s.contains("worker 2"), "{s}");
        assert!(s.contains("depth 3"), "{s}");
        assert!(s.contains("(iter 6, w 1)"), "{s}");
        assert!(s.contains("last consumed iter 6 from worker 3"), "{s}");
        let e = ThreadedError::Stalled {
            worker: 1,
            iter: 2,
            waiting_for: "tokens",
            diag: StallDiag::Tokens {
                available: vec![(0, 0), (3, 2)],
            },
        };
        let s = format!("{e}");
        assert!(s.contains("waiting for tokens"), "{s}");
        assert!(s.contains("TokenQ(0): 0"), "{s}");
        assert!(s.contains("TokenQ(3): 2"), "{s}");
    }

    #[test]
    fn token_stall_reports_token_queue_state() {
        // Regression: the token-wait stall used to report the *update*
        // queue's diagnostics while claiming to wait for tokens. Force a
        // genuine token stall: backup(1, 2) on a 2-ring lets worker 1
        // reduce on its own update alone (quota 1), so the only thing
        // binding it to the sleeping worker 0 is the token queue — the
        // ig = 2 preload runs dry at iteration 2 while worker 0 is still
        // asleep in its first compute.
        let dataset = Arc::new(SyntheticWebspam::generate(64, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        let exp = ThreadedExperiment {
            config: HopConfig::backup(1, 2),
            topology: Topology::ring(2),
            max_iters: 3,
            seed: 9,
            hyper: Hyper::svm(),
            compute_sleep: Duration::from_millis(10),
            slow_worker: Some((0, 40)),
            stall_timeout: Duration::from_millis(60),
            faults: FaultPlan::none(),
        };
        let err = exp.run(model, dataset).unwrap_err();
        match &err {
            ThreadedError::Stalled {
                worker,
                waiting_for,
                diag,
                ..
            } => {
                assert_eq!(*worker, 1, "{err}");
                assert_eq!(*waiting_for, "tokens", "{err}");
                match diag {
                    StallDiag::Tokens { available } => {
                        assert_eq!(available.as_slice(), &[(0, 0)], "{err}");
                    }
                    other => panic!("token stall carried update diagnostics: {other:?}"),
                }
            }
            other => panic!("expected a stall, got {other:?}"),
        }
    }
}
