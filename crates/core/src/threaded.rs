//! The real multi-threaded runtime: Hop's queue-based protocol on OS
//! threads with genuinely blocking queues.
//!
//! This runtime demonstrates that the protocol as specified — tagged
//! update queues, token queues, backup workers, bounded staleness — runs
//! correctly with true concurrency, complementing the deterministic
//! simulator used for the timing figures. Workers are `std::thread`s;
//! update queues are [`hop_queue::blocking::SharedTaggedQueue`]s and token
//! queues are [`hop_queue::blocking::SharedTokenQueue`]s. All blocking
//! calls carry a timeout so protocol bugs show up as errors, not hangs.
//!
//! Skipping iterations is exercised only in the simulator; the threaded
//! runtime covers standard / token / backup / staleness modes.

use crate::config::{ComputeOrder, ConfigError, HopConfig, SyncMode};
use crate::semantics;
use crate::trainer::Hyper;
use hop_data::{BatchSampler, Dataset, InMemoryDataset};
use hop_graph::Topology;
use hop_model::{GradScratch, Model, Sgd};
use hop_queue::blocking::{SharedTaggedQueue, SharedTokenQueue};
use hop_queue::tagged::{Tag, TagFilter};
use hop_tensor::{BufferPool, ParamBlock};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a threaded run.
#[derive(Debug, Clone)]
pub struct ThreadedReport {
    /// Final parameters per worker.
    pub final_params: Vec<Vec<f32>>,
    /// Per-worker minibatch losses by iteration.
    pub losses: Vec<Vec<f32>>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl ThreadedReport {
    /// Elementwise average of the final parameters.
    pub fn averaged_params(&self) -> Vec<f32> {
        let views: Vec<&[f32]> = self.final_params.iter().map(Vec::as_slice).collect();
        let mut out = vec![0.0f32; views[0].len()];
        hop_tensor::ops::mean_into(&views, &mut out);
        out
    }
}

/// Error from the threaded runtime.
#[derive(Debug)]
pub enum ThreadedError {
    /// The configuration is invalid for the topology.
    Config(ConfigError),
    /// A blocking queue operation timed out (protocol stall).
    Stalled {
        /// Worker that stalled.
        worker: usize,
        /// Iteration at which it stalled.
        iter: u64,
        /// What it was waiting for.
        waiting_for: &'static str,
    },
    /// Skipping iterations is only supported by the simulator runtime.
    SkipUnsupported,
    /// The serial order / NOTIFY-ACK path is only exercised in the
    /// simulator runtime.
    SerialUnsupported,
}

impl std::fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadedError::Config(e) => write!(f, "invalid config: {e}"),
            ThreadedError::Stalled {
                worker,
                iter,
                waiting_for,
            } => write!(
                f,
                "worker {worker} stalled at iteration {iter} waiting for {waiting_for}"
            ),
            ThreadedError::SkipUnsupported => {
                write!(f, "skipping iterations is simulator-only")
            }
            ThreadedError::SerialUnsupported => {
                write!(f, "threaded runtime implements the parallel order only")
            }
        }
    }
}

impl std::error::Error for ThreadedError {}

impl From<ConfigError> for ThreadedError {
    fn from(e: ConfigError) -> Self {
        ThreadedError::Config(e)
    }
}

/// A threaded decentralized training run.
#[derive(Debug, Clone)]
pub struct ThreadedExperiment {
    /// Protocol configuration (parallel order, queue-based sync).
    pub config: HopConfig,
    /// Communication graph.
    pub topology: Topology,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Master seed.
    pub seed: u64,
    /// Optimizer hyperparameters.
    pub hyper: Hyper,
    /// Artificial per-iteration sleep (simulating compute) — keep small in
    /// tests; `Duration::ZERO` disables.
    pub compute_sleep: Duration,
    /// Timeout for any single blocking operation before declaring a stall.
    pub stall_timeout: Duration,
}

/// Final `(params, train-loss curve)` of one worker thread.
type WorkerOutcome = Result<(Vec<f32>, Vec<f32>), ThreadedError>;

impl ThreadedExperiment {
    /// Runs the experiment with one OS thread per worker.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadedError::Config`] for invalid configurations,
    /// [`ThreadedError::SkipUnsupported`] / [`SerialUnsupported`] for the
    /// simulator-only features, and [`ThreadedError::Stalled`] if any
    /// blocking step exceeds `stall_timeout`.
    ///
    /// [`SerialUnsupported`]: ThreadedError::SerialUnsupported
    pub fn run(
        &self,
        model: Arc<dyn Model>,
        dataset: Arc<InMemoryDataset>,
    ) -> Result<ThreadedReport, ThreadedError> {
        self.config.validate(&self.topology)?;
        if self.config.skip.is_some() {
            return Err(ThreadedError::SkipUnsupported);
        }
        if self.config.order != ComputeOrder::Parallel || self.config.sync == SyncMode::NotifyAck {
            return Err(ThreadedError::SerialUnsupported);
        }
        let n = self.topology.len();
        // Update queues carry zero-copy parameter snapshots: an enqueue is
        // a refcount bump on the sender's current block.
        let update_queues: Vec<SharedTaggedQueue<ParamBlock>> =
            (0..n).map(|_| SharedTaggedQueue::new()).collect();
        // TokenQ(owner -> consumer) for every external edge owner->consumer
        // in the *reverse* direction of updates: the consumer of tokens is
        // the in-neighbor... precisely: worker i owns TokenQ(i -> j) for
        // each in-coming neighbor j; j removes from it to advance.
        let max_ig = self.config.max_ig();
        let mut token_queues: HashMap<(usize, usize), SharedTokenQueue> = HashMap::new();
        if let Some(ig) = max_ig {
            for i in 0..n {
                for j in self.topology.external_in_neighbors(i) {
                    token_queues.insert((i, j), SharedTokenQueue::new(ig));
                }
            }
        }
        let token_queues = Arc::new(token_queues);
        let mut init_rng = hop_util::Xoshiro256::seed_from_u64(self.seed);
        let init_params = ParamBlock::from_vec(model.init_params(&mut init_rng));
        let start = Instant::now();
        let results: Vec<WorkerOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..n {
                let update_queues = &update_queues;
                let token_queues = Arc::clone(&token_queues);
                let model = Arc::clone(&model);
                let dataset = Arc::clone(&dataset);
                let init = init_params.snapshot();
                let cfg = self.config.clone();
                let topo = self.topology.clone();
                let hyper = self.hyper;
                let max_iters = self.max_iters;
                let seed = self.seed;
                let sleep = self.compute_sleep;
                let timeout = self.stall_timeout;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        w,
                        cfg,
                        topo,
                        model.as_ref(),
                        dataset.as_ref(),
                        hyper,
                        max_iters,
                        seed,
                        sleep,
                        timeout,
                        &init,
                        update_queues,
                        &token_queues,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });
        let mut final_params = Vec::with_capacity(n);
        let mut losses = Vec::with_capacity(n);
        for r in results {
            let (p, l) = r?;
            final_params.push(p);
            losses.push(l);
        }
        Ok(ThreadedReport {
            final_params,
            losses,
            elapsed: start.elapsed(),
        })
    }
}

/// Keeps only the newest update per sender: superseded or stale-on-arrival
/// blocks are recycled into the worker's pool so the staleness path stays
/// allocation-free in steady state.
fn note_newest(
    newest_from: &mut HashMap<usize, (u64, ParamBlock)>,
    pool: &mut BufferPool,
    entry: hop_queue::tagged::TaggedEntry<ParamBlock>,
) {
    let newer = newest_from
        .get(&entry.tag.w_id)
        .is_none_or(|&(have, _)| entry.tag.iter > have);
    if newer {
        if let Some((_, old)) = newest_from.insert(entry.tag.w_id, (entry.tag.iter, entry.value)) {
            pool.reclaim(old);
        }
    } else {
        pool.reclaim(entry.value);
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    w: usize,
    cfg: HopConfig,
    topo: Topology,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: Hyper,
    max_iters: u64,
    seed: u64,
    compute_sleep: Duration,
    timeout: Duration,
    init_params: &ParamBlock,
    update_queues: &[SharedTaggedQueue<ParamBlock>],
    token_queues: &HashMap<(usize, usize), SharedTokenQueue>,
) -> WorkerOutcome {
    // All workers start on one shared allocation; the first write
    // detaches copy-on-write.
    let mut params = init_params.snapshot();
    let mut opt = Sgd::new(hyper.lr, hyper.momentum, hyper.weight_decay, params.len());
    let mut sampler = BatchSampler::for_worker(dataset.len(), hyper.batch_size, seed, w);
    let mut grad = vec![0.0f32; params.len()];
    let mut delta = vec![0.0f32; params.len()];
    let mut scratch = GradScratch::new();
    let mut pool = BufferPool::new();
    let mut losses = Vec::with_capacity(max_iters as usize);
    let mut newest_from: HashMap<usize, (u64, ParamBlock)> = HashMap::new();
    let in_deg = topo.in_degree(w);
    let externals_in = topo.external_in_neighbors(w);
    let externals_out = topo.external_out_neighbors(w);
    let max_ig = cfg.max_ig();
    for k in 0..max_iters {
        // Insert tokens at iteration entry (k = 0 tokens were pre-loaded).
        if let (Some(_), true) = (max_ig, k > 0) {
            for j in &externals_in {
                token_queues[&(w, *j)].insert(1);
            }
        }
        // Send (parallel order): own queue and all out-neighbors. Each
        // enqueue shares the current block — zero parameter bytes copied.
        update_queues[w].enqueue(params.snapshot(), Tag { iter: k, w_id: w });
        for &o in &externals_out {
            update_queues[o].enqueue(params.snapshot(), Tag { iter: k, w_id: w });
        }
        // Compute.
        if !compute_sleep.is_zero() {
            std::thread::sleep(compute_sleep);
        }
        let batch = sampler.next_batch(dataset);
        let loss = model.loss_grad_with(params.as_slice(), &batch, &mut grad, &mut scratch);
        losses.push(loss);
        opt.delta(params.as_slice(), &grad, &mut delta);
        // Recv + Reduce.
        if let Some(s) = cfg.staleness {
            loop {
                for entry in update_queues[w].dequeue_up_to(usize::MAX, TagFilter::any()) {
                    note_newest(&mut newest_from, &mut pool, entry);
                }
                let satisfied = topo.in_neighbors(w).iter().all(|j| {
                    newest_from
                        .get(j)
                        .is_some_and(|&(iter, _)| semantics::staleness_satisfied(iter, k, s))
                });
                if satisfied {
                    break;
                }
                // Wait for at least one new arrival, then re-scan.
                match update_queues[w].dequeue(1, TagFilter::any(), timeout) {
                    Ok(entries) => {
                        for entry in entries {
                            note_newest(&mut newest_from, &mut pool, entry);
                        }
                    }
                    Err(_) => {
                        return Err(ThreadedError::Stalled {
                            worker: w,
                            iter: k,
                            waiting_for: "a satisfactory update",
                        })
                    }
                }
            }
            let collected: Vec<(u64, ParamBlock)> = topo
                .in_neighbors(w)
                .iter()
                .map(|j| {
                    let (iter, p) = &newest_from[j];
                    (*iter, p.snapshot())
                })
                .collect();
            let views: Vec<(u64, &[f32])> = collected
                .iter()
                .map(|(iter, p)| (*iter, p.as_slice()))
                .collect();
            // Full overwrite: shared blocks detach without copying.
            semantics::reduce_staleness_with(
                cfg.staleness_weighting,
                &views,
                k,
                s,
                params.overwrite_mut(&mut pool),
            );
        } else {
            let quota = semantics::backup_quota(in_deg, cfg.n_backup);
            let mut entries = update_queues[w]
                .dequeue(quota, TagFilter::iter(k), timeout)
                .map_err(|_| ThreadedError::Stalled {
                    worker: w,
                    iter: k,
                    waiting_for: "updates",
                })?;
            // Fig. 8 line 5: grab extras that happen to be here already.
            entries.extend(update_queues[w].dequeue_up_to(in_deg - quota, TagFilter::iter(k)));
            let views: Vec<&[f32]> = entries.iter().map(|e| e.value.as_slice()).collect();
            semantics::reduce_mean(&views, params.overwrite_mut(&mut pool));
            drop(views);
            for entry in entries {
                pool.reclaim(entry.value);
            }
        }
        semantics::apply_parallel(params.make_mut(), &delta);
        // Advance: one token from every out-going neighbor's queue.
        if max_ig.is_some() {
            for &o in &externals_out {
                token_queues[&(o, w)]
                    .remove(1, timeout)
                    .map_err(|_| ThreadedError::Stalled {
                        worker: w,
                        iter: k,
                        waiting_for: "tokens",
                    })?;
            }
        }
    }
    // Final courtesy: release tokens so lagging neighbors can finish their
    // last iterations without waiting on a finished worker.
    if max_ig.is_some() {
        for j in &externals_in {
            token_queues[&(w, *j)].insert(max_iters);
        }
    }
    Ok((params.to_vec(), losses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;

    fn experiment(config: HopConfig) -> ThreadedExperiment {
        ThreadedExperiment {
            config,
            topology: Topology::ring(4),
            max_iters: 30,
            seed: 9,
            hyper: Hyper::svm(),
            compute_sleep: Duration::ZERO,
            stall_timeout: Duration::from_secs(20),
        }
    }

    fn run(config: HopConfig) -> ThreadedReport {
        let dataset = Arc::new(SyntheticWebspam::generate(256, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        experiment(config)
            .run(model, dataset)
            .expect("run succeeds")
    }

    #[test]
    fn standard_converges_on_threads() {
        let report = run(HopConfig::standard());
        let dataset = SyntheticWebspam::generate(256, 3);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let avg = report.averaged_params();
        let eval: Vec<usize> = (0..128).collect();
        let loss = hop_model::Model::loss(&model, &avg, &hop_data::Dataset::batch(&dataset, &eval));
        assert!(loss < 0.6, "final averaged loss {loss}");
        for w in 0..4 {
            assert_eq!(report.losses[w].len(), 30);
        }
    }

    #[test]
    fn tokens_backup_and_staleness_run() {
        for cfg in [
            HopConfig::standard_with_tokens(4),
            HopConfig::backup(1, 4),
            HopConfig::staleness(3, 4),
            HopConfig::hybrid(1, 3, 4),
        ] {
            let report = run(cfg.clone());
            assert_eq!(report.final_params.len(), 4, "{cfg:?}");
        }
    }

    #[test]
    fn skip_is_rejected() {
        let dataset = Arc::new(SyntheticWebspam::generate(64, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        let cfg = HopConfig::backup(1, 4).with_skip(crate::config::SkipConfig::with_max_jump(4));
        let err = experiment(cfg).run(model, dataset).unwrap_err();
        assert!(matches!(err, ThreadedError::SkipUnsupported));
    }

    #[test]
    fn notify_ack_is_rejected() {
        let dataset = Arc::new(SyntheticWebspam::generate(64, 3));
        let model = Arc::new(Svm::log_loss(hop_data::Dataset::feature_dim(
            dataset.as_ref(),
        )));
        let err = experiment(HopConfig::notify_ack())
            .run(model, dataset)
            .unwrap_err();
        assert!(matches!(err, ThreadedError::SerialUnsupported));
    }
}
