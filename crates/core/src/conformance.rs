//! Protocol conformance: a structured trace of protocol-level events and
//! an invariant oracle that replays it.
//!
//! The paper's correctness claims are *invariants*, not digests: the
//! bounded iteration gap of Theorems 1–2 (Table 1), the backup-worker
//! quota of Fig. 8, the bounded-staleness window of §4.4, and the §5 skip
//! rule that a straggler may never overtake its out-going neighbors. Both
//! runtimes — the deterministic [`crate::sim_runtime`] simulator and the
//! real [`crate::threaded`] runtime — emit the same [`ProtocolTrace`]
//! event stream, and the [`Oracle`] replays any such trace against a
//! `(HopConfig, Topology)` pair, reporting the first [`Violation`] it
//! finds. Because the oracle consumes only the trace, it cannot silently
//! drift with either implementation: if a runtime misbehaves, the replay
//! fails loudly with enough context to debug from the error alone.
//!
//! # Event linearization
//!
//! The simulator records events in virtual-time pump order, which is a
//! total order by construction. The threaded runtime tags each event with
//! a shared atomic sequence number following two rules that make the
//! merged order consistent with real-time causality: *grant* events
//! (update sends, token passes) take their sequence number **before** the
//! corresponding queue operation, and *observe* events (consumes, token
//! takes, iteration advances) take theirs **after** it. Any consumption
//! therefore appears after the grant that funded it, so token counts
//! never go negative in replay order and the gap bounds hold at every
//! prefix of the merged trace.
//!
//! # Serialization
//!
//! [`ProtocolTrace::to_text`] / [`ProtocolTrace::from_text`] give a
//! stable line-oriented format so an offending trace can be persisted as
//! a CI artifact and replayed offline against the oracle.

use crate::config::{ComputeOrder, HopConfig};
use crate::semantics;
use hop_graph::bounds::{BaseSetting, Bound};
use hop_graph::{ShortestPaths, Topology};
use std::collections::HashMap;
use std::fmt;

/// One protocol-level event, as emitted by either runtime.
///
/// Worker indices refer to the experiment's [`Topology`]; iterations are
/// the protocol's logical iteration counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// `worker` entered iteration `iter` (including the terminal entry at
    /// `max_iters`).
    Advance {
        /// Advancing worker.
        worker: usize,
        /// Iteration entered.
        iter: u64,
    },
    /// `worker` started its iteration-`iter` gradient computation.
    ComputeBegin {
        /// Computing worker.
        worker: usize,
        /// Iteration being computed.
        iter: u64,
    },
    /// `worker` finished its iteration-`iter` gradient computation.
    ComputeEnd {
        /// Computing worker.
        worker: usize,
        /// Iteration computed.
        iter: u64,
    },
    /// `from` sent its iteration-`iter` update to `to` (self-loops
    /// included).
    Send {
        /// Sending worker.
        from: usize,
        /// Receiving worker.
        to: usize,
        /// Tag iteration of the update.
        iter: u64,
    },
    /// `worker`, in its iteration `at_iter`, consumed the update tagged
    /// `(from, iter)` into a Reduce.
    Consume {
        /// Consuming worker.
        worker: usize,
        /// Sender of the consumed update.
        from: usize,
        /// Tag iteration of the consumed update.
        iter: u64,
        /// The consumer's iteration at consumption time (the Recv's `k`,
        /// or `target - 1` for a jump renew).
        at_iter: u64,
    },
    /// `worker` discarded the delivered-but-unconsumed update tagged
    /// `(from, iter)` (e.g. skipped-over iterations after a jump).
    Drop {
        /// Discarding worker.
        worker: usize,
        /// Sender of the dropped update.
        from: usize,
        /// Tag iteration of the dropped update.
        iter: u64,
    },
    /// `count` tokens became visible in `TokenQ(owner -> consumer)`.
    TokenPass {
        /// Queue owner (the consumer's out-going neighbor).
        owner: usize,
        /// Queue consumer.
        consumer: usize,
        /// Tokens granted.
        count: u64,
    },
    /// `consumer` removed `count` tokens from `TokenQ(owner -> consumer)`
    /// to advance (1 for a normal step, the jump distance for a jump).
    TokenTake {
        /// Queue owner.
        owner: usize,
        /// Queue consumer (the advancing worker).
        consumer: usize,
        /// Tokens removed.
        count: u64,
    },
    /// `worker` reduced `n_updates` parameter vectors at iteration
    /// `iter`. `renew` marks the §5 pre-jump parameter renewal
    /// (`Recv(target - 1)`), which draws from external in-neighbors plus
    /// the worker's own stale parameters.
    Reduce {
        /// Reducing worker.
        worker: usize,
        /// Iteration of the Reduce (`k`, or `target - 1` when renewing).
        iter: u64,
        /// Number of parameter vectors averaged (own included for
        /// renews).
        n_updates: usize,
        /// Whether this is a pre-jump renewal.
        renew: bool,
    },
    /// Bounded staleness: the arrival `(from, iter)` became `worker`'s
    /// newest update from `from`.
    StaleAdmit {
        /// Receiving worker.
        worker: usize,
        /// Sender.
        from: usize,
        /// Tag iteration of the admitted update.
        iter: u64,
        /// The receiver's iteration at admission time.
        at_iter: u64,
    },
    /// Bounded staleness: the arrival `(from, iter)` was already
    /// superseded by a newer update and was discarded.
    StaleReject {
        /// Receiving worker.
        worker: usize,
        /// Sender.
        from: usize,
        /// Tag iteration of the rejected update.
        iter: u64,
        /// The receiver's iteration at rejection time.
        at_iter: u64,
    },
    /// §5: `worker` decided to jump from `from_iter` to `target`, having
    /// observed `token_counts` tokens from its external out-going
    /// neighbors (in [`Topology::external_out_neighbors`] order).
    Jump {
        /// Jumping worker.
        worker: usize,
        /// Iteration the worker is leaving.
        from_iter: u64,
        /// Iteration it will enter next.
        target: u64,
        /// Observed token counts per external out-going neighbor.
        token_counts: Vec<u64>,
    },
    /// Fault plane: `worker` crashed on entering iteration `iter`. Must
    /// be licensed by a matching [`hop_sim::FaultEvent::Crash`] when
    /// checked with [`Oracle::check_with_faults`].
    Crash {
        /// Crashed worker.
        worker: usize,
        /// Iteration whose entry triggered the crash.
        iter: u64,
    },
    /// Fault plane: a crashed `worker` rejoined and will re-enter at
    /// `target` (parameters rehydrated from a live neighbor). Licenses
    /// the otherwise-illegal `Advance` to `target` that follows.
    Rejoin {
        /// Rejoining worker.
        worker: usize,
        /// Iteration the worker re-enters.
        target: u64,
    },
    /// Fault plane: the network lost the update tagged `(from, iter)` on
    /// its way to `worker`. Always paired with the preceding `Send`, so
    /// outstanding-send accounting stays balanced; must be licensed by a
    /// matching [`hop_sim::FaultEvent::Loss`].
    Lost {
        /// Intended receiver.
        worker: usize,
        /// Sender of the lost update.
        from: usize,
        /// Tag iteration of the lost update.
        iter: u64,
    },
}

impl fmt::Display for ProtocolEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolEvent::Advance { worker, iter } => write!(f, "advance w={worker} iter={iter}"),
            ProtocolEvent::ComputeBegin { worker, iter } => {
                write!(f, "compute_begin w={worker} iter={iter}")
            }
            ProtocolEvent::ComputeEnd { worker, iter } => {
                write!(f, "compute_end w={worker} iter={iter}")
            }
            ProtocolEvent::Send { from, to, iter } => {
                write!(f, "send from={from} to={to} iter={iter}")
            }
            ProtocolEvent::Consume {
                worker,
                from,
                iter,
                at_iter,
            } => write!(f, "consume w={worker} from={from} iter={iter} at={at_iter}"),
            ProtocolEvent::Drop { worker, from, iter } => {
                write!(f, "drop w={worker} from={from} iter={iter}")
            }
            ProtocolEvent::TokenPass {
                owner,
                consumer,
                count,
            } => write!(f, "token_pass owner={owner} consumer={consumer} n={count}"),
            ProtocolEvent::TokenTake {
                owner,
                consumer,
                count,
            } => write!(f, "token_take owner={owner} consumer={consumer} n={count}"),
            ProtocolEvent::Reduce {
                worker,
                iter,
                n_updates,
                renew,
            } => write!(
                f,
                "reduce w={worker} iter={iter} n={n_updates} renew={}",
                u8::from(*renew)
            ),
            ProtocolEvent::StaleAdmit {
                worker,
                from,
                iter,
                at_iter,
            } => write!(
                f,
                "stale_admit w={worker} from={from} iter={iter} at={at_iter}"
            ),
            ProtocolEvent::StaleReject {
                worker,
                from,
                iter,
                at_iter,
            } => write!(
                f,
                "stale_reject w={worker} from={from} iter={iter} at={at_iter}"
            ),
            ProtocolEvent::Jump {
                worker,
                from_iter,
                target,
                token_counts,
            } => {
                let counts: Vec<String> = token_counts.iter().map(u64::to_string).collect();
                write!(
                    f,
                    "jump w={worker} from={from_iter} target={target} tokens={}",
                    counts.join(",")
                )
            }
            ProtocolEvent::Crash { worker, iter } => write!(f, "crash w={worker} iter={iter}"),
            ProtocolEvent::Rejoin { worker, target } => {
                write!(f, "rejoin w={worker} target={target}")
            }
            ProtocolEvent::Lost { worker, from, iter } => {
                write!(f, "lost w={worker} from={from} iter={iter}")
            }
        }
    }
}

/// An ordered stream of [`ProtocolEvent`]s from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolTrace {
    events: Vec<ProtocolEvent>,
}

impl ProtocolTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event.
    pub fn push(&mut self, ev: ProtocolEvent) {
        self.events.push(ev);
    }

    /// The events in linearized order.
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as one event per line (the format
    /// [`Self::from_text`] parses), suitable for persisting an offending
    /// trace as a CI artifact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a trace serialized by [`Self::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceParseError`] (with the 1-based line number and the
    /// offending line's text) on any malformed line.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            events.push(parse_event(line).map_err(|why| TraceParseError {
                line: lineno + 1,
                text: line.to_string(),
                why,
            })?);
        }
        Ok(Self { events })
    }
}

/// Error from [`ProtocolTrace::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the malformed line.
    pub line: usize,
    /// The malformed line itself (trimmed), so a CI log is debuggable
    /// without re-opening the trace artifact.
    pub text: String,
    /// What was wrong with it.
    pub why: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {} `{}`: {}", self.line, self.text, self.why)
    }
}

impl std::error::Error for TraceParseError {}

fn parse_event(line: &str) -> Result<ProtocolEvent, String> {
    let mut parts = line.split_whitespace();
    let kind = parts.next().ok_or("empty line")?;
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for part in parts {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("field `{part}` is not key=value"))?;
        fields.insert(k, v);
    }
    let get_u64 = |key: &str| -> Result<u64, String> {
        fields
            .get(key)
            .ok_or_else(|| format!("missing field `{key}`"))?
            .parse::<u64>()
            .map_err(|e| format!("field `{key}`: {e}"))
    };
    let get_usize = |key: &str| -> Result<usize, String> { Ok(get_u64(key)? as usize) };
    Ok(match kind {
        "advance" => ProtocolEvent::Advance {
            worker: get_usize("w")?,
            iter: get_u64("iter")?,
        },
        "compute_begin" => ProtocolEvent::ComputeBegin {
            worker: get_usize("w")?,
            iter: get_u64("iter")?,
        },
        "compute_end" => ProtocolEvent::ComputeEnd {
            worker: get_usize("w")?,
            iter: get_u64("iter")?,
        },
        "send" => ProtocolEvent::Send {
            from: get_usize("from")?,
            to: get_usize("to")?,
            iter: get_u64("iter")?,
        },
        "consume" => ProtocolEvent::Consume {
            worker: get_usize("w")?,
            from: get_usize("from")?,
            iter: get_u64("iter")?,
            at_iter: get_u64("at")?,
        },
        "drop" => ProtocolEvent::Drop {
            worker: get_usize("w")?,
            from: get_usize("from")?,
            iter: get_u64("iter")?,
        },
        "token_pass" => ProtocolEvent::TokenPass {
            owner: get_usize("owner")?,
            consumer: get_usize("consumer")?,
            count: get_u64("n")?,
        },
        "token_take" => ProtocolEvent::TokenTake {
            owner: get_usize("owner")?,
            consumer: get_usize("consumer")?,
            count: get_u64("n")?,
        },
        "reduce" => ProtocolEvent::Reduce {
            worker: get_usize("w")?,
            iter: get_u64("iter")?,
            n_updates: get_usize("n")?,
            renew: get_u64("renew")? != 0,
        },
        "stale_admit" => ProtocolEvent::StaleAdmit {
            worker: get_usize("w")?,
            from: get_usize("from")?,
            iter: get_u64("iter")?,
            at_iter: get_u64("at")?,
        },
        "stale_reject" => ProtocolEvent::StaleReject {
            worker: get_usize("w")?,
            from: get_usize("from")?,
            iter: get_u64("iter")?,
            at_iter: get_u64("at")?,
        },
        "jump" => {
            let raw = fields.get("tokens").ok_or("missing field `tokens`")?;
            let token_counts = if raw.is_empty() {
                Vec::new()
            } else {
                raw.split(',')
                    .map(|c| c.parse::<u64>().map_err(|e| format!("token count: {e}")))
                    .collect::<Result<Vec<u64>, String>>()?
            };
            ProtocolEvent::Jump {
                worker: get_usize("w")?,
                from_iter: get_u64("from")?,
                target: get_u64("target")?,
                token_counts,
            }
        }
        "crash" => ProtocolEvent::Crash {
            worker: get_usize("w")?,
            iter: get_u64("iter")?,
        },
        "rejoin" => ProtocolEvent::Rejoin {
            worker: get_usize("w")?,
            target: get_u64("target")?,
        },
        "lost" => ProtocolEvent::Lost {
            worker: get_usize("w")?,
            from: get_usize("from")?,
            iter: get_u64("iter")?,
        },
        other => return Err(format!("unknown event kind `{other}`")),
    })
}

/// The recorder both runtimes write through: a no-op unless enabled, so
/// untraced runs pay one branch per hook.
#[derive(Debug, Default)]
pub struct ConformanceSink {
    trace: Option<ProtocolTrace>,
}

impl ConformanceSink {
    /// A disabled sink (the default: recording is opt-in).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Starts recording (from an empty trace).
    pub fn enable(&mut self) {
        self.trace = Some(ProtocolTrace::new());
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Records the event produced by `f` if enabled; `f` is not called
    /// otherwise (so hooks can build payloads lazily).
    #[inline]
    pub fn record(&mut self, f: impl FnOnce() -> ProtocolEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(f());
        }
    }

    /// Takes the recorded trace, leaving the sink disabled.
    pub fn take(&mut self) -> Option<ProtocolTrace> {
        self.trace.take()
    }
}

/// What the oracle found wrong, with enough context to debug from the
/// message alone.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// The observed iteration gap exceeded its Table 1 bound.
    GapBound {
        /// The worker running ahead.
        ahead: usize,
        /// The worker it outran.
        behind: usize,
        /// Observed `Iter(ahead) - Iter(behind)`.
        gap: i64,
        /// The violated bound.
        bound: Bound,
    },
    /// A worker's iteration counter moved in a way no rule permits.
    IllegalAdvance {
        /// The worker.
        worker: usize,
        /// Its previous iteration.
        from: u64,
        /// The iteration it claimed to enter.
        to: u64,
    },
    /// A worker advanced without a Reduce of the iteration it completed.
    MissingReduce {
        /// The worker.
        worker: usize,
        /// The iteration entered without a preceding reduce.
        entered: u64,
        /// The iteration of its last recorded reduce, if any.
        last_reduce: Option<u64>,
    },
    /// A Reduce consumed fewer updates than the Fig. 8 quota
    /// `|Nin| - N_buw` (or more than `|Nin|`).
    QuotaViolated {
        /// The reducing worker.
        worker: usize,
        /// Iteration of the reduce.
        iter: u64,
        /// Updates consumed.
        got: usize,
        /// Minimum required.
        quota: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A backup/standard-mode Reduce at iteration `at_iter` consumed an
    /// update tagged with a different iteration.
    TagLeak {
        /// The consuming worker.
        worker: usize,
        /// The reduce's iteration.
        at_iter: u64,
        /// Sender of the leaked update.
        from: usize,
        /// Its (mismatched) tag iteration.
        iter: u64,
    },
    /// A Reduce consumed two updates from the same sender, or from a
    /// non-neighbor.
    BadReduceSet {
        /// The reducing worker.
        worker: usize,
        /// Iteration of the reduce.
        iter: u64,
        /// What was wrong with the consumed set.
        why: String,
    },
    /// An update was consumed/admitted that was never sent (or was
    /// already consumed).
    UnknownUpdate {
        /// The consuming worker.
        worker: usize,
        /// Claimed sender.
        from: usize,
        /// Claimed tag iteration.
        iter: u64,
    },
    /// A consumed update fell outside the staleness window
    /// (`Iter(u) >= k - s`, §4.4).
    StaleWindow {
        /// The consuming worker.
        worker: usize,
        /// Sender of the over-stale update.
        from: usize,
        /// Its tag iteration.
        iter: u64,
        /// The reduce's iteration `k`.
        at_iter: u64,
        /// The staleness bound `s`.
        s: u64,
    },
    /// A staleness Reduce used an update that is not the sender's newest
    /// admitted one.
    NotNewest {
        /// The consuming worker.
        worker: usize,
        /// Sender.
        from: usize,
        /// The iteration the reduce claimed to use.
        used: u64,
        /// The newest admitted iteration, if any.
        newest: Option<u64>,
    },
    /// A token removal exceeded the tokens visible in the queue.
    TokenUnderflow {
        /// Queue owner.
        owner: usize,
        /// Queue consumer.
        consumer: usize,
        /// Tokens the consumer tried to remove.
        take: u64,
        /// Tokens actually available in replay.
        available: u64,
    },
    /// A token event on an edge with no token queue (wrong direction,
    /// non-neighbors, or tokens disabled).
    UnknownTokenEdge {
        /// Claimed owner.
        owner: usize,
        /// Claimed consumer.
        consumer: usize,
    },
    /// A jump that [`semantics::jump_decision`] does not permit for the
    /// observed token counts.
    IllegalJump {
        /// The jumping worker.
        worker: usize,
        /// Iteration it left.
        from: u64,
        /// Iteration it targeted.
        target: u64,
        /// What the decision rule allows (`None` = no jump at all).
        allowed: Option<u64>,
    },
    /// A jump target beyond an out-going neighbor's iteration — the §5
    /// "intuitive upper-bound": a straggler never overtakes its
    /// out-neighbors.
    JumpOvertakes {
        /// The jumping worker.
        worker: usize,
        /// The overtaken out-going neighbor.
        neighbor: usize,
        /// The jump target.
        target: u64,
        /// The neighbor's iteration at jump time.
        neighbor_iter: u64,
    },
    /// Compute begin/end events that do not pair up, repeat an
    /// iteration, or run at the wrong iteration.
    ComputeMismatch {
        /// The computing worker.
        worker: usize,
        /// What was inconsistent.
        why: String,
    },
    /// A Send or Reduce at an iteration other than the worker's current
    /// one.
    OutOfPlace {
        /// The worker.
        worker: usize,
        /// The event's iteration.
        iter: u64,
        /// The worker's current iteration in replay.
        current: u64,
        /// Which event was misplaced.
        what: &'static str,
    },
    /// A `Lost` event with no licensing loss in the fault log: the
    /// runtime claimed the network ate a message the fault plane never
    /// dropped.
    UnlicensedLoss {
        /// Intended receiver.
        worker: usize,
        /// Sender of the allegedly lost update.
        from: usize,
        /// Its tag iteration.
        iter: u64,
    },
    /// A `Crash`/`Rejoin` event with no licensing entry in the fault log:
    /// the runtime invented churn the fault plane never scheduled.
    UnlicensedChurn {
        /// The worker.
        worker: usize,
        /// Which churn event lacked a license (`"crash"`/`"rejoin"`).
        what: &'static str,
    },
}

/// A trace invariant violation: the first event the oracle rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index of the offending event in the trace.
    pub index: usize,
    /// The offending event, pre-rendered.
    pub event: String,
    /// What rule it broke.
    pub kind: ViolationKind,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event #{} `{}`: ", self.index, self.event)?;
        match &self.kind {
            ViolationKind::GapBound {
                ahead,
                behind,
                gap,
                bound,
            } => write!(
                f,
                "iteration gap Iter({ahead}) - Iter({behind}) = {gap} exceeds the Table 1 bound {bound}"
            ),
            ViolationKind::IllegalAdvance { worker, from, to } => write!(
                f,
                "worker {worker} advanced {from} -> {to} without a single step or a recorded jump"
            ),
            ViolationKind::MissingReduce {
                worker,
                entered,
                last_reduce,
            } => write!(
                f,
                "worker {worker} entered iteration {entered} but its last reduce was {last_reduce:?} (expected {})",
                entered.saturating_sub(1)
            ),
            ViolationKind::QuotaViolated {
                worker,
                iter,
                got,
                quota,
                max,
            } => write!(
                f,
                "worker {worker} reduced {got} updates at iteration {iter}, outside the Fig. 8 quota [{quota}, {max}]"
            ),
            ViolationKind::TagLeak {
                worker,
                at_iter,
                from,
                iter,
            } => write!(
                f,
                "worker {worker}'s iteration-{at_iter} reduce consumed a cross-iteration update (from={from}, iter={iter})"
            ),
            ViolationKind::BadReduceSet { worker, iter, why } => {
                write!(f, "worker {worker}'s iteration-{iter} reduce set is invalid: {why}")
            }
            ViolationKind::UnknownUpdate { worker, from, iter } => write!(
                f,
                "worker {worker} consumed update (from={from}, iter={iter}) that was never sent or was already consumed"
            ),
            ViolationKind::StaleWindow {
                worker,
                from,
                iter,
                at_iter,
                s,
            } => write!(
                f,
                "worker {worker} reduced update (from={from}, iter={iter}) at k={at_iter}, outside the staleness window s={s}"
            ),
            ViolationKind::NotNewest {
                worker,
                from,
                used,
                newest,
            } => write!(
                f,
                "worker {worker}'s staleness reduce used iter {used} from worker {from}, but the newest admitted is {newest:?}"
            ),
            ViolationKind::TokenUnderflow {
                owner,
                consumer,
                take,
                available,
            } => write!(
                f,
                "TokenQ({owner} -> {consumer}): removing {take} tokens with only {available} visible"
            ),
            ViolationKind::UnknownTokenEdge { owner, consumer } => {
                write!(f, "no token queue exists for edge {owner} -> {consumer}")
            }
            ViolationKind::IllegalJump {
                worker,
                from,
                target,
                allowed,
            } => write!(
                f,
                "worker {worker} jumped {from} -> {target}, but jump_decision allows {allowed:?} for the observed tokens"
            ),
            ViolationKind::JumpOvertakes {
                worker,
                neighbor,
                target,
                neighbor_iter,
            } => write!(
                f,
                "worker {worker}'s jump to {target} overtakes out-neighbor {neighbor} (at iteration {neighbor_iter})"
            ),
            ViolationKind::ComputeMismatch { worker, why } => {
                write!(f, "worker {worker} compute events inconsistent: {why}")
            }
            ViolationKind::OutOfPlace {
                worker,
                iter,
                current,
                what,
            } => write!(
                f,
                "worker {worker} recorded a {what} for iteration {iter} while at iteration {current}"
            ),
            ViolationKind::UnlicensedLoss { worker, from, iter } => write!(
                f,
                "update (from={from}, iter={iter}) to worker {worker} reported lost, but the fault log licenses no such loss"
            ),
            ViolationKind::UnlicensedChurn { worker, what } => write!(
                f,
                "worker {worker} recorded a {what} the fault log does not license"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// Counters of what a successful replay actually exercised, so tests can
/// assert a trace was not vacuously empty (e.g. that a skip-mode run
/// really jumped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConformanceSummary {
    /// Total events replayed.
    pub events: usize,
    /// Iteration entries.
    pub advances: u64,
    /// Reduces (renews included).
    pub reduces: u64,
    /// Pre-jump renewal reduces.
    pub renew_reduces: u64,
    /// Updates consumed into reduces.
    pub consumed: u64,
    /// §5 jumps.
    pub jumps: u64,
    /// Tokens granted.
    pub tokens_passed: u64,
    /// Staleness-mode admissions.
    pub stale_admitted: u64,
    /// Staleness-mode rejections.
    pub stale_rejected: u64,
    /// Licensed crash events replayed.
    pub crashes: u64,
    /// Licensed rejoin events replayed.
    pub rejoins: u64,
    /// Licensed message losses replayed.
    pub messages_lost: u64,
    /// Largest iteration gap observed between any pair.
    pub max_gap: i64,
}

/// Replays a [`ProtocolTrace`] against the invariants a
/// `(HopConfig, Topology)` pair implies.
///
/// Checks, in replay order:
///
/// * **(a) iteration gap** — after every `Advance`/`Jump`, each ordered
///   pair's gap against its [`hop_graph::bounds`] Table 1 bound (token
///   bounds when `max_ig` is set);
/// * **(b) backup quota** — every backup/standard `Reduce` consumed
///   between `|Nin| - N_buw` and `|Nin|` updates, all tagged with the
///   reduce's own iteration (no cross-iteration tag leaks), each from a
///   distinct in-neighbor, and each matching an outstanding `Send`;
/// * **(c) staleness window** — every staleness-mode `Reduce` used
///   exactly the newest admitted update per in-neighbor, all satisfying
///   [`semantics::staleness_satisfied`];
/// * **(d) jump legality** — every `Jump` agrees with
///   [`semantics::jump_decision`] on the observed token counts, stays
///   within the recorded token budget, and never overtakes an out-going
///   neighbor.
pub struct Oracle<'a> {
    cfg: &'a HopConfig,
    topology: &'a Topology,
    max_iters: u64,
}

impl<'a> Oracle<'a> {
    /// Builds an oracle for one experiment's configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not a parallel-order queue-based configuration
    /// (the only family both runtimes trace) or fails validation against
    /// `topology`.
    pub fn new(cfg: &'a HopConfig, topology: &'a Topology, max_iters: u64) -> Self {
        cfg.validate(topology).expect("oracle needs a valid config");
        assert_eq!(
            cfg.order,
            ComputeOrder::Parallel,
            "the conformance oracle models the parallel order only"
        );
        Self {
            cfg,
            topology,
            max_iters,
        }
    }

    /// The Table 1 bound on `Iter(i) - Iter(j)` for this configuration.
    fn pair_bound(&self, sp: &ShortestPaths, i: usize, j: usize) -> Bound {
        let base = match (self.cfg.staleness, self.cfg.n_backup) {
            (None, 0) => BaseSetting::Standard,
            (Some(s), 0) => BaseSetting::BoundedStaleness(s),
            (None, _) => BaseSetting::BackupWorkers,
            (Some(_), _) => BaseSetting::Hybrid,
        };
        match self.cfg.max_ig() {
            Some(ig) => base.pair_bound_with_tokens(ig, sp.dist(j, i), sp.dist(i, j)),
            None => base.pair_bound(sp.dist(j, i)),
        }
    }

    /// Replays `trace`, returning what it exercised or the first
    /// violation. Equivalent to [`Self::check_with_faults`] with an empty
    /// fault log: any `Crash`/`Rejoin`/`Lost` event in the trace is
    /// unlicensed and rejected.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] encountered, anchored to its event
    /// index.
    pub fn check(&self, trace: &ProtocolTrace) -> Result<ConformanceSummary, Violation> {
        self.check_with_faults(trace, &hop_sim::FaultLog::new())
    }

    /// Replays `trace` next to the run's [`hop_sim::FaultLog`] sidecar —
    /// the fault-aware check. The log tells the oracle which invariant
    /// breaks are *licensed*:
    ///
    /// * every `Lost` event must match a logged loss (else
    ///   [`ViolationKind::UnlicensedLoss`]), and every `Crash`/`Rejoin` a
    ///   logged churn entry (else [`ViolationKind::UnlicensedChurn`]);
    /// * a licensed `Rejoin` permits the following `Advance` straight to
    ///   the rejoin target, without the usual `+1`/reduce preconditions,
    ///   and mirrors the clamped token drain the runtime performs;
    /// * Table 1 gap bounds are enforced among *live* workers only —
    ///   pairs with a crashed endpoint are exempt until the rejoin;
    /// * everything else — backup quotas, staleness windows, token
    ///   conservation among live workers, jump legality — must still hold
    ///   under fire.
    ///
    /// # Errors
    ///
    /// Returns the first [`Violation`] encountered, anchored to its event
    /// index.
    #[allow(clippy::too_many_lines)]
    pub fn check_with_faults(
        &self,
        trace: &ProtocolTrace,
        faults: &hop_sim::FaultLog,
    ) -> Result<ConformanceSummary, Violation> {
        let n = self.topology.len();
        let sp = ShortestPaths::new(self.topology);
        let mut bounds = vec![vec![Bound::Unbounded; n]; n];
        for (i, row) in bounds.iter_mut().enumerate() {
            for (j, b) in row.iter_mut().enumerate() {
                if i != j {
                    *b = self.pair_bound(&sp, i, j);
                }
            }
        }
        let mut st = Replay::new(self.cfg, self.topology, self.max_iters, bounds, faults);
        let mut summary = ConformanceSummary {
            events: trace.len(),
            ..ConformanceSummary::default()
        };
        for (index, ev) in trace.events().iter().enumerate() {
            st.step(ev, &mut summary).map_err(|kind| Violation {
                index,
                event: ev.to_string(),
                kind,
            })?;
        }
        summary.max_gap = st.max_gap;
        Ok(summary)
    }
}

/// One consumed update pending its Reduce.
struct Pending {
    from: usize,
    iter: u64,
    at_iter: u64,
}

/// Mutable replay state of one oracle pass.
struct Replay<'a> {
    cfg: &'a HopConfig,
    topology: &'a Topology,
    max_iters: u64,
    bounds: Vec<Vec<Bound>>,
    /// Logical iteration per worker: advanced eagerly at `Jump` (the
    /// runtime grants tokens for the whole jump before the renew
    /// completes, so neighbors legitimately treat the jumper as already
    /// at `target`).
    logical: Vec<u64>,
    /// Recorded (entered) iteration per worker.
    entered: Vec<u64>,
    started: Vec<bool>,
    pending_jump: Vec<Option<(u64, u64)>>,
    last_reduce: Vec<Option<u64>>,
    computing: Vec<Option<u64>>,
    last_computed: Vec<Option<u64>>,
    consumed: Vec<Vec<Pending>>,
    /// Outstanding sends: `(from, to, iter)` -> undelivered copies.
    outstanding: HashMap<(usize, usize, u64), u32>,
    /// Staleness mode: newest admitted update per `(worker, from)`.
    newest: HashMap<(usize, usize), u64>,
    /// Token queues by `(owner, consumer)` edge; present iff `max_ig`.
    tokens: HashMap<(usize, usize), u64>,
    /// Currently crashed workers: gap bounds are suspended for pairs with
    /// a dead endpoint, and their in-flight compute/consume state died
    /// with them.
    dead: Vec<bool>,
    /// A licensed rejoin whose `Advance` to the target is still owed.
    rejoin_target: Vec<Option<u64>>,
    /// Licenses from the fault log: remaining loss credits per
    /// `(from, to, iter)`, and churn credits per `(worker, iter)`.
    loss_license: HashMap<(usize, usize, u64), u32>,
    crash_license: HashMap<(usize, u64), u32>,
    rejoin_license: HashMap<(usize, u64), u32>,
    max_gap: i64,
}

impl<'a> Replay<'a> {
    fn new(
        cfg: &'a HopConfig,
        topology: &'a Topology,
        max_iters: u64,
        bounds: Vec<Vec<Bound>>,
        faults: &hop_sim::FaultLog,
    ) -> Self {
        let n = topology.len();
        let mut tokens = HashMap::new();
        if let Some(ig) = cfg.max_ig() {
            for owner in 0..n {
                for &consumer in topology.external_in_neighbors(owner) {
                    tokens.insert((owner, consumer), ig);
                }
            }
        }
        let mut loss_license: HashMap<(usize, usize, u64), u32> = HashMap::new();
        let mut crash_license: HashMap<(usize, u64), u32> = HashMap::new();
        let mut rejoin_license: HashMap<(usize, u64), u32> = HashMap::new();
        for f in faults.events() {
            match *f {
                hop_sim::FaultEvent::Loss { from, to, iter } => {
                    *loss_license.entry((from, to, iter)).or_insert(0) += 1;
                }
                hop_sim::FaultEvent::Crash { worker, iter } => {
                    *crash_license.entry((worker, iter)).or_insert(0) += 1;
                }
                hop_sim::FaultEvent::Rejoin { worker, target, .. } => {
                    *rejoin_license.entry((worker, target)).or_insert(0) += 1;
                }
                hop_sim::FaultEvent::Byzantine { .. } => {
                    // Value corruption is invisible at the protocol-event
                    // level; nothing to license.
                }
            }
        }
        Self {
            cfg,
            topology,
            max_iters,
            bounds,
            logical: vec![0; n],
            entered: vec![0; n],
            started: vec![false; n],
            pending_jump: vec![None; n],
            last_reduce: vec![None; n],
            computing: vec![None; n],
            last_computed: vec![None; n],
            consumed: (0..n).map(|_| Vec::new()).collect(),
            outstanding: HashMap::new(),
            newest: HashMap::new(),
            tokens,
            dead: vec![false; n],
            rejoin_target: vec![None; n],
            loss_license,
            crash_license,
            rejoin_license,
            max_gap: 0,
        }
    }

    /// Gap check after `w`'s logical iteration changed. Pairs with a
    /// crashed endpoint are exempt: Table 1 speaks for live workers, and
    /// the live cluster legitimately runs ahead of a frozen counter.
    fn check_gaps(&mut self, w: usize) -> Result<(), ViolationKind> {
        if self.dead[w] {
            return Ok(());
        }
        for j in 0..self.logical.len() {
            if j == w || self.dead[j] {
                continue;
            }
            let gap = self.logical[w] as i64 - self.logical[j] as i64;
            self.max_gap = self.max_gap.max(gap);
            if !self.bounds[w][j].admits(gap) {
                return Err(ViolationKind::GapBound {
                    ahead: w,
                    behind: j,
                    gap,
                    bound: self.bounds[w][j],
                });
            }
        }
        Ok(())
    }

    fn take_send(&mut self, from: usize, to: usize, iter: u64) -> Result<(), ViolationKind> {
        match self.outstanding.get_mut(&(from, to, iter)) {
            Some(count) if *count > 0 => {
                *count -= 1;
                Ok(())
            }
            _ => Err(ViolationKind::UnknownUpdate {
                worker: to,
                from,
                iter,
            }),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step(
        &mut self,
        ev: &ProtocolEvent,
        summary: &mut ConformanceSummary,
    ) -> Result<(), ViolationKind> {
        match *ev {
            ProtocolEvent::Advance { worker, iter } => {
                summary.advances += 1;
                if iter > self.max_iters {
                    return Err(ViolationKind::IllegalAdvance {
                        worker,
                        from: self.entered[worker],
                        to: iter,
                    });
                }
                if !self.started[worker] {
                    if iter != 0 {
                        return Err(ViolationKind::IllegalAdvance {
                            worker,
                            from: 0,
                            to: iter,
                        });
                    }
                    self.started[worker] = true;
                } else if self.rejoin_target[worker] == Some(iter) {
                    // A licensed rejoin lands the worker directly at its
                    // rehydration target: the `prev + 1` and reduce-closure
                    // rules are suspended for exactly this one advance.
                    self.rejoin_target[worker] = None;
                    self.pending_jump[worker] = None;
                    self.last_reduce[worker] = None;
                } else {
                    let prev = self.entered[worker];
                    let jumped = self.pending_jump[worker] == Some((prev, iter));
                    if !jumped && iter != prev + 1 {
                        return Err(ViolationKind::IllegalAdvance {
                            worker,
                            from: prev,
                            to: iter,
                        });
                    }
                    if self.last_reduce[worker] != Some(iter - 1) {
                        return Err(ViolationKind::MissingReduce {
                            worker,
                            entered: iter,
                            last_reduce: self.last_reduce[worker],
                        });
                    }
                    if jumped {
                        self.pending_jump[worker] = None;
                    }
                }
                self.entered[worker] = iter;
                self.logical[worker] = self.logical[worker].max(iter);
                self.check_gaps(worker)?;
            }
            ProtocolEvent::ComputeBegin { worker, iter } => {
                if let Some(inflight) = self.computing[worker] {
                    return Err(ViolationKind::ComputeMismatch {
                        worker,
                        why: format!("begin({iter}) while iteration {inflight} is still computing"),
                    });
                }
                if iter != self.entered[worker] {
                    return Err(ViolationKind::ComputeMismatch {
                        worker,
                        why: format!("begin({iter}) while at iteration {}", self.entered[worker]),
                    });
                }
                if self.last_computed[worker].is_some_and(|last| iter <= last) {
                    return Err(ViolationKind::ComputeMismatch {
                        worker,
                        why: format!("iteration {iter} computed twice"),
                    });
                }
                self.computing[worker] = Some(iter);
            }
            ProtocolEvent::ComputeEnd { worker, iter } => {
                if self.computing[worker] != Some(iter) {
                    return Err(ViolationKind::ComputeMismatch {
                        worker,
                        why: format!(
                            "end({iter}) does not match in-flight {:?}",
                            self.computing[worker]
                        ),
                    });
                }
                self.computing[worker] = None;
                self.last_computed[worker] = Some(iter);
            }
            ProtocolEvent::Send { from, to, iter } => {
                if !self.topology.out_neighbors(from).contains(&to) {
                    return Err(ViolationKind::BadReduceSet {
                        worker: from,
                        iter,
                        why: format!("send to non-neighbor {to}"),
                    });
                }
                if iter != self.entered[from] {
                    return Err(ViolationKind::OutOfPlace {
                        worker: from,
                        iter,
                        current: self.entered[from],
                        what: "send",
                    });
                }
                *self.outstanding.entry((from, to, iter)).or_insert(0) += 1;
            }
            ProtocolEvent::Consume {
                worker,
                from,
                iter,
                at_iter,
            } => {
                summary.consumed += 1;
                if self.cfg.staleness.is_some() {
                    // Staleness mode consumes the newest *admitted* update
                    // (possibly reused across reduces).
                    let newest = self.newest.get(&(worker, from)).copied();
                    if newest != Some(iter) {
                        return Err(ViolationKind::NotNewest {
                            worker,
                            from,
                            used: iter,
                            newest,
                        });
                    }
                } else {
                    self.take_send(from, worker, iter)?;
                }
                self.consumed[worker].push(Pending {
                    from,
                    iter,
                    at_iter,
                });
            }
            ProtocolEvent::Drop { worker, from, iter } => {
                self.take_send(from, worker, iter)?;
            }
            ProtocolEvent::TokenPass {
                owner,
                consumer,
                count,
            } => {
                summary.tokens_passed += count;
                match self.tokens.get_mut(&(owner, consumer)) {
                    Some(avail) => *avail += count,
                    None => return Err(ViolationKind::UnknownTokenEdge { owner, consumer }),
                }
            }
            ProtocolEvent::TokenTake {
                owner,
                consumer,
                count,
            } => match self.tokens.get_mut(&(owner, consumer)) {
                Some(avail) if *avail >= count => *avail -= count,
                Some(avail) => {
                    return Err(ViolationKind::TokenUnderflow {
                        owner,
                        consumer,
                        take: count,
                        available: *avail,
                    })
                }
                None => return Err(ViolationKind::UnknownTokenEdge { owner, consumer }),
            },
            ProtocolEvent::StaleAdmit {
                worker,
                from,
                iter,
                at_iter: _,
            } => {
                summary.stale_admitted += 1;
                self.take_send(from, worker, iter)?;
                // An admitted arrival must be strictly newer than the
                // current newest; anything else should have been rejected.
                let newest = self.newest.get(&(worker, from)).copied();
                if newest.is_some_and(|h| iter <= h) {
                    return Err(ViolationKind::NotNewest {
                        worker,
                        from,
                        used: iter,
                        newest,
                    });
                }
                self.newest.insert((worker, from), iter);
            }
            ProtocolEvent::StaleReject {
                worker,
                from,
                iter,
                at_iter: _,
            } => {
                summary.stale_rejected += 1;
                self.take_send(from, worker, iter)?;
                // A rejected arrival must actually be superseded.
                let newest = self.newest.get(&(worker, from)).copied();
                if newest.is_none_or(|h| iter > h) {
                    return Err(ViolationKind::NotNewest {
                        worker,
                        from,
                        used: iter,
                        newest,
                    });
                }
            }
            ProtocolEvent::Reduce {
                worker,
                iter,
                n_updates,
                renew,
            } => {
                summary.reduces += 1;
                if renew {
                    summary.renew_reduces += 1;
                }
                let expected_iter = if renew {
                    match self.pending_jump[worker] {
                        Some((_, target)) => target - 1,
                        None => {
                            return Err(ViolationKind::OutOfPlace {
                                worker,
                                iter,
                                current: self.entered[worker],
                                what: "renew reduce (no jump pending)",
                            })
                        }
                    }
                } else {
                    self.entered[worker]
                };
                if iter != expected_iter {
                    return Err(ViolationKind::OutOfPlace {
                        worker,
                        iter,
                        current: expected_iter,
                        what: "reduce",
                    });
                }
                let consumed = std::mem::take(&mut self.consumed[worker]);
                // A renew reduce averages the worker's own (un-consumed)
                // parameters on top of the consumed set; otherwise the
                // recorded size must equal the consumes exactly.
                if n_updates != consumed.len() + usize::from(renew) {
                    return Err(ViolationKind::BadReduceSet {
                        worker,
                        iter,
                        why: format!(
                            "reduce claims {n_updates} updates but {} were consumed",
                            consumed.len()
                        ),
                    });
                }
                self.check_reduce_set(worker, iter, renew, &consumed)?;
                self.last_reduce[worker] = Some(iter);
            }
            ProtocolEvent::Jump {
                worker,
                from_iter,
                target,
                ref token_counts,
            } => {
                summary.jumps += 1;
                let skip = self.cfg.skip.as_ref().ok_or(ViolationKind::IllegalJump {
                    worker,
                    from: from_iter,
                    target,
                    allowed: None,
                })?;
                let max_ig = self.cfg.max_ig().expect("skip implies tokens (validated)");
                if from_iter != self.entered[worker] || target > self.max_iters {
                    return Err(ViolationKind::IllegalAdvance {
                        worker,
                        from: self.entered[worker],
                        to: target,
                    });
                }
                let outs = self.topology.external_out_neighbors(worker);
                if token_counts.len() != outs.len() {
                    return Err(ViolationKind::IllegalJump {
                        worker,
                        from: from_iter,
                        target,
                        allowed: None,
                    });
                }
                // Observed counts can lag (delayed visibility) but never
                // exceed what was actually granted.
                for (o, &observed) in outs.iter().zip(token_counts) {
                    let actual = self.tokens[&(*o, worker)];
                    if observed > actual {
                        return Err(ViolationKind::TokenUnderflow {
                            owner: *o,
                            consumer: worker,
                            take: observed,
                            available: actual,
                        });
                    }
                }
                let jump = target - from_iter;
                let allowed = semantics::jump_decision(token_counts, max_ig, skip);
                if !(2..=allowed.unwrap_or(0)).contains(&jump) {
                    return Err(ViolationKind::IllegalJump {
                        worker,
                        from: from_iter,
                        target,
                        allowed,
                    });
                }
                // §5's "intuitive upper-bound": never overtake an
                // out-going neighbor.
                for &o in outs {
                    if target > self.logical[o] {
                        return Err(ViolationKind::JumpOvertakes {
                            worker,
                            neighbor: o,
                            target,
                            neighbor_iter: self.logical[o],
                        });
                    }
                }
                self.pending_jump[worker] = Some((from_iter, target));
                self.logical[worker] = self.logical[worker].max(target);
                self.check_gaps(worker)?;
            }
            ProtocolEvent::Crash { worker, iter } => {
                summary.crashes += 1;
                match self.crash_license.get_mut(&(worker, iter)) {
                    Some(count) if *count > 0 => *count -= 1,
                    _ => {
                        return Err(ViolationKind::UnlicensedChurn {
                            worker,
                            what: "crash",
                        })
                    }
                }
                self.dead[worker] = true;
                // In-flight compute and the consume set die with the
                // worker; its never-closed reduce is forgiven at rejoin.
                self.computing[worker] = None;
                self.consumed[worker].clear();
                self.pending_jump[worker] = None;
            }
            ProtocolEvent::Rejoin { worker, target } => {
                summary.rejoins += 1;
                match self.rejoin_license.get_mut(&(worker, target)) {
                    Some(count) if *count > 0 => *count -= 1,
                    _ => {
                        return Err(ViolationKind::UnlicensedChurn {
                            worker,
                            what: "rejoin",
                        })
                    }
                }
                self.dead[worker] = false;
                self.rejoin_target[worker] = Some(target);
                // The crash fires at iteration entry, *before* the doomed
                // iteration's `ComputeBegin` (mid-iteration crash: the
                // worker enters, sends, begins compute, then the engine
                // discards the completion). That in-flight compute died
                // with the worker — forget it, or the revived worker's
                // first `ComputeBegin` would look nested.
                self.computing[worker] = None;
                self.consumed[worker].clear();
                // Mirror the engine's token drain: skipping from
                // `entered` to `target` spends exactly `target - entered`
                // grants per outgoing edge. A deficit means the engine
                // revived the worker on credit — the exact overdraft that
                // lets a rejoiner overtake the gap bound.
                let catchup = target.saturating_sub(self.entered[worker]);
                for &o in self.topology.external_out_neighbors(worker) {
                    if let Some(avail) = self.tokens.get_mut(&(o, worker)) {
                        if *avail < catchup {
                            return Err(ViolationKind::TokenUnderflow {
                                owner: o,
                                consumer: worker,
                                take: catchup,
                                available: *avail,
                            });
                        }
                        *avail -= catchup;
                    }
                }
            }
            ProtocolEvent::Lost { worker, from, iter } => {
                summary.messages_lost += 1;
                self.take_send(from, worker, iter)?;
                match self.loss_license.get_mut(&(from, worker, iter)) {
                    Some(count) if *count > 0 => *count -= 1,
                    _ => return Err(ViolationKind::UnlicensedLoss { worker, from, iter }),
                }
            }
        }
        Ok(())
    }

    /// Validates the consumed-update set closed by one Reduce.
    fn check_reduce_set(
        &self,
        worker: usize,
        iter: u64,
        renew: bool,
        consumed: &[Pending],
    ) -> Result<(), ViolationKind> {
        let mut seen: Vec<usize> = Vec::with_capacity(consumed.len());
        for c in consumed {
            if c.at_iter != iter {
                return Err(ViolationKind::OutOfPlace {
                    worker,
                    iter: c.at_iter,
                    current: iter,
                    what: "consume",
                });
            }
            if seen.contains(&c.from) {
                return Err(ViolationKind::BadReduceSet {
                    worker,
                    iter,
                    why: format!("two updates from sender {}", c.from),
                });
            }
            seen.push(c.from);
        }
        let allowed: &[usize] = if renew {
            self.topology.external_in_neighbors(worker)
        } else {
            self.topology.in_neighbors(worker)
        };
        for c in consumed {
            if !allowed.contains(&c.from) {
                return Err(ViolationKind::BadReduceSet {
                    worker,
                    iter,
                    why: format!("update from non-in-neighbor {}", c.from),
                });
            }
        }
        if let Some(s) = self.cfg.staleness {
            // (c) the staleness window, against exactly the newest update
            // per in-neighbor.
            for c in consumed {
                if !semantics::staleness_satisfied(c.iter, iter, s) {
                    return Err(ViolationKind::StaleWindow {
                        worker,
                        from: c.from,
                        iter: c.iter,
                        at_iter: iter,
                        s,
                    });
                }
            }
            if seen.len() != allowed.len() {
                return Err(ViolationKind::BadReduceSet {
                    worker,
                    iter,
                    why: format!(
                        "staleness reduce used {} of {} in-neighbors",
                        seen.len(),
                        allowed.len()
                    ),
                });
            }
        } else {
            // (b) the Fig. 8 quota, with no cross-iteration tag leaks.
            for c in consumed {
                if c.iter != iter {
                    return Err(ViolationKind::TagLeak {
                        worker,
                        at_iter: iter,
                        from: c.from,
                        iter: c.iter,
                    });
                }
            }
            let (quota, max) = if renew {
                let ext = allowed.len();
                let quota = semantics::backup_quota(ext + 1, self.cfg.n_backup)
                    .saturating_sub(1)
                    .max(1);
                (quota, ext)
            } else {
                let in_deg = self.topology.in_degree(worker);
                (semantics::backup_quota(in_deg, self.cfg.n_backup), in_deg)
            };
            if consumed.len() < quota || consumed.len() > max {
                return Err(ViolationKind::QuotaViolated {
                    worker,
                    iter,
                    got: consumed.len(),
                    quota,
                    max,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkipConfig;

    fn ring4() -> Topology {
        Topology::ring(4)
    }

    /// A hand-built legal standard-mode trace on a 2-worker line:
    /// both workers run 2 iterations in lockstep.
    fn legal_standard_trace() -> ProtocolTrace {
        let mut t = ProtocolTrace::new();
        for w in 0..2 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
            t.push(ProtocolEvent::Send {
                from: w,
                to: w,
                iter: 0,
            });
            t.push(ProtocolEvent::Send {
                from: w,
                to: 1 - w,
                iter: 0,
            });
            t.push(ProtocolEvent::ComputeBegin { worker: w, iter: 0 });
        }
        for w in 0..2 {
            t.push(ProtocolEvent::ComputeEnd { worker: w, iter: 0 });
            t.push(ProtocolEvent::Consume {
                worker: w,
                from: w,
                iter: 0,
                at_iter: 0,
            });
            t.push(ProtocolEvent::Consume {
                worker: w,
                from: 1 - w,
                iter: 0,
                at_iter: 0,
            });
            t.push(ProtocolEvent::Reduce {
                worker: w,
                iter: 0,
                n_updates: 2,
                renew: false,
            });
            t.push(ProtocolEvent::Advance { worker: w, iter: 1 });
        }
        t
    }

    fn two_ring() -> Topology {
        Topology::ring(2)
    }

    #[test]
    fn legal_trace_passes() {
        let cfg = HopConfig::standard();
        let topo = two_ring();
        let oracle = Oracle::new(&cfg, &topo, 1);
        let summary = oracle.check(&legal_standard_trace()).expect("legal");
        assert_eq!(summary.advances, 4);
        assert_eq!(summary.reduces, 2);
        assert_eq!(summary.consumed, 4);
        assert_eq!(summary.max_gap, 1);
    }

    #[test]
    fn consume_without_send_is_flagged() {
        let cfg = HopConfig::standard();
        let topo = two_ring();
        let mut t = ProtocolTrace::new();
        t.push(ProtocolEvent::Advance { worker: 0, iter: 0 });
        t.push(ProtocolEvent::Consume {
            worker: 0,
            from: 1,
            iter: 0,
            at_iter: 0,
        });
        let v = Oracle::new(&cfg, &topo, 1).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::UnknownUpdate { .. }), "{v}");
    }

    #[test]
    fn tag_leak_is_flagged() {
        // Backup mode on a 4-ring (quota 2 of in-degree 3): worker 1
        // legally completes iteration 0 and sends its iteration-1 update;
        // worker 0 then smuggles that future-tagged update into its
        // iteration-0 reduce.
        let cfg = HopConfig::backup(1, 4);
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
            t.push(ProtocolEvent::Send {
                from: w,
                to: w,
                iter: 0,
            });
        }
        t.push(ProtocolEvent::Send {
            from: 0,
            to: 1,
            iter: 0,
        });
        for from in [1usize, 0] {
            t.push(ProtocolEvent::Consume {
                worker: 1,
                from,
                iter: 0,
                at_iter: 0,
            });
        }
        t.push(ProtocolEvent::Reduce {
            worker: 1,
            iter: 0,
            n_updates: 2,
            renew: false,
        });
        t.push(ProtocolEvent::Advance { worker: 1, iter: 1 });
        t.push(ProtocolEvent::Send {
            from: 1,
            to: 0,
            iter: 1,
        });
        for (from, iter) in [(0usize, 0u64), (1, 1)] {
            t.push(ProtocolEvent::Consume {
                worker: 0,
                from,
                iter,
                at_iter: 0,
            });
        }
        t.push(ProtocolEvent::Reduce {
            worker: 0,
            iter: 0,
            n_updates: 2,
            renew: false,
        });
        let v = Oracle::new(&cfg, &topo, 5).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::TagLeak { .. }), "{v}");
    }

    #[test]
    fn quota_underflow_is_flagged() {
        let cfg = HopConfig::backup(1, 4);
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
            t.push(ProtocolEvent::Send {
                from: w,
                to: w,
                iter: 0,
            });
        }
        // in_deg = 3, n_backup = 1 => quota 2; consuming only 1 must fail.
        t.push(ProtocolEvent::Consume {
            worker: 0,
            from: 0,
            iter: 0,
            at_iter: 0,
        });
        t.push(ProtocolEvent::Reduce {
            worker: 0,
            iter: 0,
            n_updates: 1,
            renew: false,
        });
        let v = Oracle::new(&cfg, &topo, 5).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::QuotaViolated { .. }), "{v}");
    }

    #[test]
    fn gap_bound_violation_is_flagged() {
        // Backup mode makes the per-reduce rules loose (quota 2 of 3 on a
        // 4-ring) so workers 0, 1, 2 can legally run forever on each
        // other's updates while worker 3 stays at iteration 0. Only the
        // token bound `max_ig * path` caps the pair gap — a runtime that
        // never takes tokens (this forged trace records none) must be
        // caught by the gap rule at iteration max_ig + 1.
        let cfg = HopConfig::backup(1, 5);
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
        }
        let v = 'outer: {
            for k in 0..7u64 {
                for w in [0usize, 1, 2] {
                    t.push(ProtocolEvent::Send {
                        from: w,
                        to: w,
                        iter: k,
                    });
                }
                t.push(ProtocolEvent::Send {
                    from: 1,
                    to: 0,
                    iter: k,
                });
                t.push(ProtocolEvent::Send {
                    from: 1,
                    to: 2,
                    iter: k,
                });
                t.push(ProtocolEvent::Send {
                    from: 2,
                    to: 1,
                    iter: k,
                });
                for (w, peer) in [(0usize, 1usize), (1, 2), (2, 1)] {
                    for from in [w, peer] {
                        t.push(ProtocolEvent::Consume {
                            worker: w,
                            from,
                            iter: k,
                            at_iter: k,
                        });
                    }
                    t.push(ProtocolEvent::Reduce {
                        worker: w,
                        iter: k,
                        n_updates: 2,
                        renew: false,
                    });
                    t.push(ProtocolEvent::Advance {
                        worker: w,
                        iter: k + 1,
                    });
                }
                if let Err(v) = Oracle::new(&cfg, &topo, 20).check(&t) {
                    break 'outer v;
                }
            }
            panic!("gap bound never fired");
        };
        assert!(matches!(v.kind, ViolationKind::GapBound { .. }), "{v}");
        // The bound that fired is the token bound over the idle worker.
        if let ViolationKind::GapBound { behind, gap, .. } = v.kind {
            assert_eq!(behind, 3);
            assert_eq!(gap, 6, "max_ig = 5 admits a gap of 5, not 6");
        }
    }

    #[test]
    fn token_underflow_is_flagged() {
        let cfg = HopConfig::standard_with_tokens(2);
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        t.push(ProtocolEvent::TokenTake {
            owner: 1,
            consumer: 0,
            count: 3,
        });
        let v = Oracle::new(&cfg, &topo, 5).check(&t).unwrap_err();
        assert!(
            matches!(v.kind, ViolationKind::TokenUnderflow { .. }),
            "{v}"
        );
    }

    #[test]
    fn illegal_jump_is_flagged() {
        let cfg = HopConfig::backup(1, 2).with_skip(SkipConfig::with_max_jump(5));
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
        }
        // Tokens observed = max_ig (2) on both edges: behind = 0, no jump
        // allowed.
        t.push(ProtocolEvent::Jump {
            worker: 0,
            from_iter: 0,
            target: 2,
            token_counts: vec![2, 2],
        });
        let v = Oracle::new(&cfg, &topo, 5).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::IllegalJump { .. }), "{v}");
    }

    #[test]
    fn overtaking_jump_is_flagged() {
        let cfg = HopConfig::backup(1, 2).with_skip(SkipConfig::with_max_jump(8));
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
        }
        // Forge token grants so the decision rule would allow the jump,
        // while the neighbors' recorded iterations stay at 0.
        for o in [1usize, 3] {
            t.push(ProtocolEvent::TokenPass {
                owner: o,
                consumer: 0,
                count: 4,
            });
        }
        t.push(ProtocolEvent::Jump {
            worker: 0,
            from_iter: 0,
            target: 4,
            token_counts: vec![6, 6],
        });
        let v = Oracle::new(&cfg, &topo, 10).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::JumpOvertakes { .. }), "{v}");
    }

    #[test]
    fn staleness_window_violation_is_flagged() {
        // s = 1 without tokens: worker 0's neighbors park at iteration 0.
        // Their iteration-0 updates satisfy the window at k = 0 and k = 1,
        // but consuming them again at k = 2 must trip the window rule.
        let cfg = HopConfig {
            staleness: Some(1),
            ..HopConfig::standard()
        };
        let topo = ring4();
        let mut t = ProtocolTrace::new();
        for w in 0..4 {
            t.push(ProtocolEvent::Advance { worker: w, iter: 0 });
        }
        for from in [1usize, 3] {
            t.push(ProtocolEvent::Send {
                from,
                to: 0,
                iter: 0,
            });
        }
        for k in 0..3u64 {
            t.push(ProtocolEvent::Send {
                from: 0,
                to: 0,
                iter: k,
            });
            t.push(ProtocolEvent::StaleAdmit {
                worker: 0,
                from: 0,
                iter: k,
                at_iter: k,
            });
            if k == 0 {
                for from in [1usize, 3] {
                    t.push(ProtocolEvent::StaleAdmit {
                        worker: 0,
                        from,
                        iter: 0,
                        at_iter: 0,
                    });
                }
            }
            for from in [0usize, 1, 3] {
                t.push(ProtocolEvent::Consume {
                    worker: 0,
                    from,
                    iter: if from == 0 { k } else { 0 },
                    at_iter: k,
                });
            }
            t.push(ProtocolEvent::Reduce {
                worker: 0,
                iter: k,
                n_updates: 3,
                renew: false,
            });
            t.push(ProtocolEvent::Advance {
                worker: 0,
                iter: k + 1,
            });
        }
        let v = Oracle::new(&cfg, &topo, 5).check(&t).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::StaleWindow { .. }), "{v}");
        if let ViolationKind::StaleWindow { at_iter, iter, .. } = v.kind {
            assert_eq!((iter, at_iter), (0, 2));
        }
    }

    #[test]
    fn serialization_round_trips() {
        let mut t = legal_standard_trace();
        t.push(ProtocolEvent::TokenPass {
            owner: 0,
            consumer: 1,
            count: 3,
        });
        t.push(ProtocolEvent::Jump {
            worker: 1,
            from_iter: 1,
            target: 3,
            token_counts: vec![5, 7],
        });
        t.push(ProtocolEvent::StaleReject {
            worker: 0,
            from: 1,
            iter: 2,
            at_iter: 3,
        });
        t.push(ProtocolEvent::Drop {
            worker: 0,
            from: 1,
            iter: 2,
        });
        t.push(ProtocolEvent::Crash { worker: 1, iter: 4 });
        t.push(ProtocolEvent::Rejoin {
            worker: 1,
            target: 6,
        });
        t.push(ProtocolEvent::Lost {
            worker: 0,
            from: 1,
            iter: 2,
        });
        let text = t.to_text();
        let back = ProtocolTrace::from_text(&text).expect("parses");
        assert_eq!(t, back);
    }

    /// The legal 2-worker trace with worker 1 crashing after its last
    /// advance, plus one of worker 0's sends to it declared lost.
    fn faulted_trace() -> ProtocolTrace {
        let mut t = legal_standard_trace();
        t.push(ProtocolEvent::Crash { worker: 1, iter: 1 });
        t.push(ProtocolEvent::Send {
            from: 0,
            to: 1,
            iter: 1,
        });
        t.push(ProtocolEvent::Lost {
            worker: 1,
            from: 0,
            iter: 1,
        });
        t
    }

    #[test]
    fn licensed_faults_pass_and_are_counted() {
        let cfg = HopConfig::standard();
        let topo = two_ring();
        let mut log = hop_sim::FaultLog::new();
        log.push(hop_sim::FaultEvent::Crash { worker: 1, iter: 1 });
        log.push(hop_sim::FaultEvent::Loss {
            from: 0,
            to: 1,
            iter: 1,
        });
        let summary = Oracle::new(&cfg, &topo, 2)
            .check_with_faults(&faulted_trace(), &log)
            .expect("licensed faults are legal");
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.messages_lost, 1);
        assert_eq!(summary.rejoins, 0);
    }

    #[test]
    fn unlicensed_crash_is_flagged() {
        let cfg = HopConfig::standard();
        let topo = two_ring();
        let mut t = legal_standard_trace();
        t.push(ProtocolEvent::Crash { worker: 1, iter: 1 });
        let v = Oracle::new(&cfg, &topo, 2).check(&t).unwrap_err();
        assert!(
            matches!(
                v.kind,
                ViolationKind::UnlicensedChurn {
                    worker: 1,
                    what: "crash"
                }
            ),
            "{v}"
        );
    }

    #[test]
    fn unlicensed_loss_is_flagged() {
        let cfg = HopConfig::standard();
        let topo = two_ring();
        // Only the crash is licensed; the loss is not.
        let mut log = hop_sim::FaultLog::new();
        log.push(hop_sim::FaultEvent::Crash { worker: 1, iter: 1 });
        let v = Oracle::new(&cfg, &topo, 2)
            .check_with_faults(&faulted_trace(), &log)
            .unwrap_err();
        assert!(
            matches!(
                v.kind,
                ViolationKind::UnlicensedLoss {
                    worker: 1,
                    from: 0,
                    iter: 1
                }
            ),
            "{v}"
        );
    }

    #[test]
    fn licensed_rejoin_resumes_at_target() {
        // Backup mode (quota 1 of in-degree 2): worker 1 crashes at
        // iteration 1, worker 0 keeps completing iterations alone, and
        // worker 1 rejoins landing directly on the rehydration target —
        // legal only because the rejoin suspends the +1 progression and
        // reduce-closure rules for exactly one advance.
        let cfg = HopConfig::backup(1, 8);
        let topo = two_ring();
        let mut t = legal_standard_trace();
        t.push(ProtocolEvent::Crash { worker: 1, iter: 1 });
        for iter in 1..3 {
            solo_iteration(&mut t, 0, iter);
        }
        t.push(ProtocolEvent::Rejoin {
            worker: 1,
            target: 3,
        });
        t.push(ProtocolEvent::Advance { worker: 1, iter: 3 });
        let mut log = hop_sim::FaultLog::new();
        log.push(hop_sim::FaultEvent::Crash { worker: 1, iter: 1 });
        log.push(hop_sim::FaultEvent::Rejoin {
            worker: 1,
            target: 3,
            donor: 0,
        });
        let summary = Oracle::new(&cfg, &topo, 4)
            .check_with_faults(&t, &log)
            .expect("licensed churn cycle is legal");
        assert_eq!(summary.crashes, 1);
        assert_eq!(summary.rejoins, 1);
    }

    /// One complete backup-mode iteration of `w` with its only live
    /// in-neighbor being itself: send everywhere, compute, consume the
    /// self-update, reduce with n = quota = 1, and advance.
    fn solo_iteration(t: &mut ProtocolTrace, w: usize, iter: u64) {
        t.push(ProtocolEvent::Send {
            from: w,
            to: w,
            iter,
        });
        t.push(ProtocolEvent::Send {
            from: w,
            to: 1 - w,
            iter,
        });
        t.push(ProtocolEvent::ComputeBegin { worker: w, iter });
        t.push(ProtocolEvent::ComputeEnd { worker: w, iter });
        t.push(ProtocolEvent::Consume {
            worker: w,
            from: w,
            iter,
            at_iter: iter,
        });
        t.push(ProtocolEvent::Reduce {
            worker: w,
            iter,
            n_updates: 1,
            renew: false,
        });
        t.push(ProtocolEvent::Advance {
            worker: w,
            iter: iter + 1,
        });
    }

    #[test]
    fn dead_workers_are_exempt_from_gap_checks() {
        // With worker 1 dead, worker 0 may run arbitrarily far ahead; the
        // same iterations without the crash violate the Table 1 bound.
        let cfg = HopConfig::backup(1, 2);
        let topo = two_ring();
        let far = |crash: bool| {
            let mut t = legal_standard_trace();
            if crash {
                t.push(ProtocolEvent::Crash { worker: 1, iter: 1 });
            }
            for iter in 1..9 {
                solo_iteration(&mut t, 0, iter);
            }
            t
        };
        let mut log = hop_sim::FaultLog::new();
        log.push(hop_sim::FaultEvent::Crash { worker: 1, iter: 1 });
        Oracle::new(&cfg, &topo, 16)
            .check_with_faults(&far(true), &log)
            .expect("gap checks skip dead workers");
        let v = Oracle::new(&cfg, &topo, 16).check(&far(false)).unwrap_err();
        assert!(matches!(v.kind, ViolationKind::GapBound { .. }), "{v}");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = ProtocolTrace::from_text("advance w=0 iter=0\nbogus_kind x=1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.text, "bogus_kind x=1");
        assert!(format!("{err}").contains("bogus_kind"));
        let err = ProtocolTrace::from_text("advance w=zero iter=0\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn corrupted_multi_line_trace_pinpoints_the_bad_line() {
        // A realistic round-trip corruption: serialize a real trace, then
        // garble one line in the middle. The error must carry both the
        // 1-based line number of the damage and the damaged text itself.
        let trace = crate::choreography::reference_trace(3, 2);
        let text = trace.to_text();
        let n_lines = text.lines().count();
        assert!(n_lines > 10, "reference trace too small for this test");
        let bad_index = n_lines / 2;
        let corrupted: String = text
            .lines()
            .enumerate()
            .map(|(i, line)| {
                if i == bad_index {
                    // Damage the key=value structure, keeping the kind.
                    format!("{}\n", line.replace('=', "~"))
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        let err = ProtocolTrace::from_text(&corrupted).unwrap_err();
        assert_eq!(err.line, bad_index + 1);
        assert_eq!(err.text, corrupted.lines().nth(bad_index).unwrap().trim());
        let shown = format!("{err}");
        assert!(
            shown.contains(&format!("line {}", bad_index + 1)) && shown.contains(&err.text),
            "{shown}"
        );
        // Undamaged text still round-trips.
        let reparsed = ProtocolTrace::from_text(&text).expect("clean trace parses");
        assert_eq!(reparsed.events(), trace.events());
    }

    #[test]
    fn violation_display_is_debuggable() {
        let v = Violation {
            index: 7,
            event: "reduce w=1 iter=3 n=1 renew=0".to_string(),
            kind: ViolationKind::QuotaViolated {
                worker: 1,
                iter: 3,
                got: 1,
                quota: 2,
                max: 3,
            },
        };
        let s = format!("{v}");
        assert!(s.contains("event #7"), "{s}");
        assert!(s.contains("quota [2, 3]"), "{s}");
    }
}
