//! # hop-core: Heterogeneity-aware decentralized training
//!
//! The paper's contribution, implemented end to end:
//!
//! * [`config`] — the protocol family: standard decentralized training
//!   (serial/parallel computation graphs, Fig. 2), the NOTIFY-ACK baseline
//!   (§3.3), queue-based synchronization with token queues (§4), backup
//!   workers (§4.3), bounded staleness with the Eq. (2) weighted reduce
//!   (§4.4), skipping iterations (§5), plus parameter-server, ring
//!   all-reduce, AD-PSGD, Prague partial all-reduce and Quasi-Global
//!   Momentum baselines.
//! * [`semantics`] — the pure update-selection/reduction/jump rules shared
//!   by both runtimes.
//! * [`conformance`] — the protocol-event trace both runtimes emit and
//!   the invariant [`conformance::Oracle`] that replays it (gap bounds,
//!   backup quota, staleness window, jump legality).
//! * [`choreography`] — the same grammar as typestate handles: the only
//!   way a runtime can emit exchange events, so illegal event orders are
//!   compile errors; plus the declarative [`choreography::ChoreographySpec`]
//!   layer the `choreo_check` binary validates statically.
//! * [`sim_runtime`] — deterministic discrete-event execution on
//!   [`hop_sim`]'s virtual cluster; produces timing traces, gap
//!   statistics and loss curves for every figure in the paper.
//! * [`threaded`] — the same protocol on real OS threads with blocking
//!   queues from [`hop_queue`].
//! * [`process`] — the same protocol on real OS *processes* over
//!   localhost TCP, speaking [`hop_wire`] length-prefixed frames; its
//!   measured socket bytes equal the simulator's `bytes_sent` by
//!   construction.
//! * [`trainer`] — the high-level [`trainer::SimExperiment`] API.
//! * [`sweep`] — cartesian experiment grids ([`sweep::SweepGrid`])
//!   executed across all cores by [`sweep::SweepRunner`], bit-identical
//!   to sequential runs at any thread count.
//!
//! # Examples
//!
//! ```
//! use hop_core::config::{HopConfig, Protocol};
//! use hop_core::trainer::{Hyper, SimExperiment};
//! use hop_data::webspam::SyntheticWebspam;
//! use hop_graph::Topology;
//! use hop_model::svm::Svm;
//! use hop_sim::{ClusterSpec, LinkModel, SlowdownModel};
//!
//! let dataset = SyntheticWebspam::generate(256, 0);
//! let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
//! let report = SimExperiment {
//!     topology: Topology::ring_based(8),
//!     cluster: ClusterSpec::uniform(8, 4, 0.01, LinkModel::ethernet_1gbps()),
//!     slowdown: SlowdownModel::paper_random(8),
//!     protocol: Protocol::Hop(HopConfig::backup(1, 5)),
//!     hyper: Hyper::svm(),
//!     max_iters: 30,
//!     seed: 7,
//!     eval_every: 10,
//!     eval_examples: 64,
//! }
//! .run(&model, &dataset)?;
//! assert!(!report.deadlocked);
//! # Ok::<(), hop_core::config::ConfigError>(())
//! ```

pub mod choreography;
pub mod config;
pub mod conformance;
pub mod process;
pub mod report;
pub mod semantics;
pub mod sim_runtime;
pub mod sweep;
pub mod threaded;
pub mod trainer;

pub use choreography::ChoreographySpec;
pub use config::{
    ComputeOrder, HopConfig, PragueConfig, Protocol, QgmConfig, SkipConfig, SyncMode,
};
pub use conformance::{ConformanceSummary, Oracle, ProtocolEvent, ProtocolTrace, Violation};
pub use hop_tensor::CompressionConfig;
pub use process::{ProcessError, ProcessExperiment, ProcessReport};
pub use report::TrainingReport;
pub use sim_runtime::recorder::EvalConfig;
pub use sweep::{SweepGrid, SweepResult, SweepRunner, SweepSummary};
pub use trainer::{Hyper, SimExperiment};
