//! The multi-process runtime: Hop's queue-based protocol across OS
//! *processes* over localhost TCP, speaking the [`hop_wire`]
//! length-prefixed frame format.
//!
//! A [`ProcessExperiment`] plays coordinator: it binds a listener,
//! re-execs the worker binary (`hop_worker --worker <addr> <id>`) once
//! per worker, hands each its spec text and peer ports, and
//! collects one [`Message::Summary`] per worker at the end. Workers
//! connect to each other directly — one TCP connection per directed
//! external edge `w -> o`, carrying `w`'s updates one way and `o`'s
//! token grants the other — and drive the *same* iteration loop as the
//! threaded runtime ([`crate::threaded`]), through the same
//! [`crate::choreography`] typestate handles, over socket-fed mirrors
//! of the blocking queues.
//!
//! # Wire accounting
//!
//! An update frame embeds its [`CompressedBlock`] in exactly
//! [`CompressedBlock::encoded_bytes`] payload bytes, and a worker counts
//! every *attempted* external send (exactly like the simulator's charge
//! to its virtual network), so the summed
//! [`ProcessReport::update_wire_bytes`] equals the simulator's
//! `bytes_sent` for the same grid point by construction — the number is
//! measured on a real socket, not modeled.
//!
//! # Conformance
//!
//! Each worker stamps its events with a Lamport clock (a local counter
//! bumped on every emission and max-merged with the clock carried by
//! every incoming frame), so causally ordered cross-process events have
//! strictly ordered stamps. The coordinator merges the per-worker
//! stamped logs into one [`ProtocolTrace`] that replays through the
//! [`crate::conformance::Oracle`] exactly like the sim and threaded
//! traces.
//!
//! # Failure semantics
//!
//! Everything fails closed. A peer that dies mid-run surfaces as a
//! typed [`hop_wire::WireError`] on its readers (EOF without a
//! `Finished` frame), which the survivors report as a peer loss instead
//! of a bare stall; the coordinator turns missing summaries into
//! [`ProcessError::PeerLost`] and — when
//! [`ProcessExperiment::failure_label`] is set — serializes the partial
//! merged trace to `target/conformance-failures/<label>.trace` for
//! offline replay.

use crate::choreography::{self, t, ChoreographySpec, SeqSink, Transition};
use crate::config::{ComputeOrder, ConfigError, HopConfig, SkipConfig, SyncMode};
use crate::conformance::{ProtocolEvent, ProtocolTrace};
use crate::semantics::{self, StalenessWeighting};
use crate::sim_runtime::compression::CompressionPlane;
use crate::threaded::{jump_renew, stale_recv, WorkerCtx};
use crate::trainer::Hyper;
use hop_data::webspam::SyntheticWebspam;
use hop_data::{BatchSampler, Dataset};
use hop_graph::Topology;
use hop_model::svm::Svm;
use hop_model::{GradScratch, Model, Sgd};
use hop_queue::blocking::{SharedTaggedQueue, SharedTokenQueue};
use hop_queue::tagged::{Tag, TagFilter};
use hop_tensor::{BufferPool, CompressedBlock, CompressionConfig, ParamBlock};
use hop_wire::{read_message, write_message, Message, WireError};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::ErrorKind;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The process runtime's transition table: the full grammar minus the
/// fault plane — a real dead process cannot be choreographed as a
/// polite `Crash` event; it surfaces as a connection error instead.
pub const PROCESS_TRANSITIONS: &[Transition] = &[
    t("Reduced", choreography::EventKind::Advance, "Idle"),
    t("Idle", choreography::EventKind::Send, "Idle"),
    t("Idle", choreography::EventKind::ComputeBegin, "Computing"),
    t(
        "Computing",
        choreography::EventKind::ComputeEnd,
        "Exchanging",
    ),
    t("Exchanging", choreography::EventKind::Send, "Exchanging"),
    t("Exchanging", choreography::EventKind::Consume, "Exchanging"),
    t("Exchanging", choreography::EventKind::Reduce, "Reduced"),
    t("Reduced", choreography::EventKind::TokenTake, "Reduced"),
    t("Reduced", choreography::EventKind::Jump, "Renewing"),
    t("Renewing", choreography::EventKind::TokenTake, "Renewing"),
    t("Renewing", choreography::EventKind::Consume, "Renewing"),
    t("Renewing", choreography::EventKind::RenewReduce, "Reduced"),
    t("*", choreography::EventKind::TokenPass, "*"),
    t("*", choreography::EventKind::StaleAdmit, "*"),
    t("*", choreography::EventKind::StaleReject, "*"),
    t("*", choreography::EventKind::Drop, "*"),
];

/// The declared choreography of the process runtime: the threaded
/// grammar without churn (crashes are connection failures here, not
/// protocol events).
pub const CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "process",
    states: choreography::STATES,
    transitions: PROCESS_TRANSITIONS,
    tokens: true,
    staleness: true,
    jumps: true,
    churn: false,
};

/// Error from the process runtime's coordinator half.
#[derive(Debug)]
pub enum ProcessError {
    /// The configuration is invalid for the topology.
    Config(ConfigError),
    /// The configuration names a feature the process runtime does not
    /// implement (serial order, NOTIFY-ACK).
    Unsupported(&'static str),
    /// An I/O operation on the coordinator side failed.
    Io {
        /// What the coordinator was doing.
        context: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A frame to or from a worker failed to encode, decode, or move.
    Wire {
        /// What the coordinator was doing.
        context: &'static str,
        /// The underlying error.
        error: WireError,
    },
    /// The worker fleet never finished connecting and identifying.
    Handshake(String),
    /// One or more workers died without sending a final summary —
    /// killed, crashed, or wedged past the summary deadline. Survivors'
    /// partial traces are merged and (with a failure label set) written
    /// to `target/conformance-failures/`.
    PeerLost {
        /// `(worker, why its summary never arrived)` for every lost
        /// worker.
        failures: Vec<(usize, String)>,
    },
    /// A worker finished the session but reported a protocol failure
    /// (stall, peer loss, corrupt frame) instead of a result.
    WorkerFailed {
        /// The failing worker.
        worker: usize,
        /// The worker's own error description.
        error: String,
    },
    /// The merged event log did not parse back into a trace.
    Protocol(String),
}

impl std::fmt::Display for ProcessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcessError::Config(e) => write!(f, "invalid config: {e}"),
            ProcessError::Unsupported(what) => {
                write!(f, "process runtime does not support {what}")
            }
            ProcessError::Io { context, error } => write!(f, "{context}: {error}"),
            ProcessError::Wire { context, error } => write!(f, "{context}: {error}"),
            ProcessError::Handshake(why) => write!(f, "worker handshake failed: {why}"),
            ProcessError::PeerLost { failures } => {
                write!(f, "lost worker process(es):")?;
                for (w, why) in failures {
                    write!(f, " [{w}: {why}]")?;
                }
                Ok(())
            }
            ProcessError::WorkerFailed { worker, error } => {
                write!(f, "worker {worker} failed: {error}")
            }
            ProcessError::Protocol(why) => write!(f, "merged trace is malformed: {why}"),
        }
    }
}

impl std::error::Error for ProcessError {}

impl From<ConfigError> for ProcessError {
    fn from(e: ConfigError) -> Self {
        ProcessError::Config(e)
    }
}

/// Result of a process-runtime run.
#[derive(Debug, Clone)]
pub struct ProcessReport {
    /// Final parameters per worker.
    pub final_params: Vec<Vec<f32>>,
    /// Per-worker minibatch losses by iteration (skipped iterations have
    /// no loss entry).
    pub losses: Vec<Vec<f32>>,
    /// Per-worker update-block payload bytes actually framed onto the
    /// sockets — comparable 1:1 with the simulator's `bytes_sent`.
    pub update_wire_bytes: Vec<u64>,
    /// Wall-clock duration of the run (spawn to last summary).
    pub elapsed: Duration,
}

impl ProcessReport {
    /// Total update bytes across all workers — the number that must
    /// equal the simulator's `bytes_sent` for the same grid point.
    #[must_use]
    pub fn total_update_wire_bytes(&self) -> u64 {
        self.update_wire_bytes.iter().sum()
    }

    /// Elementwise average of the final parameters (empty for an empty
    /// report).
    #[must_use]
    pub fn averaged_params(&self) -> Vec<f32> {
        let views: Vec<&[f32]> = self.final_params.iter().map(Vec::as_slice).collect();
        let Some(first) = views.first() else {
            return Vec::new();
        };
        let mut out = vec![0.0f32; first.len()];
        hop_tensor::ops::mean_into(&views, &mut out);
        out
    }
}

/// A process-per-worker decentralized training run over localhost TCP.
///
/// The workload is the conformance suite's synthetic webspam SVM,
/// reconstructed identically on each worker from `(examples,
/// data_seed)` — a model cannot be shipped through a socket, but its
/// recipe can.
#[derive(Debug, Clone)]
pub struct ProcessExperiment {
    /// Protocol configuration (parallel order, queue-based sync).
    pub config: HopConfig,
    /// Communication graph.
    pub topology: Topology,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Master seed (parameter init and batch sampling, shared with the
    /// other runtimes).
    pub seed: u64,
    /// Optimizer hyperparameters.
    pub hyper: Hyper,
    /// Synthetic-webspam examples per worker dataset.
    pub examples: usize,
    /// Synthetic-webspam generator seed.
    pub data_seed: u64,
    /// Artificial per-iteration sleep (simulating compute).
    pub compute_sleep: Duration,
    /// Makes one worker a deterministic straggler: `(worker, factor)`
    /// multiplies its `compute_sleep`.
    pub slow_worker: Option<(usize, u32)>,
    /// Timeout for any single blocking queue operation in a worker
    /// before declaring a stall.
    pub stall_timeout: Duration,
    /// The worker binary to re-exec (`hop_worker`; tests use
    /// `env!("CARGO_BIN_EXE_hop_worker")`, the smoke mode uses
    /// `std::env::current_exe()`).
    pub worker_bin: PathBuf,
    /// Fault hook: `(worker, iter)` makes that worker `exit(101)` at the
    /// given iteration entry — no `Finished`, no summary — so tests can
    /// exercise the peer-loss path deterministically.
    pub die_at: Option<(usize, u64)>,
    /// When set and the run fails, the partial merged trace is written
    /// to `target/conformance-failures/<label>.trace`.
    pub failure_label: Option<String>,
}

impl ProcessExperiment {
    /// An experiment with the conformance suite's defaults; override
    /// fields as needed.
    #[must_use]
    pub fn new(config: HopConfig, topology: Topology, max_iters: u64, worker_bin: PathBuf) -> Self {
        Self {
            config,
            topology,
            max_iters,
            seed: 17,
            hyper: Hyper::svm(),
            examples: 96,
            data_seed: 5,
            compute_sleep: Duration::ZERO,
            slow_worker: None,
            stall_timeout: Duration::from_secs(20),
            worker_bin,
            die_at: None,
            failure_label: None,
        }
    }

    /// Runs the experiment with one OS process per worker.
    ///
    /// # Errors
    ///
    /// [`ProcessError::Config`] / [`ProcessError::Unsupported`] for bad
    /// configurations, [`ProcessError::Handshake`] when the fleet never
    /// assembles, [`ProcessError::PeerLost`] when a worker process dies
    /// mid-run, and [`ProcessError::WorkerFailed`] when a worker
    /// reports a protocol failure (e.g. a stall) in its summary.
    pub fn run(&self) -> Result<ProcessReport, ProcessError> {
        Ok(self.run_inner(false)?.0)
    }

    /// [`Self::run`] with conformance recording: also returns the
    /// Lamport-merged [`ProtocolTrace`], ready for
    /// [`crate::conformance::Oracle::check`].
    ///
    /// # Errors
    ///
    /// Exactly [`Self::run`]'s errors, plus [`ProcessError::Protocol`]
    /// if the merged event log fails to parse.
    pub fn run_traced(&self) -> Result<(ProcessReport, ProtocolTrace), ProcessError> {
        let (report, trace) = self.run_inner(true)?;
        Ok((report, trace.expect("tracing was enabled")))
    }

    fn run_inner(
        &self,
        traced: bool,
    ) -> Result<(ProcessReport, Option<ProtocolTrace>), ProcessError> {
        self.config.validate(&self.topology)?;
        if self.config.order != ComputeOrder::Parallel {
            return Err(ProcessError::Unsupported("the serial compute order"));
        }
        if self.config.sync == SyncMode::NotifyAck {
            return Err(ProcessError::Unsupported("NOTIFY-ACK synchronization"));
        }
        let n = self.topology.len();
        let listener = TcpListener::bind(("127.0.0.1", 0)).map_err(|error| ProcessError::Io {
            context: "bind coordinator listener",
            error,
        })?;
        let addr = listener.local_addr().map_err(|error| ProcessError::Io {
            context: "read coordinator address",
            error,
        })?;
        let start = Instant::now();
        let mut children = Fleet(Vec::with_capacity(n));
        for w in 0..n {
            let child = Command::new(&self.worker_bin)
                .arg("--worker")
                .arg(addr.to_string())
                .arg(w.to_string())
                .stdin(Stdio::null())
                .spawn()
                .map_err(|error| ProcessError::Io {
                    context: "spawn worker process",
                    error,
                })?;
            children.0.push(child);
        }
        let mut conns = accept_fleet(&listener, &mut children, n)?;
        // Hand every worker its spec and the listener ports of its
        // update receivers, then let the fleet run.
        for w in 0..n {
            let peers: Vec<(u32, u16)> = self
                .topology
                .external_out_neighbors(w)
                .iter()
                .map(|&o| (o as u32, conns_port(&conns, o)))
                .collect();
            let spec = Message::Spec {
                text: self.spec_text(w, traced),
            };
            let (stream, _) = conns[w].as_mut().expect("handshake filled every slot");
            write_message(stream, &spec).map_err(|error| ProcessError::Wire {
                context: "send worker spec",
                error,
            })?;
            write_message(stream, &Message::Peers { peers }).map_err(|error| {
                ProcessError::Wire {
                    context: "send peer table",
                    error,
                }
            })?;
        }
        // Collect one summary per worker within a budget derived from
        // the run's own knobs; a missing summary is a lost peer.
        let slow = self.slow_worker.map_or(1, |(_, f)| f.max(1));
        let iter_cap = u32::try_from(self.max_iters.min(100_000)).expect("capped");
        let budget =
            self.compute_sleep * slow * iter_cap + self.stall_timeout * 4 + Duration::from_secs(30);
        let deadline = Instant::now() + budget;
        let mut summaries: Vec<Option<Summary>> = (0..n).map(|_| None).collect();
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (w, slot) in conns.iter_mut().enumerate() {
            let (stream, _) = slot.as_mut().expect("handshake filled every slot");
            let remaining = deadline
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(10));
            stream.set_read_timeout(Some(remaining)).ok();
            match read_message(stream) {
                Ok(Message::Summary {
                    worker,
                    ok,
                    error,
                    update_wire_bytes,
                    final_params,
                    losses,
                    events_text,
                }) if worker as usize == w => {
                    summaries[w] = Some(Summary {
                        ok,
                        error,
                        update_wire_bytes,
                        final_params,
                        losses,
                        events_text,
                    });
                }
                Ok(other) => {
                    failures.push((w, format!("sent {other:?} instead of its summary")));
                }
                Err(e) => failures.push((w, e.to_string())),
            }
        }
        drop(children); // reap the fleet before reporting
        let elapsed = start.elapsed();
        let merged_text = traced
            .then(|| merge_stamped_events(&summaries))
            .transpose()?;
        let first_failed = summaries
            .iter()
            .enumerate()
            .find_map(|(w, s)| s.as_ref().filter(|s| !s.ok).map(|s| (w, s.error.clone())));
        if !failures.is_empty() || first_failed.is_some() {
            if let (Some(label), Some(text)) = (&self.failure_label, &merged_text) {
                let dir = std::path::Path::new("target/conformance-failures");
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(dir.join(format!("{label}.trace")), text);
            }
            if !failures.is_empty() {
                return Err(ProcessError::PeerLost { failures });
            }
            let (worker, error) = first_failed.expect("checked above");
            return Err(ProcessError::WorkerFailed { worker, error });
        }
        let trace = merged_text
            .map(|text| {
                ProtocolTrace::from_text(&text).map_err(|e| ProcessError::Protocol(e.to_string()))
            })
            .transpose()?;
        let mut report = ProcessReport {
            final_params: Vec::with_capacity(n),
            losses: Vec::with_capacity(n),
            update_wire_bytes: Vec::with_capacity(n),
            elapsed,
        };
        for s in summaries {
            let s = s.expect("no failure implies every summary arrived");
            report.final_params.push(s.final_params);
            report.losses.push(s.losses);
            report.update_wire_bytes.push(s.update_wire_bytes);
        }
        Ok((report, trace))
    }

    /// The text `key=value` specification shipped to worker `w`. Floats
    /// travel as hex bit patterns so both sides compute on identical
    /// values.
    fn spec_text(&self, w: usize, traced: bool) -> String {
        let cfg = &self.config;
        let mut out = String::new();
        let _ = writeln!(out, "w={w}");
        let _ = writeln!(out, "n={}", self.topology.len());
        let _ = writeln!(out, "max_iters={}", self.max_iters);
        let _ = writeln!(out, "seed={}", self.seed);
        let edges: Vec<String> = self
            .topology
            .external_edges()
            .iter()
            .map(|(u, v)| format!("{u}>{v}"))
            .collect();
        let _ = writeln!(out, "edges={}", edges.join(";"));
        let _ = writeln!(out, "max_ig={}", opt_u64(cfg.max_ig()));
        let _ = writeln!(out, "n_backup={}", cfg.n_backup);
        let _ = writeln!(out, "staleness={}", opt_u64(cfg.staleness));
        let _ = writeln!(
            out,
            "skip={}",
            cfg.skip.as_ref().map_or_else(
                || "none".into(),
                |s| format!("{}:{}", s.max_jump, s.trigger_behind)
            )
        );
        let _ = writeln!(
            out,
            "send_inquiry={}",
            cfg.send_inquiry
                .map_or_else(|| "none".into(), |b| u8::from(b).to_string())
        );
        let weighting = match cfg.staleness_weighting {
            StalenessWeighting::Linear => "linear".to_string(),
            StalenessWeighting::Uniform => "uniform".to_string(),
            StalenessWeighting::Exponential { decay } => format!("exp:{:08x}", decay.to_bits()),
        };
        let _ = writeln!(out, "weighting={weighting}");
        let compression = match cfg.compression {
            CompressionConfig::Identity => "identity".to_string(),
            CompressionConfig::TopK { ratio } => format!("topk:{:08x}", ratio.to_bits()),
            CompressionConfig::Int8Uniform => "int8".to_string(),
        };
        let _ = writeln!(out, "compression={compression}");
        let _ = writeln!(out, "lr={:08x}", self.hyper.lr.to_bits());
        let _ = writeln!(out, "momentum={:08x}", self.hyper.momentum.to_bits());
        let _ = writeln!(
            out,
            "weight_decay={:08x}",
            self.hyper.weight_decay.to_bits()
        );
        let _ = writeln!(out, "batch_size={}", self.hyper.batch_size);
        let _ = writeln!(out, "examples={}", self.examples);
        let _ = writeln!(out, "data_seed={}", self.data_seed);
        let sleep = match self.slow_worker {
            Some((slow, factor)) if slow == w => self.compute_sleep * factor,
            _ => self.compute_sleep,
        };
        let _ = writeln!(
            out,
            "sleep_us={}",
            u64::try_from(sleep.as_micros()).unwrap_or(u64::MAX)
        );
        let _ = writeln!(
            out,
            "stall_ms={}",
            u64::try_from(self.stall_timeout.as_millis()).unwrap_or(u64::MAX)
        );
        let _ = writeln!(out, "traced={}", u8::from(traced));
        let die = match self.die_at {
            Some((dw, iter)) if dw == w => opt_u64(Some(iter)),
            _ => "none".to_string(),
        };
        let _ = writeln!(out, "die_at={die}");
        out
    }
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "none".to_string(), |x| x.to_string())
}

/// The worker fleet, killed and reaped on drop so no code path leaks
/// child processes (a worker that already exited ignores the kill).
struct Fleet(Vec<Child>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Accepts and identifies all `n` worker connections, watching for
/// children that die before saying hello.
fn accept_fleet(
    listener: &TcpListener,
    children: &mut Fleet,
    n: usize,
) -> Result<Vec<Option<(TcpStream, u16)>>, ProcessError> {
    listener
        .set_nonblocking(true)
        .map_err(|error| ProcessError::Io {
            context: "poll coordinator listener",
            error,
        })?;
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut conns: Vec<Option<(TcpStream, u16)>> = (0..n).map(|_| None).collect();
    let mut have = 0;
    while have < n {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|error| ProcessError::Io {
                        context: "configure worker socket",
                        error,
                    })?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
                let mut stream = stream;
                match read_message(&mut stream) {
                    Ok(Message::Hello { worker, port }) => {
                        let w = worker as usize;
                        if w >= n {
                            return Err(ProcessError::Handshake(format!(
                                "hello from out-of-range worker {w}"
                            )));
                        }
                        if conns[w].is_some() {
                            return Err(ProcessError::Handshake(format!(
                                "two hellos from worker {w}"
                            )));
                        }
                        conns[w] = Some((stream, port));
                        have += 1;
                    }
                    Ok(other) => {
                        return Err(ProcessError::Handshake(format!(
                            "expected a hello, got {other:?}"
                        )));
                    }
                    Err(e) => return Err(ProcessError::Handshake(format!("bad hello: {e}"))),
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    let missing: Vec<usize> = (0..n).filter(|&w| conns[w].is_none()).collect();
                    return Err(ProcessError::Handshake(format!(
                        "timed out waiting for workers {missing:?}"
                    )));
                }
                for (w, child) in children.0.iter_mut().enumerate() {
                    if conns[w].is_none() {
                        if let Ok(Some(status)) = child.try_wait() {
                            return Err(ProcessError::Handshake(format!(
                                "worker {w} exited during handshake ({status})"
                            )));
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(error) => {
                return Err(ProcessError::Io {
                    context: "accept worker connection",
                    error,
                })
            }
        }
    }
    Ok(conns)
}

fn conns_port(conns: &[Option<(TcpStream, u16)>], w: usize) -> u16 {
    conns[w].as_ref().expect("handshake filled every slot").1
}

/// One worker's final report, as decoded from its summary frame.
struct Summary {
    ok: bool,
    error: String,
    update_wire_bytes: u64,
    final_params: Vec<f32>,
    losses: Vec<f32>,
    events_text: String,
}

/// Merges the per-worker `<stamp> <event>` logs into one event-per-line
/// text, ordered by Lamport stamp (ties broken by worker order, which
/// keeps the merge deterministic).
fn merge_stamped_events(summaries: &[Option<Summary>]) -> Result<String, ProcessError> {
    let mut lines: Vec<(u64, usize, &str)> = Vec::new();
    for (idx, summary) in summaries.iter().enumerate() {
        let Some(summary) = summary else { continue };
        for line in summary.events_text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stamp, rest) = line.split_once(' ').ok_or_else(|| {
                ProcessError::Protocol(format!("worker {idx} sent unstamped event `{line}`"))
            })?;
            let stamp: u64 = stamp.parse().map_err(|e| {
                ProcessError::Protocol(format!("worker {idx} sent bad stamp `{line}`: {e}"))
            })?;
            lines.push((stamp, idx, rest));
        }
    }
    lines.sort_by_key(|&(stamp, idx, _)| (stamp, idx));
    let mut out = String::new();
    for (_, _, line) in lines {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Worker half
// ---------------------------------------------------------------------------

/// Everything a worker needs to run its half of the experiment, parsed
/// from the coordinator's spec text.
#[derive(Debug, PartialEq)]
struct WorkerSpec {
    w: usize,
    n: usize,
    max_iters: u64,
    seed: u64,
    edges: Vec<(usize, usize)>,
    cfg: HopConfig,
    hyper: Hyper,
    examples: usize,
    data_seed: u64,
    compute_sleep: Duration,
    stall_timeout: Duration,
    traced: bool,
    die_at: Option<u64>,
}

impl WorkerSpec {
    fn parse(text: &str) -> Result<Self, String> {
        let mut fields: HashMap<&str, &str> = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("spec line `{line}` is not key=value"))?;
            fields.insert(k, v);
        }
        let get = |key: &str| -> Result<&str, String> {
            fields
                .get(key)
                .copied()
                .ok_or_else(|| format!("spec is missing `{key}`"))
        };
        let get_u64 = |key: &str| -> Result<u64, String> {
            get(key)?
                .parse::<u64>()
                .map_err(|e| format!("spec `{key}`: {e}"))
        };
        let get_opt_u64 = |key: &str| -> Result<Option<u64>, String> {
            let raw = get(key)?;
            if raw == "none" {
                Ok(None)
            } else {
                raw.parse::<u64>()
                    .map(Some)
                    .map_err(|e| format!("spec `{key}`: {e}"))
            }
        };
        let get_f32 = |key: &str| -> Result<f32, String> {
            let raw = get(key)?;
            u32::from_str_radix(raw, 16)
                .map(f32::from_bits)
                .map_err(|e| format!("spec `{key}`: {e}"))
        };
        let mut edges = Vec::new();
        let raw_edges = get("edges")?;
        if !raw_edges.is_empty() {
            for part in raw_edges.split(';') {
                let (u, v) = part
                    .split_once('>')
                    .ok_or_else(|| format!("spec edge `{part}` is not u>v"))?;
                let u = u
                    .parse::<usize>()
                    .map_err(|e| format!("spec edge `{part}`: {e}"))?;
                let v = v
                    .parse::<usize>()
                    .map_err(|e| format!("spec edge `{part}`: {e}"))?;
                edges.push((u, v));
            }
        }
        let skip = match get("skip")? {
            "none" => None,
            raw => {
                let (j, b) = raw
                    .split_once(':')
                    .ok_or_else(|| format!("spec skip `{raw}` is not max_jump:trigger"))?;
                Some(SkipConfig {
                    max_jump: j.parse().map_err(|e| format!("spec skip: {e}"))?,
                    trigger_behind: b.parse().map_err(|e| format!("spec skip: {e}"))?,
                })
            }
        };
        let send_inquiry = match get("send_inquiry")? {
            "none" => None,
            "0" => Some(false),
            "1" => Some(true),
            other => return Err(format!("spec send_inquiry `{other}` is not none/0/1")),
        };
        let staleness_weighting = match get("weighting")? {
            "linear" => StalenessWeighting::Linear,
            "uniform" => StalenessWeighting::Uniform,
            raw => match raw.strip_prefix("exp:") {
                Some(bits) => StalenessWeighting::Exponential {
                    decay: u32::from_str_radix(bits, 16)
                        .map(f32::from_bits)
                        .map_err(|e| format!("spec weighting: {e}"))?,
                },
                None => return Err(format!("unknown weighting `{raw}`")),
            },
        };
        let compression = match get("compression")? {
            "identity" => CompressionConfig::Identity,
            "int8" => CompressionConfig::Int8Uniform,
            raw => match raw.strip_prefix("topk:") {
                Some(bits) => CompressionConfig::TopK {
                    ratio: u32::from_str_radix(bits, 16)
                        .map(f32::from_bits)
                        .map_err(|e| format!("spec compression: {e}"))?,
                },
                None => return Err(format!("unknown compression `{raw}`")),
            },
        };
        let cfg = HopConfig {
            order: ComputeOrder::Parallel,
            sync: SyncMode::Queues {
                max_ig: get_opt_u64("max_ig")?,
            },
            n_backup: usize::try_from(get_u64("n_backup")?).map_err(|e| e.to_string())?,
            staleness: get_opt_u64("staleness")?,
            skip,
            send_inquiry,
            staleness_weighting,
            compression,
        };
        Ok(WorkerSpec {
            w: usize::try_from(get_u64("w")?).map_err(|e| e.to_string())?,
            n: usize::try_from(get_u64("n")?).map_err(|e| e.to_string())?,
            max_iters: get_u64("max_iters")?,
            seed: get_u64("seed")?,
            edges,
            cfg,
            hyper: Hyper {
                lr: get_f32("lr")?,
                momentum: get_f32("momentum")?,
                weight_decay: get_f32("weight_decay")?,
                batch_size: usize::try_from(get_u64("batch_size")?).map_err(|e| e.to_string())?,
            },
            examples: usize::try_from(get_u64("examples")?).map_err(|e| e.to_string())?,
            data_seed: get_u64("data_seed")?,
            compute_sleep: Duration::from_micros(get_u64("sleep_us")?),
            stall_timeout: Duration::from_millis(get_u64("stall_ms")?),
            traced: get_u64("traced")? != 0,
            die_at: get_opt_u64("die_at")?,
        })
    }
}

/// Shared status of one peer link, written by its reader thread.
struct LinkState {
    peer: usize,
    /// The peer sent `Finished`: subsequent write errors on this link
    /// are benign (the simulator likewise keeps charging sends to
    /// finished workers — delivery is the receiver's problem).
    finished: AtomicBool,
    /// Why the link failed, if it did (EOF without `Finished`, corrupt
    /// frame, unexpected message).
    failed: Mutex<Option<String>>,
}

impl LinkState {
    fn new(peer: usize) -> Arc<Self> {
        Arc::new(LinkState {
            peer,
            finished: AtomicBool::new(false),
            failed: Mutex::new(None),
        })
    }

    fn fail(&self, why: String) {
        let mut slot = self.failed.lock().expect("link state lock");
        if slot.is_none() {
            *slot = Some(why);
        }
    }

    fn failure(&self) -> Option<String> {
        self.failed.lock().expect("link state lock").clone()
    }
}

/// An outgoing-update link `w -> o`: this worker writes update frames;
/// a reader thread mirrors `o`'s token grants into `tokens`.
struct OutLink {
    o: usize,
    stream: TcpStream,
    tokens: Option<Arc<SharedTokenQueue>>,
    state: Arc<LinkState>,
}

/// An incoming-update link `u -> w`: a reader thread feeds `u`'s
/// updates into the worker's own tagged queue; this worker writes token
/// grants back.
struct InLink {
    u: usize,
    stream: TcpStream,
    state: Arc<LinkState>,
}

/// The first failure across all links, if any — preferred over a bare
/// stall diagnosis, because a dead peer *causes* the stall.
fn link_failure(out_links: &[OutLink], in_links: &[InLink]) -> Option<String> {
    out_links
        .iter()
        .map(|l| &l.state)
        .chain(in_links.iter().map(|l| &l.state))
        .find_map(|s| {
            s.failure()
                .map(|why| format!("peer link to worker {}: {why}", s.peer))
        })
}

/// Entry point for `hop_worker --worker <coordinator> <id>`: runs the
/// worker half and returns the process exit code. Protocol failures are
/// reported to the coordinator in the summary frame (exit 0); only a
/// failure to reach the coordinator at all is a nonzero exit.
#[must_use]
pub fn worker_main(coordinator: &str, worker: usize) -> i32 {
    match worker_session(coordinator, worker) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("hop worker {worker}: {e}");
            1
        }
    }
}

fn worker_session(coordinator: &str, w: usize) -> Result<(), String> {
    let mut coord = TcpStream::connect(coordinator)
        .map_err(|e| format!("connect to coordinator {coordinator}: {e}"))?;
    coord.set_nodelay(true).ok();
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| format!("bind peer listener: {e}"))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("peer listener addr: {e}"))?
        .port();
    write_message(
        &mut coord,
        &Message::Hello {
            worker: w as u32,
            port,
        },
    )
    .map_err(|e| format!("send hello: {e}"))?;
    coord.set_read_timeout(Some(Duration::from_secs(60))).ok();
    let spec = match read_message(&mut coord).map_err(|e| format!("read spec: {e}"))? {
        Message::Spec { text } => WorkerSpec::parse(&text)?,
        other => return Err(format!("expected the spec, got {other:?}")),
    };
    if spec.w != w {
        return Err(format!(
            "spec addressed to worker {}, but this is worker {w}",
            spec.w
        ));
    }
    let peers = match read_message(&mut coord).map_err(|e| format!("read peer table: {e}"))? {
        Message::Peers { peers } => peers,
        other => return Err(format!("expected the peer table, got {other:?}")),
    };
    let summary = match worker_run(&spec, &listener, &peers) {
        Ok((final_params, losses, update_wire_bytes, events)) => Message::Summary {
            worker: w as u32,
            ok: true,
            error: String::new(),
            update_wire_bytes,
            final_params,
            losses,
            events_text: events_to_text(&events),
        },
        Err((error, events)) => Message::Summary {
            worker: w as u32,
            ok: false,
            error,
            update_wire_bytes: 0,
            final_params: Vec::new(),
            losses: Vec::new(),
            events_text: events_to_text(&events),
        },
    };
    write_message(&mut coord, &summary).map_err(|e| format!("send summary: {e}"))?;
    Ok(())
}

fn events_to_text(events: &[(u64, ProtocolEvent)]) -> String {
    let mut out = String::new();
    for (stamp, ev) in events {
        let _ = writeln!(out, "{stamp} {ev}");
    }
    out
}

/// Dials `addr` until it accepts or the deadline passes (peers bind
/// their listeners before the coordinator releases the peer table, so
/// refusals here are transient).
fn connect_peer(addr: (&str, u16), deadline: Instant) -> Result<TcpStream, String> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() > deadline {
                    return Err(format!("connect to peer {}:{}: {e}", addr.0, addr.1));
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

type RunOutput = (Vec<f32>, Vec<f32>, u64, Vec<(u64, ProtocolEvent)>);
type RunFailure = (String, Vec<(u64, ProtocolEvent)>);

/// The worker's whole run: wire up the peer links, then drive the same
/// iteration loop as the threaded runtime over the socket-fed queues.
#[allow(clippy::too_many_lines)]
fn worker_run(
    spec: &WorkerSpec,
    listener: &TcpListener,
    peers: &[(u32, u16)],
) -> Result<RunOutput, RunFailure> {
    let setup = |e: String| (e, Vec::new());
    let w = spec.w;
    let topo = Topology::from_edges(spec.n, &spec.edges);
    let externals_out: Vec<usize> = topo.external_out_neighbors(w).to_vec();
    let externals_in: Vec<usize> = topo.external_in_neighbors(w).to_vec();
    let max_ig = spec.cfg.max_ig();
    let deadline = Instant::now() + Duration::from_secs(30);

    // Reconstruct the workload and the shared initial parameters.
    let dataset = SyntheticWebspam::generate(spec.examples, spec.data_seed);
    let model = Svm::log_loss(dataset.feature_dim());
    let mut init_rng = hop_util::Xoshiro256::seed_from_u64(spec.seed);
    let init = model.init_params(&mut init_rng);
    let dim = init.len();

    // Dial every update receiver; their listener ports came from the
    // coordinator (which collected them during the hello round).
    let port_of: HashMap<u32, u16> = peers.iter().copied().collect();
    let mut out_links = Vec::with_capacity(externals_out.len());
    for &o in &externals_out {
        let port = *port_of
            .get(&(o as u32))
            .ok_or_else(|| setup(format!("peer table is missing worker {o}")))?;
        let mut stream = connect_peer(("127.0.0.1", port), deadline).map_err(setup)?;
        stream.set_nodelay(true).ok();
        stream
            .set_write_timeout(Some(spec.stall_timeout + Duration::from_secs(5)))
            .ok();
        write_message(
            &mut stream,
            &Message::Hello {
                worker: w as u32,
                port: 0,
            },
        )
        .map_err(|e| setup(format!("hello to peer {o}: {e}")))?;
        out_links.push(OutLink {
            o,
            stream,
            tokens: max_ig.map(|ig| Arc::new(SharedTokenQueue::new(ig))),
            state: LinkState::new(o),
        });
    }

    // Accept one connection per update sender and identify it.
    listener
        .set_nonblocking(true)
        .map_err(|e| setup(format!("poll peer listener: {e}")))?;
    let mut in_links: Vec<InLink> = Vec::with_capacity(externals_in.len());
    while in_links.len() < externals_in.len() {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| setup(format!("configure peer socket: {e}")))?;
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
                let mut stream = stream;
                let u = match read_message(&mut stream) {
                    Ok(Message::Hello { worker, .. }) => worker as usize,
                    Ok(other) => {
                        return Err(setup(format!("expected a peer hello, got {other:?}")))
                    }
                    Err(e) => return Err(setup(format!("bad peer hello: {e}"))),
                };
                if !externals_in.contains(&u) || in_links.iter().any(|l| l.u == u) {
                    return Err(setup(format!("unexpected peer hello from worker {u}")));
                }
                stream.set_read_timeout(None).ok();
                stream
                    .set_write_timeout(Some(spec.stall_timeout + Duration::from_secs(5)))
                    .ok();
                in_links.push(InLink {
                    u,
                    stream,
                    state: LinkState::new(u),
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    let have: Vec<usize> = in_links.iter().map(|l| l.u).collect();
                    return Err(setup(format!(
                        "timed out accepting peers (have {have:?}, want {externals_in:?})"
                    )));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(setup(format!("accept peer connection: {e}"))),
        }
    }

    // The worker's own tagged update queue (fed by its self-send and the
    // reader threads) and the Lamport clock shared with them.
    let queue: Arc<SharedTaggedQueue<ParamBlock>> = Arc::new(SharedTaggedQueue::new());
    let clock = Arc::new(AtomicU64::new(0));
    for link in &out_links {
        let stream = link
            .stream
            .try_clone()
            .map_err(|e| setup(format!("clone peer socket: {e}")))?;
        std::thread::spawn(token_reader(
            stream,
            link.o,
            link.tokens.clone(),
            Arc::clone(&clock),
            Arc::clone(&link.state),
        ));
    }
    for link in &in_links {
        let stream = link
            .stream
            .try_clone()
            .map_err(|e| setup(format!("clone peer socket: {e}")))?;
        std::thread::spawn(update_reader(
            stream,
            link.u,
            dim,
            spec.cfg.compression,
            init.clone(),
            Arc::clone(&queue),
            Arc::clone(&clock),
            Arc::clone(&link.state),
        ));
    }

    // --- the iteration loop, mirroring crate::threaded::worker_loop ---
    let cfg = spec.cfg.clone();
    let init_params = ParamBlock::from_vec(init);
    let mut params = init_params.snapshot();
    let mut opt = Sgd::new(
        spec.hyper.lr,
        spec.hyper.momentum,
        spec.hyper.weight_decay,
        dim,
    );
    let mut sampler = BatchSampler::for_worker(dataset.len(), spec.hyper.batch_size, spec.seed, w);
    let mut grad = vec![0.0f32; dim];
    let mut delta = vec![0.0f32; dim];
    let mut scratch = GradScratch::new();
    let mut losses = Vec::with_capacity(spec.max_iters as usize);
    let in_deg = topo.in_degree(w);
    let in_neighbors: Vec<usize> = topo.in_neighbors(w).to_vec();
    let mut plane = CompressionPlane::new(cfg.compression);
    plane.add_param_streams(1, init_params.as_slice());
    let mut ctx = WorkerCtx {
        w,
        cfg: &cfg,
        timeout: spec.stall_timeout,
        pool: BufferPool::new(),
        newest_from: HashMap::new(),
        last_consumed: None,
    };
    let mut conf = spec.traced.then(|| SeqSink::new(&clock));
    let mut wire_bytes: u64 = 0;
    let mut dense_scratch = CompressedBlock::Dense { values: Vec::new() };
    let mut frame = Vec::new();
    let max_iters = spec.max_iters;

    let loop_result: Result<(), String> = (|| {
        let mut k: u64 = 0;
        let mut entry_tokens: u64 = 0;
        while k < max_iters {
            if spec.die_at == Some(k) {
                // Fault hook: vanish without a Finished frame or a
                // summary — exactly what a crashed process looks like.
                std::process::exit(101);
            }
            if let Some(why) = link_failure(&out_links, &in_links) {
                return Err(why);
            }
            let step = choreography::begin_step(&mut conf, w, k);
            if max_ig.is_some() && entry_tokens > 0 {
                for link in &mut in_links {
                    choreography::token_grant(&mut conf, w, link.u, entry_tokens);
                    send_tokens(link, entry_tokens, &clock)?;
                }
            }
            // Send (parallel order): the self-send shares the exact
            // block; external receivers get one encoded frame fanned out
            // to every out-link, counted per *attempted* send.
            step.send(&mut conf, w);
            queue.enqueue(params.snapshot(), Tag { iter: k, w_id: w });
            for link in &out_links {
                step.send(&mut conf, link.o);
            }
            if !out_links.is_empty() {
                let block: &CompressedBlock = if plane.is_active() {
                    plane
                        .encode_params_block(0, params.as_slice(), &mut ctx.pool)
                        .0
                } else {
                    if let CompressedBlock::Dense { values } = &mut dense_scratch {
                        values.clear();
                        values.extend_from_slice(params.as_slice());
                    }
                    &dense_scratch
                };
                let block_bytes = hop_wire::encode_update_frame(
                    Tag { iter: k, w_id: w },
                    clock.load(Ordering::SeqCst),
                    block,
                    &mut frame,
                );
                for link in &mut out_links {
                    wire_bytes += block_bytes;
                    write_frame(&mut link.stream, &frame, &link.state, "an update")?;
                }
            }
            // Compute.
            let step = step.begin_compute(&mut conf);
            if !spec.compute_sleep.is_zero() {
                std::thread::sleep(spec.compute_sleep);
            }
            let batch = sampler.next_batch(&dataset);
            let loss = model.loss_grad_with(params.as_slice(), &batch, &mut grad, &mut scratch);
            let mut step = step.end_compute(&mut conf);
            losses.push(loss);
            opt.delta(params.as_slice(), &grad, &mut delta);
            // Recv + Reduce, exactly as in the threaded runtime.
            let step = if let Some(s) = cfg.staleness {
                stale_recv(
                    &mut ctx,
                    &queue,
                    &in_neighbors,
                    k,
                    s,
                    "a satisfactory update",
                    &mut conf,
                )
                .map_err(|e| stall_or_peer(&out_links, &in_links, &e))?;
                let collected = ctx.collect_newest(&in_neighbors, &mut step, &mut conf);
                let step = step.reduce(&mut conf);
                let views: Vec<(u64, &[f32])> = collected
                    .iter()
                    .map(|(iter, p)| (*iter, p.as_slice()))
                    .collect();
                semantics::reduce_staleness_with(
                    cfg.staleness_weighting,
                    &views,
                    k,
                    s,
                    params.overwrite_mut(&mut ctx.pool),
                );
                step
            } else {
                let quota = semantics::backup_quota(in_deg, cfg.n_backup);
                let mut entries = queue
                    .dequeue(quota, TagFilter::iter(k), spec.stall_timeout)
                    .map_err(|_| {
                        stall_or_peer(&out_links, &in_links, &ctx.stall(k, "updates", &queue))
                    })?;
                entries.extend(queue.dequeue_up_to(in_deg - quota, TagFilter::iter(k)));
                for entry in &entries {
                    ctx.last_consumed = Some(entry.tag);
                    step.consume(&mut conf, entry.tag.w_id, entry.tag.iter);
                }
                let step = step.reduce(&mut conf);
                let views: Vec<&[f32]> = entries.iter().map(|e| e.value.as_slice()).collect();
                semantics::reduce_mean(&views, params.overwrite_mut(&mut ctx.pool));
                drop(views);
                for entry in entries {
                    ctx.pool.reclaim(entry.value);
                }
                step
            };
            semantics::apply_parallel(params.make_mut(), &delta);
            // Advance: the §5 skip decision over the token mirrors, else
            // one token from every out-going neighbor's mirror.
            let mut next = k + 1;
            entry_tokens = 1;
            if let (Some(ig), false) = (max_ig, out_links.is_empty()) {
                let decision = cfg.skip.as_ref().and_then(|skip| {
                    let counts: Vec<u64> =
                        out_links.iter().map(|l| mirror(l).available()).collect();
                    semantics::jump_decision(&counts, ig, skip)
                        .map(|j| j.min(max_iters - k))
                        .filter(|&j| j >= 2)
                        .map(|jump| (jump, counts))
                });
                if let Some((jump, counts)) = decision {
                    let renew = step.jump(&mut conf, k + jump, &counts);
                    for link in &out_links {
                        // Only this loop removes from the mirror, so the
                        // observed count cannot shrink under us.
                        assert!(
                            mirror(link).try_remove(jump),
                            "observed tokens vanished from the TokenQ({} -> {w}) mirror",
                            link.o
                        );
                        renew.take_tokens(&mut conf, link.o);
                    }
                    for link in &mut in_links {
                        choreography::token_grant(&mut conf, w, link.u, jump);
                        send_tokens(link, jump, &clock)?;
                    }
                    entry_tokens = 0;
                    next = k + jump;
                    jump_renew(
                        &mut ctx,
                        &queue,
                        &externals_in,
                        &mut params,
                        &mut opt,
                        k,
                        renew,
                        &mut conf,
                    )
                    .map_err(|e| stall_or_peer(&out_links, &in_links, &e))?;
                } else {
                    for link in &out_links {
                        mirror(link).remove(1, spec.stall_timeout).map_err(|_| {
                            let available: Vec<(usize, u64)> = out_links
                                .iter()
                                .map(|l| (l.o, mirror(l).available()))
                                .collect();
                            stall_or_peer(&out_links, &in_links, &ctx.stall_tokens(k, available))
                        })?;
                        step.take_token(&mut conf, link.o);
                    }
                    step.complete();
                }
            } else {
                step.complete();
            }
            k = next;
        }
        choreography::advance_only(&mut conf, w, max_iters);
        // Final courtesy: flood tokens so lagging neighbors can finish
        // without waiting on this (now finished) worker, then say
        // goodbye on every link. Both are best-effort — a peer that
        // already left cannot need them.
        if max_ig.is_some() {
            for link in &mut in_links {
                choreography::token_grant(&mut conf, w, link.u, max_iters);
                let c = clock.load(Ordering::SeqCst);
                let _ = write_message(
                    &mut link.stream,
                    &Message::Token {
                        count: max_iters,
                        clock: c,
                    },
                );
            }
        }
        for link in &mut out_links {
            let _ = write_message(&mut link.stream, &Message::Finished { worker: w as u32 });
        }
        for link in &mut in_links {
            let _ = write_message(&mut link.stream, &Message::Finished { worker: w as u32 });
        }
        Ok(())
    })();

    let events = conf.map(SeqSink::into_events).unwrap_or_default();
    match loop_result {
        Ok(()) => Ok((params.to_vec(), losses, wire_bytes, events)),
        Err(why) => Err((why, events)),
    }
}

/// The out-link's token mirror (present whenever the config has token
/// queues; the advance paths are only reached under `max_ig`).
fn mirror(link: &OutLink) -> &SharedTokenQueue {
    link.tokens
        .as_ref()
        .expect("token mirror exists when max_ig is set")
}

/// Prefers a peer-loss diagnosis over the bare stall `e` — a dead peer
/// is the cause; the stall is the symptom.
fn stall_or_peer(
    out_links: &[OutLink],
    in_links: &[InLink],
    e: &crate::threaded::ThreadedError,
) -> String {
    link_failure(out_links, in_links).unwrap_or_else(|| e.to_string())
}

/// Writes one token-grant frame on an in-link (grants flow against the
/// update direction). Errors to peers that already said `Finished` are
/// benign.
fn send_tokens(link: &mut InLink, count: u64, clock: &AtomicU64) -> Result<(), String> {
    let c = clock.load(Ordering::SeqCst);
    match write_message(&mut link.stream, &Message::Token { count, clock: c }) {
        Ok(_) => Ok(()),
        Err(_) if link.state.finished.load(Ordering::SeqCst) => Ok(()),
        Err(e) => Err(format!("token grant to worker {}: {e}", link.u)),
    }
}

/// Writes a pre-encoded frame on an out-link, tolerating only peers
/// that already finished.
fn write_frame(
    stream: &mut TcpStream,
    frame: &[u8],
    state: &Arc<LinkState>,
    what: &str,
) -> Result<(), String> {
    use std::io::Write;
    match stream.write_all(frame).and_then(|()| stream.flush()) {
        Ok(()) => Ok(()),
        Err(_) if state.finished.load(Ordering::SeqCst) => Ok(()),
        Err(e) => Err(format!("writing {what} to worker {}: {e}", state.peer)),
    }
}

/// Reader thread for an in-link: decodes update frames, max-merges the
/// Lamport clock, reconstructs compressed payloads through a per-sender
/// reference stream, and enqueues into the worker's own tagged queue.
/// Fails closed on any malformed, mistyped, or mis-sized frame.
#[allow(clippy::too_many_arguments)]
fn update_reader(
    mut stream: TcpStream,
    u: usize,
    dim: usize,
    compression: CompressionConfig,
    init: Vec<f32>,
    queue: Arc<SharedTaggedQueue<ParamBlock>>,
    clock: Arc<AtomicU64>,
    state: Arc<LinkState>,
) -> impl FnOnce() + Send + 'static {
    move || {
        let mut plane = CompressionPlane::new(compression);
        plane.add_param_streams(1, &init);
        loop {
            match read_message(&mut stream) {
                Ok(Message::Update {
                    tag,
                    clock: c,
                    block,
                }) => {
                    if tag.w_id != u {
                        state.fail(format!(
                            "update tagged from worker {}, expected {u}",
                            tag.w_id
                        ));
                        return;
                    }
                    let values = if plane.is_active() {
                        let kind_ok = matches!(
                            (compression, &block),
                            (
                                CompressionConfig::TopK { .. },
                                CompressedBlock::Sparse { .. }
                            ) | (
                                CompressionConfig::Int8Uniform,
                                CompressedBlock::Quantized { .. }
                            )
                        );
                        if !kind_ok || block.decoded_len() != dim {
                            state.fail(format!(
                                "update block kind/size does not match the configured codec \
                                 (got {block:?} for dim {dim})"
                            ));
                            return;
                        }
                        plane.apply_params_block(0, &block).to_vec()
                    } else {
                        match block {
                            CompressedBlock::Dense { values } if values.len() == dim => values,
                            other => {
                                state.fail(format!(
                                    "identity stream expected a dense block of {dim} values, \
                                     got {other:?}"
                                ));
                                return;
                            }
                        }
                    };
                    clock.fetch_max(c, Ordering::SeqCst);
                    queue.enqueue(ParamBlock::from_vec(values), tag);
                }
                Ok(Message::Finished { .. }) => {
                    state.finished.store(true, Ordering::SeqCst);
                    return;
                }
                Ok(other) => {
                    state.fail(format!("unexpected {other:?} on an update link"));
                    return;
                }
                Err(e) => {
                    if !state.finished.load(Ordering::SeqCst) {
                        state.fail(format!("worker {u} died mid-stream: {e}"));
                    }
                    return;
                }
            }
        }
    }
}

/// Reader thread for an out-link: mirrors the peer's token grants into
/// the local [`SharedTokenQueue`] after max-merging the Lamport clock.
fn token_reader(
    mut stream: TcpStream,
    o: usize,
    tokens: Option<Arc<SharedTokenQueue>>,
    clock: Arc<AtomicU64>,
    state: Arc<LinkState>,
) -> impl FnOnce() + Send + 'static {
    move || loop {
        match read_message(&mut stream) {
            Ok(Message::Token { count, clock: c }) => {
                clock.fetch_max(c, Ordering::SeqCst);
                match &tokens {
                    Some(q) => q.insert(count),
                    None => {
                        state.fail(format!(
                            "worker {o} granted tokens but the config has no token queues"
                        ));
                        return;
                    }
                }
            }
            Ok(Message::Finished { .. }) => {
                state.finished.store(true, Ordering::SeqCst);
                return;
            }
            Ok(other) => {
                state.fail(format!("unexpected {other:?} on a token link"));
                return;
            }
            Err(e) => {
                if !state.finished.load(Ordering::SeqCst) {
                    state.fail(format!("worker {o} died mid-stream: {e}"));
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment() -> ProcessExperiment {
        let mut exp = ProcessExperiment::new(
            HopConfig::backup(1, 4).with_skip(SkipConfig {
                max_jump: 6,
                trigger_behind: 2,
            }),
            Topology::ring(5),
            12,
            PathBuf::from("hop_worker"),
        );
        exp.hyper = Hyper {
            lr: 0.07,
            momentum: 0.9,
            weight_decay: 1e-4,
            batch_size: 24,
        };
        exp.slow_worker = Some((2, 15));
        exp.compute_sleep = Duration::from_micros(250);
        exp.die_at = Some((3, 7));
        exp
    }

    #[test]
    fn spec_text_round_trips_for_every_mode() {
        let base = experiment();
        let configs = [
            HopConfig::standard(),
            HopConfig::standard_with_tokens(3),
            HopConfig::backup(1, 4),
            HopConfig::staleness(2, 4),
            HopConfig::backup(1, 4).with_skip(SkipConfig {
                max_jump: 6,
                trigger_behind: 2,
            }),
            HopConfig::staleness(2, 4)
                .with_staleness_weighting(StalenessWeighting::Exponential { decay: 0.5 }),
            HopConfig::standard().with_compression(CompressionConfig::Int8Uniform),
            HopConfig::standard().with_compression(CompressionConfig::TopK { ratio: 0.25 }),
        ];
        for cfg in configs {
            let mut exp = base.clone();
            exp.config = cfg.clone();
            for w in [0, 2, 3] {
                let spec = WorkerSpec::parse(&exp.spec_text(w, true))
                    .unwrap_or_else(|e| panic!("{cfg:?}: {e}"));
                assert_eq!(spec.w, w);
                assert_eq!(spec.n, 5);
                assert_eq!(spec.cfg, cfg, "config round trip for worker {w}");
                assert_eq!(spec.hyper, exp.hyper);
                assert_eq!(spec.max_iters, 12);
                assert_eq!(spec.seed, exp.seed);
                assert_eq!(spec.examples, exp.examples);
                assert_eq!(spec.data_seed, exp.data_seed);
                assert_eq!(spec.stall_timeout, exp.stall_timeout);
                assert!(spec.traced);
                // The straggler factor and the die hook apply only to
                // their own worker.
                let expected_sleep = if w == 2 {
                    exp.compute_sleep * 15
                } else {
                    exp.compute_sleep
                };
                assert_eq!(spec.compute_sleep, expected_sleep, "worker {w}");
                assert_eq!(spec.die_at, (w == 3).then_some(7), "worker {w}");
                let topo = Topology::from_edges(spec.n, &spec.edges);
                assert_eq!(topo.external_edges(), exp.topology.external_edges());
            }
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for (broken, needle) in [
            ("w=0", "missing"),
            ("w=0\nnot a line", "key=value"),
            (&experiment().spec_text(0, false).replace('>', "&"), "edge"),
            (
                &experiment()
                    .spec_text(0, false)
                    .replace("compression=identity", "compression=zip"),
                "compression",
            ),
        ] {
            let err = WorkerSpec::parse(broken).expect_err("must reject");
            assert!(err.contains(needle), "`{err}` should mention `{needle}`");
        }
    }

    #[test]
    fn process_spec_is_grammar_valid() {
        choreography::validate_spec(&CHOREOGRAPHY).expect("process spec validates");
    }

    #[test]
    fn stamped_event_merge_orders_by_lamport_stamp() {
        let mk = |events: &str| {
            Some(Summary {
                ok: true,
                error: String::new(),
                update_wire_bytes: 0,
                final_params: Vec::new(),
                losses: Vec::new(),
                events_text: events.to_string(),
            })
        };
        let summaries = vec![
            mk("0 advance w=0 iter=0\n5 send from=0 to=1 iter=0\n"),
            mk("7 consume w=1 from=0 iter=0 at=0\n0 advance w=1 iter=0\n"),
        ];
        let text = merge_stamped_events(&summaries).expect("merges");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines,
            [
                "advance w=0 iter=0",
                "advance w=1 iter=0",
                "send from=0 to=1 iter=0",
                "consume w=1 from=0 iter=0 at=0",
            ]
        );
        let trace = ProtocolTrace::from_text(&text).expect("parses");
        assert_eq!(trace.len(), 4);
        // A worker that never reported (lost peer) just contributes
        // nothing; an unstamped line is a protocol error.
        let with_hole = vec![mk("3 advance w=0 iter=1\n"), None];
        assert_eq!(
            merge_stamped_events(&with_hole).unwrap(),
            "advance w=0 iter=1\n"
        );
        let bad = vec![mk("advance w=0 iter=0\n")];
        assert!(matches!(
            merge_stamped_events(&bad),
            Err(ProcessError::Protocol(_))
        ));
    }
}
