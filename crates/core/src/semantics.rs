//! Pure protocol semantics shared by the simulated and threaded runtimes.
//!
//! Everything numerical about the protocols — which updates a `Recv`
//! consumes, how a `Reduce` weighs them, when a straggler jumps — lives
//! here as pure functions so both runtimes (discrete-event and real
//! threads) provably run the same algorithm, and the functions can be
//! unit-tested in isolation.

use crate::config::SkipConfig;
use hop_tensor::ops;

/// Number of updates a `Recv` must collect with backup workers (Fig. 8):
/// `|Nin(i)| - N_buw(i)`.
///
/// # Panics
///
/// Panics if `n_backup >= in_degree` (validated earlier by
/// [`crate::config::HopConfig::validate`]).
pub fn backup_quota(in_degree: usize, n_backup: usize) -> usize {
    assert!(n_backup < in_degree, "N_buw must be < |Nin|");
    in_degree - n_backup
}

/// Uniform Reduce (Fig. 4 line 15): elementwise mean of the received
/// parameter vectors.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths mismatch.
pub fn reduce_mean(updates: &[&[f32]], out: &mut [f32]) {
    ops::mean_into(updates, out);
}

/// Whether an update of iteration `update_iter` is *satisfactory* for a
/// worker in iteration `k` under staleness bound `s` (§4.4): it must be at
/// most `s` iterations old, i.e. `update_iter >= k - s`.
pub fn staleness_satisfied(update_iter: u64, k: u64, s: u64) -> bool {
    update_iter + s >= k
}

/// How stale updates are weighted in the bounded-staleness Reduce.
///
/// The paper settles on the linear rule of Eq. (2) but notes it "may very
/// well be non-optimal" and leaves alternatives to future work (§4.4);
/// the extra schemes here support that ablation (see the
/// `ablation_staleness_weighting` bench).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StalenessWeighting {
    /// Eq. (2): weight `Iter(u) - (k - s) + 1`, linear in freshness.
    #[default]
    Linear,
    /// Plain averaging: every satisfactory update weighs 1.
    Uniform,
    /// Exponential decay: weight `decay^(k - Iter(u))` with
    /// `decay` in `(0, 1]`; sharper-than-linear preference for fresh
    /// updates.
    Exponential {
        /// Per-iteration decay factor.
        decay: f32,
    },
}

/// The Eq. (2) weight of an update of iteration `update_iter` for a worker
/// in iteration `k` with staleness bound `s`:
/// `Iter(u) - (k - s) + 1`, clamped to at least 1 so that a worker's own
/// older-than-bound parameters (possible right after a jump, §5) still
/// carry minimal weight instead of a non-positive one.
pub fn staleness_weight(update_iter: u64, k: u64, s: u64) -> f32 {
    let w = update_iter as i64 - (k as i64 - s as i64) + 1;
    w.max(1) as f32
}

/// The weight of an update under the chosen [`StalenessWeighting`].
pub fn staleness_weight_with(scheme: StalenessWeighting, update_iter: u64, k: u64, s: u64) -> f32 {
    match scheme {
        StalenessWeighting::Linear => staleness_weight(update_iter, k, s),
        StalenessWeighting::Uniform => 1.0,
        StalenessWeighting::Exponential { decay } => {
            assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
            let age = k.saturating_sub(update_iter) as i32;
            decay.powi(age).max(f32::MIN_POSITIVE)
        }
    }
}

/// Bounded-staleness Reduce (Fig. 9 lines 18–27, Eq. 2): the
/// iteration-weighted average of the newest satisfactory updates.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths mismatch.
pub fn reduce_staleness(updates: &[(u64, &[f32])], k: u64, s: u64, out: &mut [f32]) {
    reduce_staleness_with(StalenessWeighting::Linear, updates, k, s, out);
}

/// [`reduce_staleness`] under an explicit weighting scheme.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths mismatch.
pub fn reduce_staleness_with(
    scheme: StalenessWeighting,
    updates: &[(u64, &[f32])],
    k: u64,
    s: u64,
    out: &mut [f32],
) {
    assert!(!updates.is_empty(), "reduce of zero updates");
    let weights: Vec<f32> = updates
        .iter()
        .map(|&(iter, _)| staleness_weight_with(scheme, iter, k, s))
        .collect();
    let slices: Vec<&[f32]> = updates.iter().map(|&(_, x)| x).collect();
    ops::weighted_mean_into(&slices, &weights, out);
}

/// The skip decision of §5, made while acquiring tokens at the end of an
/// iteration. `token_counts` holds the number of tokens currently visible
/// in `TokenQ(o -> me)` for each out-going neighbor `o`; each count equals
/// `Iter(o) - Iter(me) + max_ig`, so `min(counts) - max_ig` is exactly how
/// far this worker trails its slowest out-going neighbor.
///
/// Returns the *total* number of iterations to advance (`>= 2`) when a
/// jump should happen, or `None` for a normal single-step advance. The
/// jump is capped by `max_jump` (user setting) and by
/// `min(counts) - max_ig` (the "intuitive upper-bound" that keeps the
/// straggler from overtaking its neighbors).
pub fn jump_decision(token_counts: &[u64], max_ig: u64, skip: &SkipConfig) -> Option<u64> {
    let min_tokens = token_counts.iter().copied().min()?;
    let behind = min_tokens.saturating_sub(max_ig);
    if behind < skip.trigger_behind {
        return None;
    }
    let jump = behind.min(skip.max_jump);
    (jump >= 2).then_some(jump)
}

/// The parallel-order Apply (Fig. 2b / Fig. 4 line 17): the new parameters
/// are the reduced average plus the locally computed update `delta`
/// (`delta = -lr * v` from the optimizer, computed on the pre-reduce
/// parameters).
///
/// # Panics
///
/// Panics on length mismatch.
pub fn apply_parallel(reduced: &mut [f32], delta: &[f32]) {
    ops::axpy(1.0, delta, reduced);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_subtracts_backups() {
        assert_eq!(backup_quota(5, 0), 5);
        assert_eq!(backup_quota(5, 2), 3);
    }

    #[test]
    #[should_panic(expected = "N_buw")]
    fn quota_validates() {
        backup_quota(3, 3);
    }

    #[test]
    fn mean_reduce() {
        let a = [2.0, 0.0];
        let b = [0.0, 4.0];
        let mut out = [9.0, 9.0];
        reduce_mean(&[&a, &b], &mut out);
        assert_eq!(out, [1.0, 2.0]);
    }

    #[test]
    fn satisfaction_boundary() {
        // k = 10, s = 3: updates of iterations 7..=10 are satisfactory.
        assert!(staleness_satisfied(7, 10, 3));
        assert!(!staleness_satisfied(6, 10, 3));
        assert!(staleness_satisfied(10, 10, 3));
        // Early iterations: k <= s means everything satisfies.
        assert!(staleness_satisfied(0, 3, 3));
    }

    #[test]
    fn eq2_weights() {
        // k = 10, s = 3: weight(7) = 1, weight(10) = 4.
        assert_eq!(staleness_weight(7, 10, 3), 1.0);
        assert_eq!(staleness_weight(10, 10, 3), 4.0);
        // Clamp below 1 (an over-stale own update after a jump).
        assert_eq!(staleness_weight(2, 10, 3), 1.0);
    }

    #[test]
    fn weighting_schemes_order_freshness_sensitivity() {
        // k = 10, s = 4; updates of iters 10 (fresh) and 6 (stale).
        let fresh_bias = |scheme| {
            staleness_weight_with(scheme, 10, 10, 4) / staleness_weight_with(scheme, 6, 10, 4)
        };
        assert_eq!(fresh_bias(StalenessWeighting::Uniform), 1.0);
        assert_eq!(fresh_bias(StalenessWeighting::Linear), 5.0);
        let exp = fresh_bias(StalenessWeighting::Exponential { decay: 0.5 });
        assert!((exp - 16.0).abs() < 1e-4, "exp ratio {exp}");
    }

    #[test]
    fn reduce_with_uniform_matches_mean() {
        let a = [2.0f32, 0.0];
        let b = [0.0f32, 4.0];
        let mut weighted = [0.0f32; 2];
        reduce_staleness_with(
            StalenessWeighting::Uniform,
            &[(9, &a), (5, &b)],
            9,
            4,
            &mut weighted,
        );
        assert_eq!(weighted, [1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn exponential_validates_decay() {
        staleness_weight_with(StalenessWeighting::Exponential { decay: 1.5 }, 0, 0, 0);
    }

    #[test]
    fn staleness_reduce_matches_eq2_by_hand() {
        // k = 5, s = 2; updates of iters 5 and 3 → weights 3 and 1.
        let newest = [4.0f32, 0.0];
        let older = [0.0f32, 4.0];
        let mut out = [0.0f32; 2];
        reduce_staleness(&[(5, &newest), (3, &older)], 5, 2, &mut out);
        assert_eq!(out, [3.0, 1.0]);
    }

    #[test]
    fn jump_needs_trigger() {
        let skip = SkipConfig {
            max_jump: 10,
            trigger_behind: 3,
        };
        // min tokens 7, max_ig 5 → behind 2 < trigger 3: no jump.
        assert_eq!(jump_decision(&[7, 9], 5, &skip), None);
        // behind 4 ≥ 3 → jump 4.
        assert_eq!(jump_decision(&[9, 11], 5, &skip), Some(4));
    }

    #[test]
    fn jump_caps_at_max_jump() {
        let skip = SkipConfig {
            max_jump: 2,
            trigger_behind: 2,
        };
        assert_eq!(jump_decision(&[15, 12], 5, &skip), Some(2));
    }

    #[test]
    fn jump_of_one_is_normal_advance() {
        let skip = SkipConfig {
            max_jump: 10,
            trigger_behind: 1,
        };
        // behind = 1 → a jump of 1 is pointless; decline.
        assert_eq!(jump_decision(&[6], 5, &skip), None);
    }

    #[test]
    fn fig10_examples() {
        // Fig. 10(a): max_ig 5, tokens(B->A) = tokens(C->A) = 9 → A jumps 4
        // (iteration 5 → 9).
        let skip = SkipConfig {
            max_jump: 10,
            trigger_behind: 2,
        };
        assert_eq!(jump_decision(&[9, 9], 5, &skip), Some(4));
        // Fig. 10(b): tokens = 10 → A jumps 5 (iteration 5 → 10).
        assert_eq!(jump_decision(&[10, 10], 5, &skip), Some(5));
    }

    #[test]
    fn empty_token_list_never_jumps() {
        // A worker with no external out-neighbors observes no token
        // queues; the decision must decline rather than panic on min().
        let skip = SkipConfig::with_max_jump(5);
        assert_eq!(jump_decision(&[], 5, &skip), None);
        let eager = SkipConfig {
            max_jump: 10,
            trigger_behind: 0,
        };
        assert_eq!(jump_decision(&[], 5, &eager), None);
    }

    #[test]
    fn zero_trigger_still_requires_a_real_jump() {
        // trigger_behind = 0: the trigger never blocks the jump, but a
        // computed jump of 0 or 1 is still a normal advance.
        let skip = SkipConfig {
            max_jump: 10,
            trigger_behind: 0,
        };
        assert_eq!(jump_decision(&[5], 5, &skip), None, "behind 0");
        assert_eq!(jump_decision(&[6], 5, &skip), None, "behind 1");
        assert_eq!(jump_decision(&[7], 5, &skip), Some(2), "behind 2");
    }

    #[test]
    fn max_jump_below_two_never_jumps() {
        // max_jump < 2 caps every jump below the minimum useful distance;
        // the decision degenerates to "never jump" no matter how far
        // behind. (Config validation rejects such configs up front; the
        // pure rule must still be total.)
        let skip = SkipConfig {
            max_jump: 1,
            trigger_behind: 1,
        };
        assert_eq!(jump_decision(&[50], 5, &skip), None);
        let skip = SkipConfig {
            max_jump: 0,
            trigger_behind: 0,
        };
        assert_eq!(jump_decision(&[50], 5, &skip), None);
    }

    #[test]
    fn tokens_below_max_ig_never_jump() {
        // Saturating subtraction: fewer tokens than max_ig means the
        // worker is *ahead*, not behind.
        let skip = SkipConfig {
            max_jump: 10,
            trigger_behind: 0,
        };
        assert_eq!(jump_decision(&[2, 9], 5, &skip), None);
    }

    #[test]
    fn weighting_schemes_edge_cases() {
        // Fresh update (age 0): every scheme gives weight >= 1... exactly
        // s + 1 for linear, 1 for uniform and exponential.
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Linear, 10, 10, 3),
            4.0
        );
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Uniform, 10, 10, 3),
            1.0
        );
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Exponential { decay: 0.5 }, 10, 10, 3),
            1.0
        );
        // decay = 1.0 is legal and degenerates to uniform.
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Exponential { decay: 1.0 }, 2, 10, 3),
            1.0
        );
        // An update from the "future" (possible right after a jump, when
        // neighbors run ahead): age saturates at 0 instead of underflowing.
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Exponential { decay: 0.5 }, 12, 10, 3),
            1.0
        );
        assert_eq!(
            staleness_weight_with(StalenessWeighting::Linear, 12, 10, 3),
            6.0
        );
        // Extreme staleness: the exponential weight floors at
        // MIN_POSITIVE instead of flushing to zero (a zero total weight
        // would divide by zero in the reduce).
        let w = staleness_weight_with(StalenessWeighting::Exponential { decay: 0.1 }, 0, 200, 3);
        assert!(w > 0.0, "weight must stay positive, got {w}");
    }

    #[test]
    fn parallel_apply_adds_delta() {
        let mut reduced = [1.0f32, 2.0];
        apply_parallel(&mut reduced, &[0.5, -0.5]);
        assert_eq!(reduced, [1.5, 1.5]);
    }
}
