//! Simulated parameter-server baselines (§2.1): BSP, SSP and fully
//! asynchronous coordination.
//!
//! The server lives on its own machine (as in §7.3.2, which adds one
//! machine for the PS). All worker↔server traffic shares the server's
//! NICs, reproducing the communication hotspot that decentralized training
//! eliminates.

use crate::config::{PsConfig, PsMode};
use crate::report::TrainingReport;
use crate::trainer::Hyper;
use hop_data::{BatchSampler, Dataset, InMemoryDataset};
use hop_model::{Model, Sgd};
use hop_sim::{ClusterSpec, EventQueue, Network, SlowdownModel, Trace};
use std::sync::Arc;

use super::recorder::{EvalConfig, Recorder};

/// Runs a parameter-server experiment. `cluster` describes the workers
/// only; the server node is appended on its own machine.
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &PsConfig,
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
) -> TrainingReport {
    match cfg.mode {
        PsMode::Bsp => run_bsp(cluster, slowdown, model, dataset, hyper, max_iters, seed, eval),
        PsMode::Ssp(s) => run_async(
            Some(s),
            cluster,
            slowdown,
            model,
            dataset,
            hyper,
            max_iters,
            seed,
            eval,
        ),
        PsMode::Async => run_async(
            None,
            cluster,
            slowdown,
            model,
            dataset,
            hyper,
            max_iters,
            seed,
            eval,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_bsp(
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
) -> TrainingReport {
    let n = cluster.len();
    let mut spec = cluster.clone();
    let server = spec.push_server_node(1e-3);
    let mut net = Network::new(spec);
    let mut init_rng = hop_util::Xoshiro256::seed_from_u64(seed);
    let mut params = model.init_params(&mut init_rng);
    let param_bytes = params.len() as u64 * 4;
    let mut opt = Sgd::new(hyper.lr, hyper.momentum, hyper.weight_decay, params.len());
    let mut samplers: Vec<BatchSampler> = (0..n)
        .map(|w| BatchSampler::for_worker(dataset.len(), hyper.batch_size, seed, w))
        .collect();
    let mut recorder = Recorder::new(n, eval, dataset);
    let mut trace = Trace::new(n);
    let mut grad = vec![0.0f32; params.len()];
    let mut mean_grad = vec![0.0f32; params.len()];
    let mut t = 0.0f64;
    for k in 0..max_iters {
        // Broadcast (serialized through the server's egress NIC).
        let arrivals: Vec<f64> = (0..n)
            .map(|w| net.transfer(t, server, w, param_bytes))
            .collect();
        for (w, &a) in arrivals.iter().enumerate() {
            trace.record(w, k, a);
        }
        // Compute + push gradients; server ingress serializes the pushes.
        mean_grad.fill(0.0);
        let mut round_end = t;
        for w in 0..n {
            let done = arrivals[w] + cluster.base_compute(w) * slowdown.factor(seed, w, k);
            let batch = samplers[w].next_batch(dataset);
            let loss = model.loss_grad(&params, &batch, &mut grad);
            recorder.train_loss(w, k, done, loss);
            hop_tensor::ops::axpy(1.0 / n as f32, &grad, &mut mean_grad);
            let grad_arrival = net.transfer(done, w, server, param_bytes);
            round_end = round_end.max(grad_arrival);
        }
        t = round_end + 1e-3; // server apply cost
        opt.step(&mut params, &mean_grad);
        if recorder.eval_due(k + 1) {
            let view: Vec<&[f32]> = vec![&params];
            recorder.evaluate(model, dataset, &view, t, k + 1);
        }
    }
    TrainingReport {
        trace,
        train_loss_time: recorder.train_time,
        train_loss_steps: recorder.train_steps,
        eval_time: recorder.eval_time,
        eval_steps: recorder.eval_steps,
        final_params: vec![params],
        wall_time: t,
        stale_discarded: 0,
        bytes_sent: net.bytes_sent(),
        deadlocked: false,
    }
}

enum Ev {
    /// Fresh parameters reached the worker; it starts computing.
    ParamsArrive { w: usize, params: Arc<Vec<f32>> },
    /// A worker's gradient reached the server.
    GradArrive {
        w: usize,
        grad: Vec<f32>,
        compute_done: f64,
        loss: f32,
    },
}

#[allow(clippy::too_many_arguments)]
fn run_async(
    staleness: Option<u64>,
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
) -> TrainingReport {
    let n = cluster.len();
    let mut spec = cluster.clone();
    let server = spec.push_server_node(1e-3);
    let mut net = Network::new(spec);
    let mut init_rng = hop_util::Xoshiro256::seed_from_u64(seed);
    let mut params = model.init_params(&mut init_rng);
    let param_bytes = params.len() as u64 * 4;
    let mut opt = Sgd::new(hyper.lr, hyper.momentum, hyper.weight_decay, params.len());
    let mut samplers: Vec<BatchSampler> = (0..n)
        .map(|w| BatchSampler::for_worker(dataset.len(), hyper.batch_size, seed, w))
        .collect();
    let mut recorder = Recorder::new(n, eval, dataset);
    let mut trace = Trace::new(n);
    let mut events: EventQueue<Ev> = EventQueue::new();
    let mut iters = vec![0u64; n];
    let mut blocked: Vec<bool> = vec![false; n];
    let mut done = vec![false; n];
    // Initial broadcast.
    let snapshot = Arc::new(params.clone());
    for w in 0..n {
        let a = net.transfer(0.0, server, w, param_bytes);
        events.push(
            a,
            Ev::ParamsArrive {
                w,
                params: Arc::clone(&snapshot),
            },
        );
    }
    while let Some((now, ev)) = events.pop() {
        match ev {
            Ev::ParamsArrive { w, params: snap } => {
                let k = iters[w];
                trace.record(w, k, now);
                let compute_done =
                    now + cluster.base_compute(w) * slowdown.factor(seed, w, k);
                let batch = samplers[w].next_batch(dataset);
                let mut grad = vec![0.0f32; snap.len()];
                let loss = model.loss_grad(&snap, &batch, &mut grad);
                let arrival = net.transfer(compute_done, w, server, param_bytes);
                events.push(
                    arrival,
                    Ev::GradArrive {
                        w,
                        grad,
                        compute_done,
                        loss,
                    },
                );
            }
            Ev::GradArrive {
                w,
                grad,
                compute_done,
                loss,
            } => {
                // The gradient was computed on (possibly stale) pulled
                // parameters but is applied to the current ones (§2.1's
                // asynchronous coordination).
                opt.step(&mut params, &grad);
                recorder.train_loss(w, iters[w], compute_done, loss);
                iters[w] += 1;
                if w == 0 && recorder.eval_due(iters[0]) {
                    let view: Vec<&[f32]> = vec![&params];
                    recorder.evaluate(model, dataset, &view, now, iters[0]);
                }
                if iters[w] >= max_iters {
                    done[w] = true;
                } else {
                    blocked[w] = true;
                }
                // Unblock every worker whose staleness constraint now holds.
                let min_iter = iters
                    .iter()
                    .zip(&done)
                    .filter(|&(_, &d)| !d)
                    .map(|(&i, _)| i)
                    .min()
                    .unwrap_or(max_iters);
                for v in 0..n {
                    if !blocked[v] || done[v] {
                        continue;
                    }
                    let ok = match staleness {
                        Some(s) => iters[v] <= min_iter + s,
                        None => true,
                    };
                    if ok {
                        blocked[v] = false;
                        let snap = Arc::new(params.clone());
                        let a = net.transfer(now, server, v, param_bytes);
                        events.push(a, Ev::ParamsArrive { w: v, params: snap });
                    }
                }
            }
        }
        if done.iter().all(|&d| d) {
            break;
        }
    }
    let deadlocked = !done.iter().all(|&d| d);
    TrainingReport {
        trace,
        train_loss_time: recorder.train_time,
        train_loss_steps: recorder.train_steps,
        eval_time: recorder.eval_time,
        eval_steps: recorder.eval_steps,
        final_params: vec![params],
        wall_time: events.now(),
        stale_discarded: 0,
        bytes_sent: net.bytes_sent(),
        deadlocked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    fn setup() -> (ClusterSpec, InMemoryDataset, Svm, Hyper) {
        let cluster = ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps());
        let dataset = SyntheticWebspam::generate(256, 7);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let hyper = Hyper {
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 1e-7,
            batch_size: 16,
        };
        (cluster, dataset, model, hyper)
    }

    fn run_mode(mode: PsMode, slow: SlowdownModel, iters: u64) -> TrainingReport {
        let (cluster, dataset, model, hyper) = setup();
        run(
            &PsConfig { mode },
            &cluster,
            &slow,
            &model,
            &dataset,
            &hyper,
            iters,
            5,
            EvalConfig {
                every: 10,
                examples: 64,
            },
        )
    }

    #[test]
    fn bsp_learns() {
        let r = run_mode(PsMode::Bsp, SlowdownModel::None, 60);
        assert!(!r.deadlocked);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn bsp_rounds_are_lockstep() {
        let r = run_mode(PsMode::Bsp, SlowdownModel::None, 20);
        assert!(r.trace.max_gap() <= 1);
        for w in 0..4 {
            assert_eq!(r.trace.durations(w).len(), 19);
        }
    }

    #[test]
    fn bsp_straggler_slows_every_round() {
        let fast = run_mode(PsMode::Bsp, SlowdownModel::None, 30);
        let slow = run_mode(
            PsMode::Bsp,
            SlowdownModel::paper_straggler(4, 0, 6.0),
            30,
        );
        // With one 6x straggler every BSP round waits for it.
        assert!(slow.wall_time > fast.wall_time * 3.0);
    }

    #[test]
    fn async_outpaces_bsp_under_straggler() {
        let slowdown = SlowdownModel::paper_straggler(4, 0, 6.0);
        let bsp = run_mode(PsMode::Bsp, slowdown.clone(), 30);
        let asy = run_mode(PsMode::Async, slowdown, 30);
        assert!(!asy.deadlocked);
        assert!(asy.wall_time < bsp.wall_time);
    }

    #[test]
    fn ssp_bounds_the_gap() {
        let slowdown = SlowdownModel::paper_straggler(4, 0, 6.0);
        let ssp = run_mode(PsMode::Ssp(3), slowdown, 40);
        assert!(!ssp.deadlocked);
        // SSP's global bound: fastest - slowest <= s + 1 at entry times.
        assert!(ssp.trace.max_gap() <= 4, "gap {}", ssp.trace.max_gap());
    }

    #[test]
    fn ssp_learns() {
        let r = run_mode(PsMode::Ssp(2), SlowdownModel::paper_random(4), 60);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first);
    }
}
