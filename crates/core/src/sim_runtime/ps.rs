//! Simulated parameter-server baselines (§2.1): BSP, SSP and fully
//! asynchronous coordination.
//!
//! The server lives on its own machine (as in §7.3.2, which adds one
//! machine for the PS). All worker↔server traffic shares the server's
//! NICs, reproducing the communication hotspot that decentralized training
//! eliminates.
//!
//! Both coordination styles run through the shared
//! [`super::engine::SimEngine`]: BSP as a round-per-event protocol,
//! SSP/Async as a message-per-event protocol. The global parameter vector
//! and optimizer live in the protocol (there is one logical replica on the
//! server, not one per worker).

use crate::choreography::{self, ChoreographySpec};
use crate::config::{PsConfig, PsMode};
use crate::report::TrainingReport;
use crate::trainer::Hyper;
use hop_data::InMemoryDataset;
use hop_model::{Model, Sgd};
use hop_sim::{ClusterSpec, SlowdownModel};
use hop_tensor::ParamBlock;

use super::compression::CompressionPlane;
use super::engine::{SimEngine, WorkerProtocol};
use super::recorder::EvalConfig;

/// BSP/SSP server choreography: synchronization is engine-internal
/// (round barriers / bound checks on the server), so only iteration
/// entries are choreographed.
pub const BSP_CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "ps-bsp-ssp",
    states: choreography::ADVANCE_ONLY_STATES,
    transitions: choreography::ADVANCE_ONLY,
    tokens: false,
    staleness: false,
    jumps: false,
    churn: false,
};

/// Async server choreography: the server applies updates as they arrive;
/// no tagged exchange plane, so only iteration entries are choreographed.
pub const ASYNC_CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "ps-async",
    states: choreography::ADVANCE_ONLY_STATES,
    transitions: choreography::ADVANCE_ONLY,
    tokens: false,
    staleness: false,
    jumps: false,
    churn: false,
};

/// Runs a parameter-server experiment. `cluster` describes the workers
/// only; the server node is appended on its own machine.
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &PsConfig,
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
    conformance: bool,
) -> TrainingReport {
    let n = cluster.len();
    let mut spec = cluster.clone();
    let server = spec.push_server_node(1e-3);
    // The engine's event type is fixed at construction, so each mode
    // builds its own engine over the same spec.
    macro_rules! engine {
        () => {
            SimEngine::new(
                spec, n, slowdown, model, dataset, hyper, max_iters, seed, eval,
            )
            .with_conformance(conformance)
        };
    }
    match cfg.mode {
        PsMode::Bsp => {
            let engine = engine!();
            let mut proto = BspServer::new(server, cfg.compression, &engine);
            engine.drive(&mut proto)
        }
        PsMode::Ssp(s) => {
            let engine = engine!();
            let mut proto = AsyncServer::new(server, Some(s), cfg.compression, &engine);
            engine.drive(&mut proto)
        }
        PsMode::Async => {
            let engine = engine!();
            let mut proto = AsyncServer::new(server, None, cfg.compression, &engine);
            engine.drive(&mut proto)
        }
    }
}

/// Server-side apply cost per round/update (seconds).
const APPLY_COST: f64 = 1e-3;

/// One BSP round: broadcast, compute everywhere, gather, apply. The
/// round starts at the event's scheduled time.
struct BspRound {
    k: u64,
}

/// Bulk-synchronous parameter server: a global barrier every iteration,
/// driven as one event per round.
struct BspServer {
    server: usize,
    /// The single global replica; never snapshotted (BSP broadcast is
    /// modeled analytically), so mutation always hits the fast in-place
    /// path.
    params: ParamBlock,
    opt: Sgd,
    grad: Vec<f32>,
    mean_grad: Vec<f32>,
    /// Stream 0: the broadcast (one stream — every worker receives the
    /// identical reconstruction). Streams `1..=n`: per-worker gradient
    /// pushes under plain error feedback.
    plane: CompressionPlane,
}

impl BspServer {
    fn new(
        server: usize,
        compression: hop_tensor::CompressionConfig,
        eng: &SimEngine<'_, BspRound>,
    ) -> Self {
        let dim = eng.init_params().len();
        let mut plane = CompressionPlane::new(compression);
        plane.add_param_streams(1, eng.init_params());
        plane.add_grad_streams(eng.workers.len());
        Self {
            server,
            params: eng.init_block(),
            opt: eng.new_opt(),
            grad: vec![0.0; dim],
            mean_grad: vec![0.0; dim],
            plane,
        }
    }
}

impl WorkerProtocol for BspServer {
    type Event = BspRound;

    fn start(&mut self, eng: &mut SimEngine<'_, BspRound>) {
        eng.events.push(0.0, BspRound { k: 0 });
    }

    fn on_event(&mut self, eng: &mut SimEngine<'_, BspRound>, now: f64, ev: BspRound) {
        let BspRound { k } = ev;
        let t = now;
        let n = eng.workers.len();
        if k >= eng.max_iters {
            for w in 0..n {
                eng.finish_worker_at(w, k, now);
            }
            return;
        }
        // Broadcast (serialized through the server's egress NIC). Under a
        // lossy codec the server encodes the round's step once and every
        // worker receives (and computes on) the same reconstruction.
        // The fault plane does not apply here: BSP/SSP rounds are
        // computed analytically (one event covers the whole round, there
        // is no per-message delivery to gate), hence `churn: false` in
        // the choreographies above — chaos experiments use the
        // per-message protocols.
        let (bcast, bcast_bytes) = if self.plane.is_active() {
            let (recon, wire) = self
                .plane
                .encode_params(0, self.params.as_slice(), &mut eng.pool);
            self.plane.charge(n as u64, eng.param_bytes, wire);
            (Some(recon), wire)
        } else {
            (None, eng.param_bytes)
        };
        let arrivals: Vec<f64> = (0..n)
            .map(|w| eng.net.transfer(t, self.server, w, bcast_bytes))
            .collect();
        for (w, &a) in arrivals.iter().enumerate() {
            eng.iters[w] = k;
            eng.record_enter(w, k, a);
        }
        // Compute + push gradients; server ingress serializes the pushes.
        // Each push runs through its worker's gradient stream, so the
        // server averages the lossy reconstructions it actually received.
        self.mean_grad.fill(0.0);
        let mut round_end = t;
        for w in 0..n {
            let done = arrivals[w] + eng.compute_duration(w, k);
            let loss = eng.sample_grad(w, bcast.as_ref().unwrap_or(&self.params), &mut self.grad);
            eng.recorder.train_loss(w, k, done, loss);
            let push_bytes = if self.plane.is_active() {
                let wire = self.plane.encode_grad(1 + w, &mut self.grad, &mut eng.pool);
                self.plane.charge(1, eng.param_bytes, wire);
                wire
            } else {
                eng.param_bytes
            };
            hop_tensor::ops::axpy(1.0 / n as f32, &self.grad, &mut self.mean_grad);
            let grad_arrival = eng.net.transfer(done, w, self.server, push_bytes);
            round_end = round_end.max(grad_arrival);
        }
        if let Some(b) = bcast {
            eng.pool.reclaim(b);
        }
        let t = round_end + APPLY_COST;
        self.opt.step_block(&mut self.params, &self.mean_grad);
        if eng.recorder.eval_due(k + 1) {
            let view: Vec<&[f32]> = vec![self.params.as_slice()];
            eng.recorder
                .evaluate(eng.model, eng.dataset, &view, t, k + 1);
        }
        eng.events.push(t, BspRound { k: k + 1 });
    }

    fn final_params(&mut self, eng: &SimEngine<'_, BspRound>) -> Vec<Vec<f32>> {
        // Report convention: one vector per worker (all hold the server
        // replica after the final broadcast).
        vec![self.params.to_vec(); eng.workers.len()]
    }

    fn bytes_saved(&self, _eng: &SimEngine<'_, BspRound>) -> u64 {
        self.plane.bytes_saved()
    }
}

enum AsyncEv {
    /// Fresh parameters reached the worker; it starts computing. The
    /// payload is a zero-copy snapshot of the server replica at pull time.
    ParamsArrive { w: usize, params: ParamBlock },
    /// A worker's gradient reached the server (buffer from the engine
    /// pool, released after the server applies it).
    GradArrive {
        w: usize,
        grad: Vec<f32>,
        compute_done: f64,
        loss: f32,
    },
}

/// Asynchronous/SSP parameter server: workers pull, compute and push
/// independently; the server applies each gradient to the current
/// parameters (§2.1's asynchronous coordination) and re-issues parameters
/// subject to the staleness constraint.
struct AsyncServer {
    server: usize,
    staleness: Option<u64>,
    /// Global replica; every pull is a snapshot, every apply detaches
    /// copy-on-write from the snapshots still in flight.
    params: ParamBlock,
    opt: Sgd,
    blocked: Vec<bool>,
    /// Streams `0..n`: per-worker parameter pulls (pulls happen at
    /// different server states, so each worker tracks its own
    /// reconstruction). Streams `n..2n`: per-worker gradient pushes.
    plane: CompressionPlane,
}

impl AsyncServer {
    fn new(
        server: usize,
        staleness: Option<u64>,
        compression: hop_tensor::CompressionConfig,
        eng: &SimEngine<'_, AsyncEv>,
    ) -> Self {
        let n = eng.workers.len();
        let mut plane = CompressionPlane::new(compression);
        plane.add_param_streams(n, eng.init_params());
        plane.add_grad_streams(n);
        Self {
            server,
            staleness,
            params: eng.init_block(),
            opt: eng.new_opt(),
            blocked: vec![false; n],
            plane,
        }
    }

    /// Encodes worker `w`'s next parameter pull, or snapshots the exact
    /// replica under the identity codec. Returns the payload to ship and
    /// the wire bytes to charge the server's egress NIC.
    fn pull_payload(
        &mut self,
        w: usize,
        pool: &mut hop_tensor::BufferPool,
        param_bytes: u64,
    ) -> (ParamBlock, u64) {
        if self.plane.is_active() {
            let (snap, wire) = self.plane.encode_params(w, self.params.as_slice(), pool);
            self.plane.charge(1, param_bytes, wire);
            (snap, wire)
        } else {
            (self.params.snapshot(), param_bytes)
        }
    }
}

impl WorkerProtocol for AsyncServer {
    type Event = AsyncEv;

    fn start(&mut self, eng: &mut SimEngine<'_, AsyncEv>) {
        // Initial broadcast: every worker gets a snapshot of one
        // allocation (or, compressed, its stream's reconstruction).
        for w in 0..eng.workers.len() {
            let (snap, bytes) = self.pull_payload(w, &mut eng.pool, eng.param_bytes);
            // Fault gate: a dropped pull stalls the worker for good (the
            // async server has no retry) — the degradation chaos sweeps
            // measure.
            match eng.transfer_gated(self.server, w, bytes, 0.0, 0) {
                Some(a) => eng
                    .events
                    .push(a, AsyncEv::ParamsArrive { w, params: snap }),
                None => eng.pool.reclaim(snap),
            }
        }
    }

    fn on_event(&mut self, eng: &mut SimEngine<'_, AsyncEv>, now: f64, ev: AsyncEv) {
        match ev {
            AsyncEv::ParamsArrive { w, params: snap } => {
                let k = eng.iters[w];
                eng.record_enter(w, k, now);
                let compute_done = now + eng.compute_duration(w, k);
                let mut grad = eng.pool.acquire(snap.len());
                // The gradient is taken on the pulled (possibly stale)
                // snapshot, not on whatever the server holds by then.
                let loss = eng.sample_grad(w, &snap, &mut grad);
                eng.pool.reclaim(snap);
                // Push through the worker's gradient stream: the server
                // will apply the reconstruction it actually receives.
                let push_bytes = if self.plane.is_active() {
                    let n = eng.workers.len();
                    let wire = self.plane.encode_grad(n + w, &mut grad, &mut eng.pool);
                    self.plane.charge(1, eng.param_bytes, wire);
                    wire
                } else {
                    eng.param_bytes
                };
                match eng.transfer_gated(w, self.server, push_bytes, compute_done, k) {
                    Some(arrival) => eng.events.push(
                        arrival,
                        AsyncEv::GradArrive {
                            w,
                            grad,
                            compute_done,
                            loss,
                        },
                    ),
                    // A lost push strands the worker: the server never
                    // learns it finished, so no fresh pull is issued.
                    None => eng.pool.release(grad),
                }
            }
            AsyncEv::GradArrive {
                w,
                grad,
                compute_done,
                loss,
            } => {
                // The gradient was computed on (possibly stale) pulled
                // parameters but is applied to the current ones (§2.1's
                // asynchronous coordination).
                self.opt.step_block(&mut self.params, &grad);
                eng.pool.release(grad);
                eng.recorder.train_loss(w, eng.iters[w], compute_done, loss);
                eng.iters[w] += 1;
                if w == 0 && eng.recorder.eval_due(eng.iters[0]) {
                    let view: Vec<&[f32]> = vec![self.params.as_slice()];
                    let iter0 = eng.iters[0];
                    eng.recorder
                        .evaluate(eng.model, eng.dataset, &view, now, iter0);
                }
                if eng.iters[w] >= eng.max_iters {
                    eng.finish_worker_at(w, eng.iters[w], now);
                } else {
                    self.blocked[w] = true;
                }
                // Unblock every worker whose staleness constraint now holds.
                let min_iter = (0..eng.workers.len())
                    .filter(|&v| !eng.is_finished(v))
                    .map(|v| eng.iters[v])
                    .min()
                    .unwrap_or(eng.max_iters);
                for v in 0..eng.workers.len() {
                    if !self.blocked[v] || eng.is_finished(v) {
                        continue;
                    }
                    let ok = match self.staleness {
                        Some(s) => eng.iters[v] <= min_iter + s,
                        None => true,
                    };
                    if ok {
                        self.blocked[v] = false;
                        let (snap, bytes) = self.pull_payload(v, &mut eng.pool, eng.param_bytes);
                        match eng.transfer_gated(self.server, v, bytes, now, eng.iters[v]) {
                            Some(a) => eng
                                .events
                                .push(a, AsyncEv::ParamsArrive { w: v, params: snap }),
                            None => eng.pool.reclaim(snap),
                        }
                    }
                }
            }
        }
    }

    fn final_params(&mut self, eng: &SimEngine<'_, AsyncEv>) -> Vec<Vec<f32>> {
        // Report convention: one vector per worker.
        vec![self.params.to_vec(); eng.workers.len()]
    }

    fn bytes_saved(&self, _eng: &SimEngine<'_, AsyncEv>) -> u64 {
        self.plane.bytes_saved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    fn setup() -> (ClusterSpec, InMemoryDataset, Svm, Hyper) {
        let cluster = ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps());
        let dataset = SyntheticWebspam::generate(256, 7);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let hyper = Hyper {
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 1e-7,
            batch_size: 16,
        };
        (cluster, dataset, model, hyper)
    }

    fn run_mode(mode: PsMode, slow: SlowdownModel, iters: u64) -> TrainingReport {
        let (cluster, dataset, model, hyper) = setup();
        run(
            &PsConfig::new(mode),
            &cluster,
            &slow,
            &model,
            &dataset,
            &hyper,
            iters,
            5,
            EvalConfig {
                every: 10,
                examples: 64,
            },
            false,
        )
    }

    #[test]
    fn bsp_learns() {
        let r = run_mode(PsMode::Bsp, SlowdownModel::None, 60);
        assert!(!r.deadlocked);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first, "{first} -> {last}");
    }

    #[test]
    fn bsp_rounds_are_lockstep() {
        let r = run_mode(PsMode::Bsp, SlowdownModel::None, 20);
        assert!(r.trace.max_gap() <= 1);
        // One entry per iteration 0..=max_iters, so max_iters durations.
        for w in 0..4 {
            assert_eq!(r.trace.durations(w).len(), 20);
        }
    }

    #[test]
    fn bsp_straggler_slows_every_round() {
        let fast = run_mode(PsMode::Bsp, SlowdownModel::None, 30);
        let slow = run_mode(PsMode::Bsp, SlowdownModel::paper_straggler(4, 0, 6.0), 30);
        // With one 6x straggler every BSP round waits for it.
        assert!(slow.wall_time > fast.wall_time * 3.0);
    }

    #[test]
    fn async_outpaces_bsp_under_straggler() {
        let slowdown = SlowdownModel::paper_straggler(4, 0, 6.0);
        let bsp = run_mode(PsMode::Bsp, slowdown.clone(), 30);
        let asy = run_mode(PsMode::Async, slowdown, 30);
        assert!(!asy.deadlocked);
        assert!(asy.wall_time < bsp.wall_time);
    }

    #[test]
    fn ssp_bounds_the_gap() {
        let slowdown = SlowdownModel::paper_straggler(4, 0, 6.0);
        let ssp = run_mode(PsMode::Ssp(3), slowdown, 40);
        assert!(!ssp.deadlocked);
        // SSP's global bound: fastest - slowest <= s + 1 at entry times.
        assert!(ssp.trace.max_gap() <= 4, "gap {}", ssp.trace.max_gap());
    }

    #[test]
    fn ssp_learns() {
        let r = run_mode(PsMode::Ssp(2), SlowdownModel::paper_random(4), 60);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first);
    }
}
