//! Simulated Quasi-Global Momentum gossip (Lin et al., *Quasi-Global
//! Momentum: Accelerating Decentralized Deep Learning on Heterogeneous
//! Data*).
//!
//! QGM keeps the communication pattern of standard synchronous gossip —
//! every iteration each worker exchanges parameters with its topology
//! neighbors and averages its in-neighborhood — but replaces local
//! momentum (which diverges across heterogeneous workers) with the
//! [`QgmState`] buffer tracking the *locally-estimated global parameter
//! difference*:
//!
//! 1. **Compute + half-step**: gradient on the worker's own replica,
//!    then `x_{t+1/2} = x_t - lr (g + mu m + wd x_t)`.
//! 2. **Gossip**: send the half-step snapshot to out-neighbors; wait for
//!    every external in-neighbor's half-step of the same iteration.
//! 3. **Reduce**: `x_{t+1} = mean` of the in-neighborhood half-steps
//!    (own included — the Eq. 1 uniform weights).
//! 4. **Momentum update** (*after* the Reduce, the paper's key move):
//!    `m_{t+1} = mu m_t + beta (x_t - x_{t+1}) / lr`.
//!
//! There is no global barrier: a worker waits only on its in-neighbors,
//! so a straggler's effect spreads one hop per iteration instead of
//! stalling every round the way ring all-reduce does. Neighbor half-steps
//! for future iterations are buffered per iteration (the gap is bounded
//! by the graph diameter, Theorem 1), and all parameter payloads travel
//! as zero-copy snapshots through the shared
//! [`super::engine::SimEngine`].

use crate::choreography::{self, ChoreographySpec};
use crate::config::QgmConfig;
use crate::report::TrainingReport;
use crate::semantics;
use crate::trainer::Hyper;
use hop_data::InMemoryDataset;
use hop_graph::Topology;
use hop_model::{Model, QgmState};
use hop_sim::{ClusterSpec, SlowdownModel};
use hop_tensor::ParamBlock;
use std::collections::HashMap;

use super::compression::CompressionPlane;
use super::engine::{SimEngine, WorkerProtocol};
use super::recorder::EvalConfig;

/// QGM choreography: gossip waits are engine-internal buffering (no
/// tagged queue/token plane), so only iteration entries are
/// choreographed.
pub const CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "qgm",
    states: choreography::ADVANCE_ONLY_STATES,
    transitions: choreography::ADVANCE_ONLY,
    tokens: false,
    staleness: false,
    jumps: false,
    churn: false,
};

/// Runs QGM gossip training over `topology`.
///
/// # Panics
///
/// Panics if `cfg` fails [`QgmConfig::validate`] or the topology is not
/// strongly connected (callers go through
/// [`crate::trainer::SimExperiment`], which validates first), or on a
/// cluster/topology size mismatch.
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &QgmConfig,
    topology: &Topology,
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
    conformance: bool,
) -> TrainingReport {
    cfg.validate().expect("config validated by caller");
    assert!(
        topology.is_strongly_connected(),
        "QGM gossip needs a strongly connected topology (checked by the trainer)"
    );
    assert_eq!(
        cluster.len(),
        topology.len(),
        "cluster and topology sizes must match"
    );
    let engine = SimEngine::new(
        cluster.clone(),
        topology.len(),
        slowdown,
        model,
        dataset,
        hyper,
        max_iters,
        seed,
        eval,
    )
    .with_conformance(conformance);
    let dim = engine.init_params().len();
    let workers = (0..topology.len())
        .map(|_| WorkerSt {
            prev: engine.init_block(),
            inbox: HashMap::new(),
            waiting: false,
            qgm: QgmState::new(cfg.mu, cfg.beta, dim),
        })
        .collect();
    let mut plane = CompressionPlane::new(cfg.compression);
    plane.add_param_streams(topology.len(), engine.init_params());
    let mut proto = Qgm {
        topology,
        workers,
        plane,
    };
    engine.drive(&mut proto)
}

enum Ev {
    /// Worker `w` finished its iteration-`iter` gradient computation.
    ComputeDone { w: usize, iter: u64 },
    /// A neighbor's half-step parameters arrived (zero-copy snapshot).
    Update {
        to: usize,
        iter: u64,
        params: ParamBlock,
    },
}

/// Protocol-specific per-worker state; parameters, optimizer, sampler and
/// RNG live in the engine's `WorkerCommon`.
struct WorkerSt {
    /// `x_t` at iteration entry — the reference point of the post-Reduce
    /// momentum update (a snapshot, not a copy).
    prev: ParamBlock,
    /// Half-step snapshots from external in-neighbors, buffered by
    /// iteration (neighbors run at most `diameter` iterations ahead).
    inbox: HashMap<u64, Vec<ParamBlock>>,
    /// Blocked in the Recv of the current iteration.
    waiting: bool,
    qgm: QgmState,
}

/// The QGM gossip state machine.
struct Qgm<'a> {
    topology: &'a Topology,
    workers: Vec<WorkerSt>,
    /// One parameter stream per worker for the gossiped half-steps;
    /// inactive under the identity codec.
    plane: CompressionPlane,
}

impl Qgm<'_> {
    fn enter_iteration(&mut self, eng: &mut SimEngine<'_, Ev>, w: usize, iter: u64, now: f64) {
        eng.iters[w] = iter;
        eng.record_enter(w, iter, now);
        if eng.recorder.crossed_boundary(iter) {
            eng.evaluate_worker_average(now, iter);
        }
        if iter >= eng.max_iters {
            eng.finish_worker(w);
            return;
        }
        self.workers[w].prev = eng.workers[w].params.snapshot();
        self.workers[w].waiting = false;
        let dur = eng.compute_duration(w, iter);
        eng.events.push(now + dur, Ev::ComputeDone { w, iter });
    }

    fn on_compute_done(&mut self, eng: &mut SimEngine<'_, Ev>, w: usize, iter: u64, now: f64) {
        debug_assert_eq!(eng.iters[w], iter, "stale compute event");
        // Gradient on x_t, then the QGM local half-step.
        let mut grad = eng.pool.acquire(eng.workers[w].params.len());
        eng.local_grad(w, now, &mut grad);
        let hyper = eng.hyper;
        self.workers[w].qgm.local_step(
            eng.workers[w].params.make_mut(),
            &grad,
            hyper.lr,
            hyper.weight_decay,
        );
        eng.pool.release(grad);
        // Gossip the half-step to out-neighbors as zero-copy snapshots;
        // with a lossy codec the neighbors receive the codec's
        // reconstruction at the encoded wire size, while this worker's
        // own Reduce keeps its exact half-step.
        let half = eng.workers[w].params.snapshot();
        let (wire, wire_bytes) = if self.plane.is_active() {
            self.plane.encode_params(w, half.as_slice(), &mut eng.pool)
        } else {
            (half.snapshot(), eng.param_bytes)
        };
        let externals = self.topology.external_out_neighbors(w);
        for &o in externals {
            // Fault gate: QGM's Reduce waits on every in-neighbor's
            // half-step, so a dropped gossip message stalls the receiver
            // at this iteration — the degradation the chaos benchmarks
            // measure, not something the protocol works around.
            if let Some(arrival) = eng.transfer_gated(w, o, wire_bytes, now, iter) {
                eng.events.push(
                    arrival,
                    Ev::Update {
                        to: o,
                        iter,
                        params: wire.snapshot(),
                    },
                );
            }
        }
        if self.plane.is_active() {
            self.plane
                .charge(externals.len() as u64, eng.param_bytes, wire_bytes);
        }
        eng.pool.reclaim(wire);
        eng.pool.reclaim(half);
        self.try_reduce(eng, w, now);
    }

    /// The Recv + Reduce + momentum update; blocks (`waiting`) until every
    /// external in-neighbor's half-step of the current iteration is here.
    fn try_reduce(&mut self, eng: &mut SimEngine<'_, Ev>, w: usize, now: f64) {
        let k = eng.iters[w];
        let need = self.topology.external_in_neighbors(w).len();
        let have = self.workers[w].inbox.get(&k).map_or(0, Vec::len);
        if have < need {
            self.workers[w].waiting = true;
            return;
        }
        let received = self.workers[w].inbox.remove(&k).unwrap_or_default();
        let own = eng.workers[w].params.snapshot();
        {
            let mut views: Vec<&[f32]> = Vec::with_capacity(received.len() + 1);
            views.push(own.as_slice());
            views.extend(received.iter().map(ParamBlock::as_slice));
            // Full overwrite: the old contents are not read, so snapshots
            // still in flight detach without copying.
            semantics::reduce_mean(&views, eng.workers[w].params.overwrite_mut(&mut eng.pool));
        }
        eng.pool.reclaim(own);
        for p in received {
            eng.pool.reclaim(p);
        }
        // The paper's key step: momentum from the observed *global*
        // movement x_t -> x_{t+1}, not from the private gradient.
        let st = &mut self.workers[w];
        st.qgm.update_momentum(
            st.prev.as_slice(),
            eng.workers[w].params.as_slice(),
            eng.hyper.lr,
        );
        self.enter_iteration(eng, w, k + 1, now);
    }
}

impl WorkerProtocol for Qgm<'_> {
    type Event = Ev;

    fn start(&mut self, eng: &mut SimEngine<'_, Ev>) {
        for w in 0..self.workers.len() {
            self.enter_iteration(eng, w, 0, 0.0);
        }
    }

    fn on_event(&mut self, eng: &mut SimEngine<'_, Ev>, now: f64, ev: Ev) {
        match ev {
            Ev::ComputeDone { w, iter } => self.on_compute_done(eng, w, iter, now),
            Ev::Update { to, iter, params } => {
                self.workers[to].inbox.entry(iter).or_default().push(params);
                if self.workers[to].waiting && eng.iters[to] == iter {
                    self.try_reduce(eng, to, now);
                }
            }
        }
    }

    fn final_params(&mut self, eng: &SimEngine<'_, Ev>) -> Vec<Vec<f32>> {
        eng.workers.iter().map(|s| s.params.to_vec()).collect()
    }

    fn bytes_saved(&self, _eng: &SimEngine<'_, Ev>) -> u64 {
        self.plane.bytes_saved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    fn run_qgm(cfg: QgmConfig, slow: SlowdownModel, iters: u64) -> TrainingReport {
        let topo = Topology::ring(6);
        let cluster = ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps());
        let dataset = SyntheticWebspam::generate(256, 7);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let hyper = Hyper {
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 1e-7,
            batch_size: 16,
        };
        run(
            &cfg,
            &topo,
            &cluster,
            &slow,
            &model,
            &dataset,
            &hyper,
            iters,
            3,
            EvalConfig {
                every: 10,
                examples: 64,
            },
            false,
        )
    }

    #[test]
    fn completes_and_learns() {
        let r = run_qgm(QgmConfig::default(), SlowdownModel::None, 50);
        assert!(!r.deadlocked);
        assert_eq!(r.final_params.len(), 6);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first, "loss {first} -> {last}");
        for w in 0..6 {
            assert_eq!(r.trace.durations(w).len(), 50);
        }
    }

    #[test]
    fn gap_respects_gossip_bound() {
        // No tokens, standard gossip: Theorem 1 bounds the pairwise gap
        // by the path length.
        let r = run_qgm(QgmConfig::default(), SlowdownModel::paper_random(6), 40);
        let sp = hop_graph::ShortestPaths::new(&Topology::ring(6));
        let gaps = r.trace.max_pairwise_gap();
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let bound = hop_graph::bounds::standard(sp.dist(j, i));
                assert!(
                    bound.admits(gaps[i][j]),
                    "gap({i},{j}) = {} exceeds {bound}",
                    gaps[i][j]
                );
            }
        }
    }

    #[test]
    fn momentum_changes_the_trajectory() {
        // mu = 0 (and beta = 0) degenerates to plain decentralized SGD
        // half-steps; the default mu/beta must actually alter training.
        let plain = run_qgm(
            QgmConfig {
                mu: 0.0,
                beta: 0.0,
                ..QgmConfig::default()
            },
            SlowdownModel::None,
            30,
        );
        let qgm = run_qgm(QgmConfig::default(), SlowdownModel::None, 30);
        assert_ne!(plain.final_params, qgm.final_params);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_qgm(QgmConfig::default(), SlowdownModel::paper_random(6), 25);
        let b = run_qgm(QgmConfig::default(), SlowdownModel::paper_random(6), 25);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }

    #[test]
    fn no_global_barrier_under_straggler() {
        // The straggler's influence travels one hop per iteration; the
        // worker diametrically opposite it keeps sprinting ahead early in
        // the run instead of pacing at 6x from iteration 0.
        let slow = SlowdownModel::paper_straggler(6, 1, 6.0);
        let r = run_qgm(QgmConfig::default(), slow, 30);
        assert!(!r.deadlocked);
        let gaps = r.trace.max_pairwise_gap();
        // Worker 4 is 3 hops from worker 1 on the 6-ring: it can lead by
        // up to its distance, which a barrier would cap at ~1.
        assert!(
            gaps[4][1] >= 2,
            "opposite worker never outran the straggler: gap {}",
            gaps[4][1]
        );
    }
}
