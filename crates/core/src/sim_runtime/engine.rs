//! The shared discrete-event driver behind every simulated runtime.
//!
//! # The `SimEngine` / `WorkerProtocol` split
//!
//! All four runtimes (Hop's decentralized protocol family, the
//! parameter-server baselines, AD-PSGD and ring all-reduce) share the same
//! skeleton: seed a deterministic RNG, replicate initial parameters,
//! wire a [`BatchSampler`] and [`Sgd`] per worker, pump an [`EventQueue`]
//! until every worker finishes (or the run deadlocks), draw compute times
//! from the [`SlowdownModel`], and record timing ([`Trace`]) and loss
//! ([`Recorder`]) along the way. Before this module existed each runtime
//! hand-rolled that skeleton (~1.7k LoC with heavy duplication); now it
//! lives here exactly once.
//!
//! * [`SimEngine`] owns everything protocol-independent: the virtual
//!   [`Network`], the event heap, per-worker common state
//!   ([`WorkerCommon`]: parameters, optimizer, sampler, RNG, iteration
//!   counter), the trace/recorder hooks, compute-time draws and finish
//!   detection. Its [`SimEngine::drive`] method is the *only* event pump
//!   in the crate.
//! * [`WorkerProtocol`] is the plug-in surface: a protocol declares its
//!   event payload type, schedules its initial events in
//!   [`WorkerProtocol::start`], and decodes/handles each event in
//!   [`WorkerProtocol::on_event`] — updating worker state and scheduling
//!   follow-on events through the engine it is handed. Protocol-specific
//!   per-worker state (queues, phases, token counts…) stays inside the
//!   protocol struct, disjoint from the engine's common state, so both
//!   can be borrowed mutably at once.
//!
//! Adding a new baseline (e.g. Prague-style partial all-reduce or
//! quasi-global momentum) is now a ~150-line `WorkerProtocol`
//! implementation instead of a fork of `decentralized.rs`.
//!
//! # The zero-copy parameter plane
//!
//! Worker parameter replicas are [`ParamBlock`]s: `Arc`-shared flat
//! buffers whose [`snapshot`](ParamBlock::snapshot) is a refcount bump.
//! Protocols publish parameters (to event payloads, rotating queues,
//! staleness caches) by snapshotting — a steady-state message send copies
//! *zero* parameter bytes. Mutation is copy-on-write:
//! read-modify-write updates (optimizer steps, pairwise averaging) go
//! through [`ParamBlock::make_mut`], and full overwrites (`Reduce`) go
//! through [`ParamBlock::overwrite_mut`], which takes its buffer from the
//! engine-owned [`BufferPool`] instead of copying soon-discarded values.
//! The pool also recycles per-event gradient scratch
//! ([`BufferPool::acquire`]/[`release`](BufferPool::release)) and
//! reclaims dequeued snapshots once their last holder drops them, so the
//! steady state performs no heap allocation. Per-example forward/backward
//! intermediates live in each worker's [`GradScratch`].
//!
//! Determinism: the engine introduces no randomness of its own. Event
//! order is total (time, then insertion sequence), per-worker RNGs are
//! seeded from the master seed, and slowdowns are sampled from
//! `(seed, worker, iteration)` — so one seed yields one report,
//! bit-for-bit. Sharing never changes values: snapshots are immutable,
//! copy-on-write detaches before any write, and pooled buffers are
//! handed out zero-filled — so reports are bit-identical to an
//! implementation that deep-copied every message.

use crate::choreography::{self, Idle, Step};
use crate::conformance::ConformanceSink;
use crate::report::TrainingReport;
use crate::sim_runtime::recorder::{EvalConfig, Recorder};
use crate::trainer::Hyper;
use hop_data::{BatchSampler, Dataset, InMemoryDataset};
use hop_model::{GradScratch, Model, Sgd};
use hop_sim::{
    ClusterSpec, EventQueue, FaultEvent, NetModel, Network, SlowdownModel, Trace, Verdict,
};
use hop_tensor::{BufferPool, ParamBlock};
use hop_util::Xoshiro256;

/// Protocol-independent per-worker state owned by the engine.
///
/// The event-pump-hot scalars live *outside* this struct, in dense
/// (structure-of-arrays) engine fields: iteration counters in
/// [`SimEngine::iters`] and the finished flags in a bitset behind
/// [`SimEngine::is_finished`]/[`SimEngine::all_finished`]. Protocols that
/// scan "every worker's iteration" each event (SSP's staleness gate,
/// AD-PSGD's gap metric) walk a flat `u64` array instead of striding
/// over these multi-hundred-byte structs, and the pump's every-event
/// finish check is O(1) instead of O(workers).
pub struct WorkerCommon {
    /// The worker's parameter replica, shared zero-copy with in-flight
    /// messages (see the [module docs](self)). Protocols with a single
    /// global parameter vector (parameter server, ring all-reduce) keep
    /// their own copy and ignore these.
    pub params: ParamBlock,
    /// Per-worker SGD state (momentum velocity).
    pub opt: Sgd,
    /// Deterministic minibatch sampler for this worker's data partition.
    pub sampler: BatchSampler,
    /// Per-worker RNG, seeded from the master seed and the worker id.
    pub rng: Xoshiro256,
    /// Reusable forward/backward scratch for this worker's gradient
    /// evaluations (no per-example allocation).
    pub scratch: GradScratch,
}

/// A simulated training protocol plugged into [`SimEngine::drive`].
///
/// Implementations keep their protocol-specific state (per-worker queues,
/// phases, token counts, a global parameter vector…) in `self`; common
/// state lives in the engine's [`WorkerCommon`] entries.
pub trait WorkerProtocol {
    /// The event payload this protocol schedules and decodes.
    type Event;

    /// Schedules the initial events (first compute completions, initial
    /// broadcast, first round…). Called once before the pump starts.
    fn start(&mut self, eng: &mut SimEngine<'_, Self::Event>);

    /// Handles one event at virtual time `now`: update worker state, do
    /// gradient math, schedule follow-on events.
    fn on_event(&mut self, eng: &mut SimEngine<'_, Self::Event>, now: f64, ev: Self::Event);

    /// Called once after the pump stops, before the report is assembled
    /// (e.g. a final evaluation).
    fn on_finish(&mut self, _eng: &mut SimEngine<'_, Self::Event>) {}

    /// The parameter vectors published in
    /// [`TrainingReport::final_params`].
    fn final_params(&mut self, eng: &SimEngine<'_, Self::Event>) -> Vec<Vec<f32>>;

    /// Stale updates discarded over the run (rotating-queue protocols).
    fn stale_discarded(&self, _eng: &SimEngine<'_, Self::Event>) -> u64 {
        0
    }

    /// Total bytes put on the wire. Defaults to the network's accounting;
    /// protocols that model transfers analytically override this.
    fn bytes_sent(&self, eng: &SimEngine<'_, Self::Event>) -> u64 {
        eng.net.bytes_sent()
    }

    /// Bytes the configured compression codec avoided sending (dense
    /// minus encoded, summed over compressed messages). Protocols that
    /// run a [`crate::sim_runtime::compression::CompressionPlane`]
    /// override this; everything else reports 0.
    fn bytes_saved(&self, _eng: &SimEngine<'_, Self::Event>) -> u64 {
        0
    }

    /// The lowest iteration a revived `worker` can productively re-enter
    /// at. The engine raises the rejoin target to this floor (still
    /// clamped to `max_iters`). Protocols whose receive path needs
    /// updates *tagged* with the current iteration override this: a
    /// neighbor already past iteration `k` sent its tag-`k` update while
    /// the worker was dead (dropped at the dead endpoint), so a target
    /// with too few in-neighbors still behind it stalls forever. The
    /// default — the iteration after the one the worker died in — suits
    /// protocols whose receive state is refreshed by any future message.
    fn rejoin_floor(&self, eng: &SimEngine<'_, Self::Event>, worker: usize) -> u64 {
        eng.iters[worker] + 1
    }

    /// Whether a revived `worker` may re-enter at `target` *right now*.
    /// Protocols with a hard iteration-gap bound veto a target that
    /// would breach it against a live straggler; the engine then leaves
    /// the worker dead and retries after the next event, once the
    /// stragglers have advanced. Default: always admissible.
    fn rejoin_admissible(
        &self,
        _eng: &SimEngine<'_, Self::Event>,
        _worker: usize,
        _target: u64,
    ) -> bool {
        true
    }

    /// Called when the engine revives a crashed worker at `target` — the
    /// parameter replica is already rehydrated from a live donor and the
    /// `Rejoin` choreography event emitted. Implementations re-arm their
    /// per-worker protocol state (phases, queues, token ledgers) and
    /// schedule the events that put the worker back to work. The default
    /// leaves the worker idle; protocols without churn support are only
    /// ever driven with empty fault plans, where this hook never fires.
    fn on_rejoin(
        &mut self,
        _eng: &mut SimEngine<'_, Self::Event>,
        _worker: usize,
        _target: u64,
        _now: f64,
    ) {
    }
}

/// Shared driver for the simulated runtimes: event pump, common worker
/// state, compute-time draws, trace/recorder hooks and finish detection.
///
/// See the [module docs](self) for the design rationale.
pub struct SimEngine<'a, E> {
    /// Model under training (gradient oracle).
    pub model: &'a dyn Model,
    /// Training data; each worker samples its own partition.
    pub dataset: &'a InMemoryDataset,
    /// Heterogeneity model for compute-time draws.
    pub slowdown: &'a SlowdownModel,
    /// Optimizer hyperparameters.
    pub hyper: Hyper,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Master seed.
    pub seed: u64,
    /// Wire size of one parameter message.
    pub param_bytes: u64,
    /// The virtual network (NIC contention, latency, bandwidth).
    pub net: Network,
    /// The fault plane: per-message verdicts, churn state, byzantine
    /// corruption and the fault log. Built from the cluster spec's
    /// [`hop_sim::FaultPlan`]; with the (default) empty plan every hook
    /// short-circuits and the run is bit-identical to one without it.
    pub faults: NetModel,
    /// The event heap; protocols push their own event payloads.
    pub events: EventQueue<E>,
    /// Per-worker iteration timing records.
    pub trace: Trace,
    /// Loss/eval recording.
    pub recorder: Recorder,
    /// Protocol-independent per-worker state.
    pub workers: Vec<WorkerCommon>,
    /// Per-worker iteration counters, dense. Kept apart from
    /// [`SimEngine::workers`] (SoA) so per-event scans stay in cache at
    /// 10k+ workers.
    pub iters: Vec<u64>,
    /// Finished flags, one bit per worker.
    finished: Vec<u64>,
    /// Number of set bits in `finished` (O(1) [`SimEngine::all_finished`]).
    finished_count: usize,
    /// Recycled scratch buffers for per-event temporaries and
    /// full-overwrite parameter writes (see the [module docs](self)).
    pub pool: BufferPool,
    /// Overrides the default event budget of [`SimEngine::drive`]
    /// (`(max_iters + 2) * n_workers * 64 + 10_000`): the maximum number
    /// of events the pump will process (0 stops before the first event).
    /// Tests use tiny budgets to exercise the `budget_exhausted` path.
    pub event_budget: Option<u64>,
    /// Protocol-conformance recorder (disabled unless
    /// [`ConformanceSink::enable`]d before [`SimEngine::drive`]): protocols
    /// report structured [`crate::conformance::ProtocolEvent`]s through it
    /// — via the [`crate::choreography`] handles, the only API that can
    /// emit them — and the resulting
    /// [`crate::conformance::ProtocolTrace`] lands in
    /// [`TrainingReport::conformance`].
    pub conformance: ConformanceSink,
    init_params: ParamBlock,
    aborted: bool,
}

impl<'a, E> SimEngine<'a, E> {
    /// Builds an engine over `spec` with `n_workers` workers (the spec may
    /// contain extra non-worker nodes, e.g. a parameter server).
    ///
    /// Parameter replicas are initialized identically from the master
    /// seed; sampler and RNG streams are per-worker.
    ///
    /// # Panics
    ///
    /// Panics if `spec` has fewer than `n_workers` nodes.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        spec: ClusterSpec,
        n_workers: usize,
        slowdown: &'a SlowdownModel,
        model: &'a dyn Model,
        dataset: &'a InMemoryDataset,
        hyper: &Hyper,
        max_iters: u64,
        seed: u64,
        eval: EvalConfig,
    ) -> Self {
        assert!(
            spec.len() >= n_workers,
            "cluster spec has {} nodes but {n_workers} workers",
            spec.len()
        );
        let mut init_rng = Xoshiro256::seed_from_u64(seed);
        let init_params = ParamBlock::from_vec(model.init_params(&mut init_rng));
        let workers = (0..n_workers)
            .map(|w| WorkerCommon {
                // All replicas share the init allocation until first write.
                params: init_params.snapshot(),
                opt: Sgd::new(
                    hyper.lr,
                    hyper.momentum,
                    hyper.weight_decay,
                    init_params.len(),
                ),
                sampler: BatchSampler::for_worker(dataset.len(), hyper.batch_size, seed, w),
                // (w + 1) keeps worker 0's stream distinct from the
                // parameter-init RNG, which is seeded with the bare seed.
                rng: Xoshiro256::seed_from_u64(
                    seed ^ (w as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                scratch: GradScratch::new(),
            })
            .collect();
        let faults = NetModel::new(spec.faults().clone(), seed, spec.len());
        Self {
            model,
            dataset,
            slowdown,
            hyper: *hyper,
            max_iters,
            seed,
            param_bytes: init_params.len() as u64 * 4,
            faults,
            net: Network::new(spec),
            // Pre-size the heap so steady-state pushes never reallocate:
            // pending events scale with workers × protocol fan-out (each
            // worker keeps a bounded number of sends/completions in
            // flight), never with total iterations — but a tiny run needs
            // no more slots than it has events, so cap by the event count.
            events: EventQueue::with_capacity(
                (n_workers * 64)
                    .min(n_workers.saturating_mul((max_iters as usize).saturating_add(2)))
                    .max(64),
            ),
            // One record per worker per iteration entered (0..=max_iters),
            // capped so absurd `max_iters` values cannot pre-allocate
            // gigabytes; past the cap the Vec grows normally.
            trace: Trace::with_capacity(
                n_workers,
                n_workers
                    .saturating_mul((max_iters as usize).saturating_add(1))
                    .min(1 << 22),
            ),
            recorder: Recorder::new(n_workers, eval, dataset),
            workers,
            iters: vec![0; n_workers],
            finished: vec![0; n_workers.div_ceil(64)],
            finished_count: 0,
            pool: BufferPool::new(),
            event_budget: None,
            conformance: ConformanceSink::disabled(),
            init_params,
            aborted: false,
        }
    }

    /// Enables conformance recording when `enabled` — the one place every
    /// protocol `run` routes its `conformance` flag through, so a new
    /// plug-in cannot ship with recording silently dead.
    #[must_use]
    pub fn with_conformance(mut self, enabled: bool) -> Self {
        if enabled {
            self.conformance.enable();
        }
        self
    }

    /// The shared initial parameter vector (for protocols keeping a global
    /// replica instead of per-worker ones).
    pub fn init_params(&self) -> &[f32] {
        self.init_params.as_slice()
    }

    /// A zero-copy snapshot of the initial parameters (for protocols
    /// keeping [`ParamBlock`] replicas of their own).
    pub fn init_block(&self) -> ParamBlock {
        self.init_params.snapshot()
    }

    /// A fresh optimizer sized for the model (for global-replica
    /// protocols).
    pub fn new_opt(&self) -> Sgd {
        Sgd::new(
            self.hyper.lr,
            self.hyper.momentum,
            self.hyper.weight_decay,
            self.init_params.len(),
        )
    }

    /// Duration of worker `w`'s iteration-`iter` gradient computation:
    /// the cluster's base compute time scaled by the slowdown draw.
    pub fn compute_duration(&self, w: usize, iter: u64) -> f64 {
        self.net.spec().base_compute(w) * self.slowdown.factor(self.seed, w, iter)
    }

    /// Draws worker `w`'s next minibatch and evaluates loss and gradient
    /// at `params` (which may be a protocol-owned vector), reusing the
    /// worker's [`GradScratch`]. Does not record the loss — pair with
    /// [`Recorder::train_loss`] at the time that fits the protocol's
    /// semantics.
    pub fn sample_grad(&mut self, w: usize, params: &[f32], grad_out: &mut [f32]) -> f32 {
        let wc = &mut self.workers[w];
        let batch = wc.sampler.next_batch(self.dataset);
        self.model
            .loss_grad_with(params, &batch, grad_out, &mut wc.scratch)
    }

    /// [`Self::sample_grad`] on the worker's own replica, recording the
    /// minibatch loss at `now`.
    pub fn local_grad(&mut self, w: usize, now: f64, grad_out: &mut [f32]) -> f32 {
        let wc = &mut self.workers[w];
        let batch = wc.sampler.next_batch(self.dataset);
        let WorkerCommon {
            params, scratch, ..
        } = wc;
        let loss = self
            .model
            .loss_grad_with(params.as_slice(), &batch, grad_out, scratch);
        self.recorder.train_loss(w, self.iters[w], now, loss);
        loss
    }

    /// Evaluates the element-wise average of all worker replicas at
    /// `(now, iter)`, averaging into pool-backed scratch — no slice-vector
    /// or averaged-buffer allocation per evaluation. The accumulation is
    /// bit-identical to `ops::mean_into` over the replica slices: the
    /// acquired buffer is zero-filled, each replica is `axpy`-accumulated
    /// in worker order, then the sum is scaled once.
    pub fn evaluate_worker_average(&mut self, now: f64, iter: u64) {
        let mut avg = self.pool.acquire(self.workers[0].params.len());
        for wc in &self.workers {
            hop_tensor::ops::axpy(1.0, wc.params.as_slice(), &mut avg);
        }
        hop_tensor::ops::scale(1.0 / self.workers.len() as f32, &mut avg);
        self.recorder
            .evaluate_params(self.model, self.dataset, &avg, now, iter);
        self.pool.release(avg);
    }

    /// [`Network::transfer`] behind the fault plane. The sender's NIC is
    /// charged unconditionally — the bytes left the machine either way —
    /// then the [`NetModel`] verdict decides the fate: the physical
    /// arrival time, a retransmission at heal time for cut/partition
    /// windows, or `None` when the message is lost (loss draw, dead
    /// endpoint, permanent outage — all logged as [`FaultEvent::Loss`]).
    /// With an empty plan this is exactly `net.transfer`.
    pub fn transfer_gated(
        &mut self,
        from: usize,
        to: usize,
        bytes: u64,
        now: f64,
        iter: u64,
    ) -> Option<f64> {
        let arrival = self.net.transfer(now, from, to, bytes);
        match self.faults.verdict(now, from, to, iter) {
            Verdict::Deliver => Some(arrival),
            Verdict::Delay(extra) => Some(arrival + extra),
            Verdict::Drop => None,
        }
    }

    /// The iteration-entry hook for round-driven protocols (PS, AD-PSGD,
    /// ring, Prague, QGM) whose synchronization is engine-internal:
    /// records the timing trace entry *and* the conformance `Advance`
    /// (via [`choreography::advance_only`]) in one place, so the two
    /// views of "worker `w` entered iteration `iter`" can never diverge.
    /// Protocols that drive the full exchange vocabulary enter through
    /// [`Self::enter_step`] instead.
    pub fn record_enter(&mut self, w: usize, iter: u64, now: f64) {
        self.trace.record(w, iter, now);
        choreography::advance_only(&mut self.conformance, w, iter);
        if self.faults.try_crash(w, iter) {
            choreography::crash(&mut self.conformance, w, iter);
        }
    }

    /// The iteration-entry hook for protocols driving the full
    /// choreography: records the timing trace entry and returns the
    /// typed per-iteration handle (whose construction emits the
    /// `Advance`) that all further exchange events must flow through.
    /// Scheduled crashes fire here — at iteration entry, after the
    /// `Advance` — so the worker's sends for this iteration are already
    /// dead-endpoint losses.
    pub fn enter_step(&mut self, w: usize, iter: u64, now: f64) -> Step<Idle> {
        self.trace.record(w, iter, now);
        let step = choreography::begin_step(&mut self.conformance, w, iter);
        if self.faults.try_crash(w, iter) {
            choreography::crash(&mut self.conformance, w, iter);
        }
        step
    }

    /// Marks worker `w` finished; the pump stops once every worker is.
    /// Idempotent: finishing a finished worker is a no-op.
    pub fn finish_worker(&mut self, w: usize) {
        let (word, bit) = (w / 64, 1u64 << (w % 64));
        if self.finished[word] & bit == 0 {
            self.finished[word] |= bit;
            self.finished_count += 1;
        }
    }

    /// Whether worker `w` reached `max_iters`.
    pub fn is_finished(&self, w: usize) -> bool {
        self.finished[w / 64] & (1u64 << (w % 64)) != 0
    }

    /// [`Self::finish_worker`] plus the per-worker report convention:
    /// the worker's counter rests at `iter` (normally `max_iters`, never
    /// `max_iters - 1`) with a final trace entry at `now`. Protocols that
    /// record an entry for every iteration a worker *enters* (including
    /// the terminal one) already satisfy the convention and call
    /// [`Self::finish_worker`] directly; round-driven protocols whose
    /// terminal event covers many workers use this instead.
    pub fn finish_worker_at(&mut self, w: usize, iter: u64, now: f64) {
        self.iters[w] = iter;
        self.record_enter(w, iter, now);
        self.finish_worker(w);
    }

    /// Whether every worker reached `max_iters`. O(1): a counter
    /// maintained by [`SimEngine::finish_worker`], not a scan — this runs
    /// after every event.
    pub fn all_finished(&self) -> bool {
        self.finished_count == self.workers.len()
    }

    /// Aborts the pump at the end of the current event; the report comes
    /// back with [`TrainingReport::deadlocked`] set (AD-PSGD's wait-cycle
    /// detection).
    pub fn abort(&mut self) {
        self.aborted = true;
    }

    /// Runs the protocol to completion and assembles the report.
    ///
    /// Pumps events in deterministic order until every worker finishes,
    /// the protocol aborts, the event heap drains (a stall: some worker
    /// can never advance), or a generous safety budget is exhausted
    /// (runaway event storms). Every popped event is processed before the
    /// budget is checked, so the budget never silently drops work; budget
    /// exhaustion is reported distinctly via
    /// [`TrainingReport::budget_exhausted`] (with
    /// [`TrainingReport::deadlocked`] also set, since the run did not
    /// complete).
    pub fn drive<P: WorkerProtocol<Event = E>>(mut self, proto: &mut P) -> TrainingReport {
        proto.start(&mut self);
        let n = self.workers.len() as u64;
        let mut budget = self
            .event_budget
            .unwrap_or((self.max_iters + 2) * n * 64 + 10_000);
        // Events are only popped while budget remains, so an exhausted
        // budget never drops a popped event half-processed — and a budget
        // of 0 stops before the protocol mutates anything.
        let mut budget_exhausted = budget == 0;
        let mut events_processed = 0u64;
        while !budget_exhausted {
            let Some((now, ev)) = self.events.pop() else {
                break;
            };
            events_processed += 1;
            proto.on_event(&mut self, now, ev);
            if !self.faults.is_empty() {
                self.process_rejoins(proto, now);
            }
            if self.aborted || self.all_finished() {
                break;
            }
            budget -= 1;
            budget_exhausted = budget == 0;
        }
        let deadlocked = self.aborted || !self.all_finished();
        proto.on_finish(&mut self);
        let fault_log = self.faults.take_log();
        let (mut messages_dropped, mut crashes, mut rejoins) = (0u64, 0u64, 0u64);
        for e in fault_log.events() {
            match e {
                FaultEvent::Loss { .. } => messages_dropped += 1,
                FaultEvent::Crash { .. } => crashes += 1,
                FaultEvent::Rejoin { .. } => rejoins += 1,
                FaultEvent::Byzantine { .. } => {}
            }
        }
        TrainingReport {
            conformance: self.conformance.take(),
            final_params: proto.final_params(&self),
            stale_discarded: proto.stale_discarded(&self),
            bytes_sent: proto.bytes_sent(&self),
            bytes_saved: proto.bytes_saved(&self),
            wall_time: self.events.now(),
            trace: self.trace,
            train_loss_time: self.recorder.train_time,
            train_loss_steps: self.recorder.train_steps,
            eval_time: self.recorder.eval_time,
            eval_steps: self.recorder.eval_steps,
            deadlocked,
            budget_exhausted,
            events_processed,
            messages_dropped,
            crashes,
            rejoins,
            fault_log,
        }
    }

    /// Revives every crashed worker whose rejoin condition is met: some
    /// live worker has progressed `down_iters` past the crash point. The
    /// rejoiner rehydrates its replica from the slowest live worker (the
    /// most conservative snapshot), gets a fresh optimizer, and re-enters
    /// at the protocol's [`WorkerProtocol::rejoin_floor`] (but never
    /// below the donor's iteration or its own + 1): far enough ahead
    /// that the updates it will need were not already dropped at its
    /// dead endpoint, never re-running an iteration it already entered.
    fn process_rejoins<P: WorkerProtocol<Event = E>>(&mut self, proto: &mut P, now: f64) {
        loop {
            let max_live = (0..self.workers.len())
                .filter(|&w| !self.faults.is_dead(w))
                .map(|w| self.iters[w])
                .max();
            let Some(max_live) = max_live else { return };
            let Some(w) = self.faults.due_rejoin(max_live) else {
                return;
            };
            let donor = (0..self.workers.len())
                .filter(|&o| o != w && !self.faults.is_dead(o))
                .min_by_key(|&o| self.iters[o])
                .expect("a live donor exists whenever max_live does");
            let target = proto
                .rejoin_floor(self, w)
                .max(self.iters[donor])
                .max(self.iters[w] + 1)
                .min(self.max_iters);
            if !proto.rejoin_admissible(self, w, target) {
                // Not `continue`: `due_rejoin` would yield the same
                // worker again. Leave it (and any later crashers) dead
                // and retry on the next pump step.
                return;
            }
            self.workers[w].params = self.workers[donor].params.snapshot();
            self.workers[w].opt = self.new_opt();
            choreography::rejoin(&mut self.conformance, w, target);
            self.faults.revive(w, target, donor);
            proto.on_rejoin(self, w, target, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    /// A trivial protocol: every worker computes, applies its own
    /// gradient, and loops — no communication at all.
    struct LocalSgd;

    struct Step {
        w: usize,
    }

    impl WorkerProtocol for LocalSgd {
        type Event = Step;

        fn start(&mut self, eng: &mut SimEngine<'_, Step>) {
            for w in 0..eng.workers.len() {
                eng.record_enter(w, 0, 0.0);
                let at = eng.compute_duration(w, 0);
                eng.events.push(at, Step { w });
            }
        }

        fn on_event(&mut self, eng: &mut SimEngine<'_, Step>, now: f64, ev: Step) {
            let w = ev.w;
            let mut grad = eng.pool.acquire(eng.workers[w].params.len());
            eng.local_grad(w, now, &mut grad);
            let wc = &mut eng.workers[w];
            let WorkerCommon { opt, params, .. } = wc;
            opt.step_block(params, &grad);
            eng.pool.release(grad);
            eng.iters[w] += 1;
            let k = eng.iters[w];
            eng.record_enter(w, k, now);
            if k >= eng.max_iters {
                eng.finish_worker(w);
            } else {
                let at = now + eng.compute_duration(w, k);
                eng.events.push(at, Step { w });
            }
        }

        fn final_params(&mut self, eng: &SimEngine<'_, Step>) -> Vec<Vec<f32>> {
            eng.workers.iter().map(|s| s.params.to_vec()).collect()
        }
    }

    fn run_local(seed: u64) -> TrainingReport {
        let dataset = SyntheticWebspam::generate(128, 3);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let cluster = ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps());
        let slowdown = SlowdownModel::paper_random(4);
        let eng = SimEngine::new(
            cluster,
            4,
            &slowdown,
            &model,
            &dataset,
            &Hyper::svm(),
            20,
            seed,
            EvalConfig {
                every: 0,
                examples: 32,
            },
        );
        eng.drive(&mut LocalSgd)
    }

    #[test]
    fn minimal_protocol_completes() {
        let report = run_local(5);
        assert!(!report.deadlocked);
        assert_eq!(report.final_params.len(), 4);
        for w in 0..4 {
            assert_eq!(report.trace.durations(w).len(), 20);
        }
        assert!(report.wall_time > 0.0);
    }

    #[test]
    fn engine_is_deterministic() {
        let a = run_local(9);
        let b = run_local(9);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.trace.records(), b.trace.records());
    }

    #[test]
    fn budget_exhaustion_is_distinct_and_processes_every_popped_event() {
        let dataset = SyntheticWebspam::generate(128, 3);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let cluster = ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps());
        let slowdown = SlowdownModel::None;
        let mut eng = SimEngine::new(
            cluster,
            4,
            &slowdown,
            &model,
            &dataset,
            &Hyper::svm(),
            20,
            5,
            EvalConfig {
                every: 0,
                examples: 32,
            },
        );
        // LocalSgd needs exactly one event per worker-iteration; cap the
        // run after 6 of the 80 it wants.
        eng.event_budget = Some(6);
        let report = eng.drive(&mut LocalSgd);
        assert!(report.budget_exhausted, "tiny budget must trip the flag");
        assert!(report.deadlocked, "an exhausted run did not complete");
        // Process-then-check: all 6 popped events were handled, none were
        // silently dropped (each LocalSgd event appends one trace record
        // on top of the 4 initial ones).
        assert_eq!(report.trace.len(), 4 + 6);
        // A completed run of the same experiment reports neither flag.
        let full = run_local(5);
        assert!(!full.budget_exhausted);
        assert!(!full.deadlocked);
        // A zero budget stops before any event mutates protocol state.
        let mut eng = SimEngine::new(
            ClusterSpec::uniform(4, 2, 0.01, LinkModel::ethernet_1gbps()),
            4,
            &slowdown,
            &model,
            &dataset,
            &Hyper::svm(),
            20,
            5,
            EvalConfig {
                every: 0,
                examples: 32,
            },
        );
        eng.event_budget = Some(0);
        let report = eng.drive(&mut LocalSgd);
        assert!(report.budget_exhausted);
        assert_eq!(report.trace.len(), 4, "only the start() records remain");
    }

    #[test]
    fn empty_event_heap_reports_deadlock() {
        struct Stalled;
        impl WorkerProtocol for Stalled {
            type Event = ();
            fn start(&mut self, _eng: &mut SimEngine<'_, ()>) {}
            fn on_event(&mut self, _eng: &mut SimEngine<'_, ()>, _now: f64, _ev: ()) {}
            fn final_params(&mut self, _eng: &SimEngine<'_, ()>) -> Vec<Vec<f32>> {
                Vec::new()
            }
        }
        let dataset = SyntheticWebspam::generate(64, 0);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let cluster = ClusterSpec::uniform(2, 1, 0.01, LinkModel::ethernet_1gbps());
        let eng = SimEngine::new(
            cluster,
            2,
            &SlowdownModel::None,
            &model,
            &dataset,
            &Hyper::svm(),
            5,
            0,
            EvalConfig {
                every: 0,
                examples: 16,
            },
        );
        let report = eng.drive(&mut Stalled);
        assert!(report.deadlocked);
        assert!(
            !report.budget_exhausted,
            "a drained heap is a stall, not an event storm"
        );
    }
}
