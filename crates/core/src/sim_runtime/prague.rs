//! Simulated Prague-style partial all-reduce (Luo et al.,
//! *Heterogeneity-Aware Asynchronous Decentralized Training*).
//!
//! Prague replaces the global all-reduce with a *partial* one: each round
//! the workers are partitioned into small groups and every group
//! all-reduces (averages parameters) among only its own members. With
//! static-group scheduling the partition for a round is a pure function of
//! `(seed, round)` ([`hop_graph::groups::partition`]), so no coordination
//! is needed to agree on membership and — crucially — no worker ever
//! waits on a straggler outside its group: a 6× straggler delays at most
//! `group_size - 1` peers per round, while ring all-reduce stalls the
//! whole cluster. Randomized regeneration of the partition
//! ([`PragueConfig::regen_every`]) mixes information across groups over
//! rounds.
//!
//! Runs through the shared [`super::engine::SimEngine`]; the intra-group
//! all-reduce pipeline is modeled analytically (per-step max over the
//! group's logical ring), so bytes are accounted here rather than via the
//! virtual network. As with ring all-reduce there is no per-message
//! delivery to gate, so the fault plane does not apply (`churn: false`).

use crate::choreography::{self, ChoreographySpec};
use crate::config::PragueConfig;
use crate::report::TrainingReport;
use crate::trainer::Hyper;
use hop_data::InMemoryDataset;
use hop_graph::groups;
use hop_model::Model;
use hop_sim::{ClusterSpec, SlowdownModel};
use hop_tensor::ParamBlock;
use std::collections::HashMap;

use super::compression::CompressionPlane;
use super::engine::{SimEngine, WorkerCommon, WorkerProtocol};
use super::recorder::EvalConfig;

/// Prague choreography: group membership is a pure function of
/// `(seed, round)` and the intra-group all-reduce is analytic, so only
/// iteration entries are choreographed.
pub const CHOREOGRAPHY: ChoreographySpec = ChoreographySpec {
    protocol: "prague",
    states: choreography::ADVANCE_ONLY_STATES,
    transitions: choreography::ADVANCE_ONLY,
    tokens: false,
    staleness: false,
    jumps: false,
    churn: false,
};

/// Runs Prague partial all-reduce training over `cluster`'s workers.
///
/// # Panics
///
/// Panics if `cfg` fails [`PragueConfig::validate`] (callers go through
/// [`crate::trainer::SimExperiment`], which validates first).
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &PragueConfig,
    cluster: &ClusterSpec,
    slowdown: &SlowdownModel,
    model: &dyn Model,
    dataset: &InMemoryDataset,
    hyper: &Hyper,
    max_iters: u64,
    seed: u64,
    eval: EvalConfig,
    conformance: bool,
) -> TrainingReport {
    cfg.validate().expect("config validated by caller");
    let n = cluster.len();
    let engine = SimEngine::new(
        cluster.clone(),
        n,
        slowdown,
        model,
        dataset,
        hyper,
        max_iters,
        seed,
        eval,
    )
    .with_conformance(conformance);
    let mut plane = CompressionPlane::new(cfg.compression);
    plane.add_param_streams(n, engine.init_params());
    let mut proto = Prague {
        cfg: *cfg,
        rounds: HashMap::new(),
        bytes_sent: 0,
        plane,
    };
    engine.drive(&mut proto)
}

enum Ev {
    /// Worker `w` finished computing its iteration-`iter` gradient.
    ComputeDone { w: usize, iter: u64 },
    /// Group `group` of round `round` finished its intra-group
    /// all-reduce pipeline. Under a lossy codec `recons` carries each
    /// member's compressed-stream reconstruction (in member order); the
    /// reduce averages those instead of the exact replicas, so every
    /// member agrees on the mean of what was actually transmitted.
    GroupReduce {
        round: u64,
        group: usize,
        recons: Option<Vec<ParamBlock>>,
    },
}

/// Bookkeeping for one in-flight round: the (cached) partition and how
/// many members of each group still have to arrive.
struct RoundState {
    groups: Vec<Vec<usize>>,
    /// `membership[w]` = index into `groups` containing worker `w`.
    membership: Vec<usize>,
    /// Per group: members that have not yet finished this round's compute.
    pending: Vec<usize>,
    /// Groups whose reduce has not yet completed (round cleanup trigger).
    open_groups: usize,
}

/// The partial all-reduce state machine.
struct Prague {
    cfg: PragueConfig,
    rounds: HashMap<u64, RoundState>,
    bytes_sent: u64,
    plane: CompressionPlane,
}

impl Prague {
    /// The round's group partition, derived lazily from `(seed, epoch)`
    /// where `epoch = round / regen_every` (static-group scheduling: pure,
    /// no coordination).
    fn round_state(&mut self, eng: &SimEngine<'_, Ev>, round: u64) -> &mut RoundState {
        let n = eng.workers.len();
        let cfg = self.cfg;
        self.rounds.entry(round).or_insert_with(|| {
            let epoch = round / cfg.regen_every;
            let groups = groups::partition(n, cfg.group_size, eng.seed, epoch);
            let membership = groups::membership(&groups);
            let pending: Vec<usize> = groups.iter().map(Vec::len).collect();
            let open_groups = groups.len();
            RoundState {
                groups,
                membership,
                pending,
                open_groups,
            }
        })
    }

    /// Advances `w` out of `round` (after its group's reduce, or
    /// immediately for a singleton group).
    fn advance(&mut self, eng: &mut SimEngine<'_, Ev>, w: usize, round: u64, now: f64) {
        let new_iter = round + 1;
        eng.iters[w] = new_iter;
        eng.record_enter(w, new_iter, now);
        if eng.recorder.crossed_boundary(new_iter) {
            eng.evaluate_worker_average(now, new_iter);
        }
        if new_iter >= eng.max_iters {
            eng.finish_worker(w);
            return;
        }
        let dur = eng.compute_duration(w, new_iter);
        eng.events
            .push(now + dur, Ev::ComputeDone { w, iter: new_iter });
    }

    /// Closes one group of `round`; drops the round's bookkeeping once the
    /// last group has reduced.
    fn close_group(&mut self, round: u64) {
        let st = self.rounds.get_mut(&round).expect("round in flight");
        st.open_groups -= 1;
        if st.open_groups == 0 {
            self.rounds.remove(&round);
        }
    }
}

impl WorkerProtocol for Prague {
    type Event = Ev;

    fn start(&mut self, eng: &mut SimEngine<'_, Ev>) {
        for w in 0..eng.workers.len() {
            eng.record_enter(w, 0, 0.0);
            let dur = eng.compute_duration(w, 0);
            eng.events.push(dur, Ev::ComputeDone { w, iter: 0 });
        }
    }

    fn on_event(&mut self, eng: &mut SimEngine<'_, Ev>, now: f64, ev: Ev) {
        match ev {
            Ev::ComputeDone { w, iter } => {
                // Local gradient + SGD step on the worker's own replica.
                let mut grad = eng.pool.acquire(eng.workers[w].params.len());
                eng.local_grad(w, now, &mut grad);
                let WorkerCommon { opt, params, .. } = &mut eng.workers[w];
                opt.step_block(params, &grad);
                eng.pool.release(grad);
                // Join this round's group; the group's all-reduce starts
                // when its last member arrives (and only then — members of
                // other groups are never waited on).
                let st = self.round_state(eng, iter);
                let g = st.membership[w];
                st.pending[g] -= 1;
                if st.pending[g] > 0 {
                    return;
                }
                let members = st.groups[g].clone();
                if members.len() == 1 {
                    // Singleton remainder: nothing to reduce with.
                    self.close_group(iter);
                    self.advance(eng, w, iter, now);
                    return;
                }
                // Under a lossy codec every member encodes its replica
                // into its parameter stream here (once per round, when
                // the group forms); the pipeline then moves the *mean*
                // encoded size per step instead of the dense size.
                let (recons, chunk) = if self.plane.is_active() {
                    let mut recons = Vec::with_capacity(members.len());
                    let mut sum_wire = 0u64;
                    for &m in &members {
                        let snap = eng.workers[m].params.snapshot();
                        let (recon, wire) =
                            self.plane.encode_params(m, snap.as_slice(), &mut eng.pool);
                        eng.pool.reclaim(snap);
                        sum_wire += wire;
                        recons.push(recon);
                    }
                    let chunk = sum_wire / members.len() as u64;
                    self.plane
                        .charge(2 * (members.len() as u64 - 1), eng.param_bytes, chunk);
                    (Some(recons), chunk)
                } else {
                    (None, eng.param_bytes)
                };
                self.bytes_sent += (members.len() as u64 - 1) * 2 * chunk;
                // The same analytic pipeline model as the ring baseline,
                // over the group's logical ring at chunk `bytes / g`.
                let done = now + eng.net.spec().ring_allreduce_time(&members, chunk as f64);
                eng.events.push(
                    done,
                    Ev::GroupReduce {
                        round: iter,
                        group: g,
                        recons,
                    },
                );
            }
            Ev::GroupReduce {
                round,
                group,
                recons,
            } => {
                let members = self.rounds[&round].groups[group].clone();
                // Partial all-reduce: every member ends up with the group
                // mean, shared as one allocation until the next write.
                // When compressed, the mean is over the transmitted
                // reconstructions — the only values all members saw.
                let mut mean = eng.pool.acquire(eng.workers[members[0]].params.len());
                if let Some(recons) = recons {
                    {
                        let views: Vec<&[f32]> = recons.iter().map(|r| r.as_slice()).collect();
                        hop_tensor::ops::mean_into(&views, &mut mean);
                    }
                    for r in recons {
                        eng.pool.reclaim(r);
                    }
                } else {
                    let views: Vec<&[f32]> = members
                        .iter()
                        .map(|&m| eng.workers[m].params.as_slice())
                        .collect();
                    hop_tensor::ops::mean_into(&views, &mut mean);
                }
                let block = ParamBlock::from_vec(mean);
                for &m in &members {
                    let old = std::mem::replace(&mut eng.workers[m].params, block.snapshot());
                    eng.pool.reclaim(old);
                }
                self.close_group(round);
                for &m in &members {
                    self.advance(eng, m, round, now);
                }
            }
        }
    }

    fn final_params(&mut self, eng: &SimEngine<'_, Ev>) -> Vec<Vec<f32>> {
        eng.workers.iter().map(|s| s.params.to_vec()).collect()
    }

    fn bytes_sent(&self, _eng: &SimEngine<'_, Ev>) -> u64 {
        self.bytes_sent
    }

    fn bytes_saved(&self, _eng: &SimEngine<'_, Ev>) -> u64 {
        self.plane.bytes_saved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hop_data::webspam::SyntheticWebspam;
    use hop_model::svm::Svm;
    use hop_sim::LinkModel;

    fn run_prague(cfg: PragueConfig, slow: SlowdownModel, iters: u64) -> TrainingReport {
        let cluster = ClusterSpec::uniform(6, 2, 0.01, LinkModel::ethernet_1gbps());
        let dataset = SyntheticWebspam::generate(256, 7);
        let model = Svm::log_loss(hop_data::Dataset::feature_dim(&dataset));
        let hyper = Hyper {
            lr: 0.5,
            momentum: 0.9,
            weight_decay: 1e-7,
            batch_size: 16,
        };
        run(
            &cfg,
            &cluster,
            &slow,
            &model,
            &dataset,
            &hyper,
            iters,
            3,
            EvalConfig {
                every: 10,
                examples: 64,
            },
            false,
        )
    }

    #[test]
    fn completes_and_learns() {
        let r = run_prague(PragueConfig::default(), SlowdownModel::None, 50);
        assert!(!r.deadlocked);
        assert_eq!(r.final_params.len(), 6);
        let first = r.eval_time.points()[0].1;
        let last = r.eval_time.last().unwrap().1;
        assert!(last < first, "loss {first} -> {last}");
        for w in 0..6 {
            assert_eq!(r.trace.durations(w).len(), 50);
        }
    }

    #[test]
    fn straggler_only_delays_its_group() {
        // `group_size = n` degenerates to a global all-reduce barrier:
        // every worker pays the straggler plus the full 2(n-1)-step
        // pipeline every round. Small groups beat it on both fronts —
        // the run finishes sooner (the straggler's own rounds carry a
        // cheaper group pipeline) and the non-straggler workers stop
        // pacing at 6x (they only wait in rounds that co-group them).
        let slow = SlowdownModel::paper_straggler(6, 1, 6.0);
        let partial = run_prague(PragueConfig::with_group_size(2), slow.clone(), 30);
        let barrier = run_prague(PragueConfig::with_group_size(6), slow, 30);
        assert!(!partial.deadlocked && !barrier.deadlocked);
        assert!(
            partial.wall_time < barrier.wall_time,
            "partial {} vs barrier {}",
            partial.wall_time,
            barrier.wall_time
        );
        let finish_of = |r: &TrainingReport, w: usize| {
            r.trace
                .records()
                .iter()
                .filter(|rec| rec.worker == w)
                .map(|rec| rec.time)
                .fold(0.0f64, f64::max)
        };
        let sum_partial: f64 = (0..6).map(|w| finish_of(&partial, w)).sum();
        let sum_barrier: f64 = (0..6).map(|w| finish_of(&barrier, w)).sum();
        assert!(
            sum_partial < sum_barrier,
            "workers idled as if behind a global barrier: {sum_partial} vs {sum_barrier}"
        );
    }

    #[test]
    fn regeneration_mixes_replicas() {
        // With regeneration the replicas stay coupled: the spread across
        // final worker params is small relative to the params themselves.
        let r = run_prague(PragueConfig::with_group_size(3), SlowdownModel::None, 40);
        let dim = r.final_params[0].len();
        let mut max_spread = 0.0f32;
        for d in 0..dim {
            let vals: Vec<f32> = r.final_params.iter().map(|p| p[d]).collect();
            let mx = vals.iter().cloned().fold(f32::MIN, f32::max);
            let mn = vals.iter().cloned().fold(f32::MAX, f32::min);
            max_spread = max_spread.max(mx - mn);
        }
        assert!(
            max_spread < 1.0,
            "replicas drifted apart: spread {max_spread}"
        );
    }

    #[test]
    fn static_schedule_is_deterministic() {
        let a = run_prague(PragueConfig::default(), SlowdownModel::paper_random(6), 25);
        let b = run_prague(PragueConfig::default(), SlowdownModel::paper_random(6), 25);
        assert_eq!(a.wall_time, b.wall_time);
        assert_eq!(a.final_params, b.final_params);
        assert_eq!(a.trace.records(), b.trace.records());
        assert_eq!(a.bytes_sent, b.bytes_sent);
    }

    #[test]
    fn group_size_one_is_local_sgd() {
        let r = run_prague(
            PragueConfig {
                group_size: 1,
                ..PragueConfig::default()
            },
            SlowdownModel::None,
            10,
        );
        assert!(!r.deadlocked);
        assert_eq!(r.bytes_sent, 0, "singleton groups must not communicate");
    }
}
